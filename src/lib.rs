//! # column-imprints — facade crate
//!
//! One-stop import for the Column Imprints reproduction (SIGMOD 2013,
//! Sidirourgos & Kersten). Re-exports the four workspace crates:
//!
//! * [`imprints`] — the column imprints index itself;
//! * [`colstore`] — the columnar storage substrate (columns, relations,
//!   id lists, delta structures, predicates, persistence);
//! * [`baselines`] — zonemap, WAH-compressed bitmap and sequential-scan
//!   comparators;
//! * [`datagen`] — synthetic dataset and workload generators emulating the
//!   paper's evaluation datasets.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `imprints-bench` crate for the harness that regenerates every table and
//! figure of the paper.

pub use baselines;
pub use colstore;
pub use datagen;
pub use imprints;

pub use colstore::{Column, IdList, RangeIndex, RangePredicate, Relation, Scalar};
pub use imprints::ColumnImprints;
