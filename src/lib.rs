//! # column-imprints — facade crate
//!
//! One-stop import for the Column Imprints reproduction (SIGMOD 2013,
//! Sidirourgos & Kersten). Re-exports the four workspace crates:
//!
//! * [`imprints`] — the column imprints index itself;
//! * [`colstore`] — the columnar storage substrate (columns, relations,
//!   id lists, delta structures, predicates, persistence);
//! * [`baselines`] — zonemap, WAH-compressed bitmap and sequential-scan
//!   comparators;
//! * [`datagen`] — synthetic dataset and workload generators emulating the
//!   paper's evaluation datasets;
//! * [`engine`] — the sharded, concurrent query-serving engine layering
//!   segments, an epoch-guarded catalog, a morsel-driven executor, adaptive
//!   access paths and background index maintenance on top of the above;
//! * [`server`] — the TCP line-protocol front-end with admission control
//!   (bounded queue, shed-on-overload, per-client fairness) and batched
//!   shared-morsel dispatch into the engine's worker pool.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `imprints-bench` crate for the harness that regenerates every table and
//! figure of the paper.

pub use baselines;
pub use colstore;
pub use datagen;
pub use imprints;
pub use imprints_engine as engine;
pub use imprints_server as server;

pub use colstore::{Column, IdList, RangeIndex, RangePredicate, Relation, Scalar};
pub use imprints::ColumnImprints;
pub use imprints_engine::Engine;
