//! Cross-crate persistence: columns and indexes written to real files,
//! reloaded, cross-validated; corruption and mismatch detection.

use std::fs::File;

use colstore::{storage as colstorage, Column, Error, RangeIndex, RangePredicate};
use datagen::distributions;
use imprints::{storage as idxstorage, ColumnImprints};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("imprints_it_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_column_and_index_file_roundtrip() {
    let dir = tmpdir("roundtrip");
    let col: Column<f64> = Column::from(distributions::random_walk(123_457, 0.0, 1e4, 1.5, 999, 3));
    let idx = ColumnImprints::build(&col);

    let col_path = dir.join("col.bin");
    let idx_path = dir.join("idx.bin");
    colstorage::write_column(&col, &mut File::create(&col_path).unwrap()).unwrap();
    idxstorage::write_index(&idx, &mut File::create(&idx_path).unwrap()).unwrap();

    let col2: Column<f64> = colstorage::read_column(&mut File::open(&col_path).unwrap()).unwrap();
    let idx2: ColumnImprints<f64> =
        idxstorage::read_index(&mut File::open(&idx_path).unwrap()).unwrap();

    assert_eq!(col2.values().len(), col.values().len());
    idx2.verify(&col2).unwrap();
    for (lo, hi) in [(0.0, 100.0), (5000.0, 5100.0), (9990.0, 1e4)] {
        let pred = RangePredicate::between(lo, hi);
        assert_eq!(idx2.evaluate(&col2, &pred), idx.evaluate(&col, &pred));
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bitflip_anywhere_is_detected() {
    // Flip a bit at several positions across the file; every flip must be
    // caught by the checksum (or the magic/geometry validation).
    let col: Column<i32> = (0..10_000).map(|i| i * 3).collect();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    let n = bytes.len();
    for pos in [0, 1, 5, n / 4, n / 2, 3 * n / 4, n - 5, n - 1] {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x10;
        let r = idxstorage::read_index::<i32, _>(&mut corrupted.as_slice());
        assert!(r.is_err(), "bit flip at {pos} went undetected");
    }
}

#[test]
fn type_confusion_is_rejected() {
    let col: Column<u32> = (0..1000).collect();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    assert!(matches!(
        idxstorage::read_index::<i32, _>(&mut bytes.as_slice()),
        Err(Error::Mismatch(_))
    ));

    let mut cbytes = Vec::new();
    colstorage::write_column(&col, &mut cbytes).unwrap();
    assert!(matches!(
        colstorage::read_column::<u64, _>(&mut cbytes.as_slice()),
        Err(Error::Mismatch(_))
    ));
}

#[test]
fn reloaded_index_supports_appends() {
    // A warehouse restart mid-ingest: reload, keep appending, stay correct.
    let mut col: Column<i64> = Column::from(distributions::uniform_ints(50_003, 0, 700, 9));
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    let mut idx2: ColumnImprints<i64> = idxstorage::read_index(&mut bytes.as_slice()).unwrap();

    let extra = distributions::uniform_ints(7_777, 0, 700, 10);
    idx2.append(&extra);
    col.extend_from_slice(&extra);
    idx2.verify(&col).unwrap();

    let pred = RangePredicate::between(100, 200);
    let expect: Vec<u64> = col
        .values()
        .iter()
        .enumerate()
        .filter(|(_, v)| pred.matches(v))
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(idx2.evaluate(&col, &pred).as_slice(), expect.as_slice());
}

#[test]
fn empty_structures_roundtrip() {
    let col: Column<i16> = Column::new();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    let back: ColumnImprints<i16> = idxstorage::read_index(&mut bytes.as_slice()).unwrap();
    assert_eq!(back.rows(), 0);
    assert!(back.evaluate(&col, &RangePredicate::all()).is_empty());
}

#[test]
fn index_file_size_tracks_index_size() {
    let col: Column<i64> = (0..100_000).map(|i| i / 100).collect();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    // On-disk = in-memory payload + fixed header/footer; must stay within
    // a small constant of the reported size.
    let reported = RangeIndex::<i64>::size_bytes(&idx);
    assert!(bytes.len() < reported + 700, "file {} vs reported {}", bytes.len(), reported);
}

/// Exhaustive corruption matrix: flip one bit at *every* byte offset of
/// a serialized column, imprint, and zonemap; every flip must surface as
/// a typed `Err` — never a panic, never a clean read of damaged bytes.
#[test]
fn bitflip_matrix_every_offset_yields_typed_error() {
    let col: Column<i32> = (0..512).map(|i| (i * 31) % 200).collect();
    let idx = ColumnImprints::build(&col);
    let zm = baselines::ZoneMap::build(&col);

    let mut col_bytes = Vec::new();
    colstorage::write_column(&col, &mut col_bytes).unwrap();
    let mut idx_bytes = Vec::new();
    idxstorage::write_index(&idx, &mut idx_bytes).unwrap();
    let mut zm_bytes = Vec::new();
    baselines::storage::write_zonemap(&zm, &mut zm_bytes).unwrap();

    for pos in 0..col_bytes.len() {
        let mut c = col_bytes.clone();
        c[pos] ^= 0x10;
        assert!(
            colstorage::read_column::<i32, _>(&mut c.as_slice()).is_err(),
            "column bit flip at {pos} went undetected"
        );
    }
    for pos in 0..idx_bytes.len() {
        let mut c = idx_bytes.clone();
        c[pos] ^= 0x10;
        assert!(
            idxstorage::read_index::<i32, _>(&mut c.as_slice()).is_err(),
            "imprint bit flip at {pos} went undetected"
        );
    }
    for pos in 0..zm_bytes.len() {
        let mut c = zm_bytes.clone();
        c[pos] ^= 0x10;
        assert!(
            baselines::storage::read_zonemap::<i32, _>(&mut c.as_slice()).is_err(),
            "zonemap bit flip at {pos} went undetected"
        );
    }
}

/// Round-trip equality for every scalar type at arbitrary (partial-tail)
/// lengths: column bytes, imprint, and zonemap must all reload to
/// structures indistinguishable from the originals.
mod roundtrip_props {
    use super::*;
    use colstore::{RangeIndex, RangePredicate, Scalar};
    use proptest::prelude::*;

    fn roundtrip<T: Scalar>(values: Vec<T>) {
        let col: Column<T> = Column::from(values);
        let mut b = Vec::new();
        colstorage::write_column(&col, &mut b).unwrap();
        let col2: Column<T> = colstorage::read_column(&mut b.as_slice()).unwrap();
        assert_eq!(col2.values(), col.values());

        let idx = ColumnImprints::build(&col);
        let mut b = Vec::new();
        idxstorage::write_index(&idx, &mut b).unwrap();
        let idx2: ColumnImprints<T> = idxstorage::read_index(&mut b.as_slice()).unwrap();
        idx2.verify(&col2).unwrap();
        let all = RangePredicate::all();
        assert_eq!(idx2.evaluate(&col2, &all), idx.evaluate(&col, &all));

        let zm = baselines::ZoneMap::build(&col);
        let mut b = Vec::new();
        baselines::storage::write_zonemap(&zm, &mut b).unwrap();
        let zm2 = baselines::storage::read_zonemap::<T, _>(&mut b.as_slice()).unwrap();
        assert_eq!(zm2.evaluate(&col2, &all), zm.evaluate(&col, &all));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        // Lengths deliberately cover 0 and non-multiples of every
        // cacheline width (8..64 values per line), so partial tails hit
        // all tail-handling code in the three serializers.
        #[test]
        fn all_scalar_types_roundtrip(seeds in prop::collection::vec(any::<i64>(), 0..300)) {
            roundtrip::<i8>(seeds.iter().map(|&v| v as i8).collect());
            roundtrip::<u8>(seeds.iter().map(|&v| v as u8).collect());
            roundtrip::<i16>(seeds.iter().map(|&v| v as i16).collect());
            roundtrip::<u16>(seeds.iter().map(|&v| v as u16).collect());
            roundtrip::<i32>(seeds.iter().map(|&v| v as i32).collect());
            roundtrip::<u32>(seeds.iter().map(|&v| v as u32).collect());
            roundtrip::<i64>(seeds.clone());
            roundtrip::<u64>(seeds.iter().map(|&v| v as u64).collect());
            roundtrip::<f32>(seeds.iter().map(|&v| (v % 100_000) as f32 * 0.25).collect());
            roundtrip::<f64>(seeds.iter().map(|&v| (v % 100_000) as f64 * 0.25).collect());
        }
    }
}
