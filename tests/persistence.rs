//! Cross-crate persistence: columns and indexes written to real files,
//! reloaded, cross-validated; corruption and mismatch detection.

use std::fs::File;

use colstore::{storage as colstorage, Column, Error, RangeIndex, RangePredicate};
use datagen::distributions;
use imprints::{storage as idxstorage, ColumnImprints};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("imprints_it_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_column_and_index_file_roundtrip() {
    let dir = tmpdir("roundtrip");
    let col: Column<f64> = Column::from(distributions::random_walk(123_457, 0.0, 1e4, 1.5, 999, 3));
    let idx = ColumnImprints::build(&col);

    let col_path = dir.join("col.bin");
    let idx_path = dir.join("idx.bin");
    colstorage::write_column(&col, &mut File::create(&col_path).unwrap()).unwrap();
    idxstorage::write_index(&idx, &mut File::create(&idx_path).unwrap()).unwrap();

    let col2: Column<f64> = colstorage::read_column(&mut File::open(&col_path).unwrap()).unwrap();
    let idx2: ColumnImprints<f64> =
        idxstorage::read_index(&mut File::open(&idx_path).unwrap()).unwrap();

    assert_eq!(col2.values().len(), col.values().len());
    idx2.verify(&col2).unwrap();
    for (lo, hi) in [(0.0, 100.0), (5000.0, 5100.0), (9990.0, 1e4)] {
        let pred = RangePredicate::between(lo, hi);
        assert_eq!(idx2.evaluate(&col2, &pred), idx.evaluate(&col, &pred));
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bitflip_anywhere_is_detected() {
    // Flip a bit at several positions across the file; every flip must be
    // caught by the checksum (or the magic/geometry validation).
    let col: Column<i32> = (0..10_000).map(|i| i * 3).collect();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    let n = bytes.len();
    for pos in [0, 1, 5, n / 4, n / 2, 3 * n / 4, n - 5, n - 1] {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x10;
        let r = idxstorage::read_index::<i32, _>(&mut corrupted.as_slice());
        assert!(r.is_err(), "bit flip at {pos} went undetected");
    }
}

#[test]
fn type_confusion_is_rejected() {
    let col: Column<u32> = (0..1000).collect();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    assert!(matches!(
        idxstorage::read_index::<i32, _>(&mut bytes.as_slice()),
        Err(Error::Mismatch(_))
    ));

    let mut cbytes = Vec::new();
    colstorage::write_column(&col, &mut cbytes).unwrap();
    assert!(matches!(
        colstorage::read_column::<u64, _>(&mut cbytes.as_slice()),
        Err(Error::Mismatch(_))
    ));
}

#[test]
fn reloaded_index_supports_appends() {
    // A warehouse restart mid-ingest: reload, keep appending, stay correct.
    let mut col: Column<i64> = Column::from(distributions::uniform_ints(50_003, 0, 700, 9));
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    let mut idx2: ColumnImprints<i64> = idxstorage::read_index(&mut bytes.as_slice()).unwrap();

    let extra = distributions::uniform_ints(7_777, 0, 700, 10);
    idx2.append(&extra);
    col.extend_from_slice(&extra);
    idx2.verify(&col).unwrap();

    let pred = RangePredicate::between(100, 200);
    let expect: Vec<u64> = col
        .values()
        .iter()
        .enumerate()
        .filter(|(_, v)| pred.matches(v))
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(idx2.evaluate(&col, &pred).as_slice(), expect.as_slice());
}

#[test]
fn empty_structures_roundtrip() {
    let col: Column<i16> = Column::new();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    let back: ColumnImprints<i16> = idxstorage::read_index(&mut bytes.as_slice()).unwrap();
    assert_eq!(back.rows(), 0);
    assert!(back.evaluate(&col, &RangePredicate::all()).is_empty());
}

#[test]
fn index_file_size_tracks_index_size() {
    let col: Column<i64> = (0..100_000).map(|i| i / 100).collect();
    let idx = ColumnImprints::build(&col);
    let mut bytes = Vec::new();
    idxstorage::write_index(&idx, &mut bytes).unwrap();
    // On-disk = in-memory payload + fixed header/footer; must stay within
    // a small constant of the reported size.
    let reported = RangeIndex::<i64>::size_bytes(&idx);
    assert!(bytes.len() < reported + 700, "file {} vs reported {}", bytes.len(), reported);
}
