//! Concurrency stress tests for the engine: concurrent readers and one
//! appender, with the maintenance daemon running (index rebuilds *and*
//! tiered segment compaction), must always produce results identical to a
//! serial scan of a consistent snapshot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::{ColumnType, Value};
use column_imprints::engine::{
    maintenance_tick, Catalog, EngineConfig, MaintenanceConfig, MaintenanceDaemon, ValueRange,
    WorkerPool,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const READERS: usize = 4;
const TOTAL_ROWS: usize = 120_000;

#[test]
fn concurrent_readers_and_appender_stay_consistent() {
    let catalog = Arc::new(Catalog::new());
    let cfg = EngineConfig {
        segment_rows: 2048,
        workers: 2,
        // Engage the write head's tail imprint almost immediately, so the
        // readers exercise the tail-indexed eval_open path against the
        // appender's incremental extends and seal-time discards.
        tail_index_min_rows: 128,
        // Aggressive thresholds so background rebuilds actually trigger
        // mid-flight; fan-in 4 lets tiered compaction churn the sealed
        // list under the readers at the same time.
        maintenance: MaintenanceConfig {
            drift_threshold: 0.3,
            fp_threshold: 0.9,
            min_comparisons: 256,
            tier_fanin: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let table = catalog
        .create_table("events", &[("key", ColumnType::I64), ("score", ColumnType::F64)], cfg)
        .unwrap();
    let pool = Arc::new(WorkerPool::new(4));
    let done = Arc::new(AtomicBool::new(false));
    let checks = Arc::new(AtomicU64::new(0));

    // Maintenance daemon churns segment swaps under the readers.
    let daemon = MaintenanceDaemon::start(Arc::clone(&catalog), Duration::from_millis(3));

    std::thread::scope(|s| {
        // One appender: batches of drifting data (later batches shift the
        // key domain so inherited binnings degrade and get rebuilt).
        {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(42);
                let mut appended = 0usize;
                while appended < TOTAL_ROWS {
                    let n = rng.gen_range(200..1500).min(TOTAL_ROWS - appended);
                    let shift = (appended / 30_000) as i64 * 500_000;
                    let keys: Vec<i64> = (0..n).map(|_| shift + rng.gen_range(0..10_000)).collect();
                    let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
                    table
                        .append_batch(vec![
                            AnyColumn::I64(keys.into_iter().collect()),
                            AnyColumn::F64(scores.into_iter().collect()),
                        ])
                        .unwrap();
                    appended += n;
                }
                done.store(true, Ordering::Release);
            });
        }

        // READERS validating threads.
        for r in 0..READERS {
            let table = Arc::clone(&table);
            let pool = Arc::clone(&pool);
            let done = Arc::clone(&done);
            let checks = Arc::clone(&checks);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + r as u64);
                loop {
                    let finished = done.load(Ordering::Acquire);

                    // 1) Exact check against a consistent snapshot oracle.
                    let snap = table.snapshot();
                    let lo = rng.gen_range(0..2_500_000i64);
                    let hi = lo + rng.gen_range(0..500_000i64);
                    let smax = rng.gen_range(0.0..100.0f64);
                    let preds = [
                        ("key", ValueRange::between(Value::I64(lo), Value::I64(hi))),
                        ("score", ValueRange::at_most(Value::F64(smax))),
                    ];
                    let got = snap.query(&preds).unwrap();
                    let keys: Vec<i64> = snap.column_values("key").unwrap();
                    let scores: Vec<f64> = snap.column_values("score").unwrap();
                    let expect: Vec<u64> = (0..keys.len() as u64)
                        .filter(|&i| {
                            (lo..=hi).contains(&keys[i as usize]) && scores[i as usize] <= smax
                        })
                        .collect();
                    assert_eq!(
                        got.as_slice(),
                        expect.as_slice(),
                        "snapshot query diverged from serial scan (epoch {})",
                        snap.epoch()
                    );

                    // 2) Soundness of live parallel queries: rows are
                    // append-only, so every returned id must satisfy the
                    // predicates whenever we look at it.
                    let live = table.query_on(&pool, &preds).unwrap();
                    assert!(
                        live.as_slice().windows(2).all(|w| w[0] < w[1]),
                        "live result must be strictly ascending"
                    );
                    for &id in live.as_slice().iter().step_by(97) {
                        let tuple = table.tuple(id).expect("returned id must exist");
                        let (Value::I64(k), Value::F64(v)) = (tuple[0], tuple[1]) else {
                            panic!("wrong tuple types");
                        };
                        assert!((lo..=hi).contains(&k) && v <= smax, "id {id} is a false hit");
                    }

                    checks.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                }
            });
        }
    });

    drop(daemon);
    // Deterministic final passes: any drift or pending tier merges the
    // daemon did not get to are applied (and counted) here.
    let mut guard = 0;
    while !maintenance_tick(&catalog).is_idle() {
        guard += 1;
        assert!(guard < 64, "maintenance must converge after the appender stops");
    }
    assert_eq!(table.row_count(), TOTAL_ROWS as u64);
    // Compaction merged the 2048-row seal-granularity segments into tiers:
    // fewer, larger segments, with every row still present exactly once.
    assert!(table.stats().compactions.load(Ordering::Relaxed) > 0, "tiered compaction never fired");
    assert!(
        table.sealed_segment_count() < TOTAL_ROWS / 2048,
        "compaction must leave fewer segments than were sealed, got {}",
        table.sealed_segment_count()
    );
    let everything = table.query(&[]).unwrap();
    assert_eq!(everything.len() as u64, table.row_count());
    assert!(
        everything.as_slice().windows(2).all(|w| w[1] == w[0] + 1),
        "row ids must stay contiguous after compaction"
    );
    let n_checks = checks.load(Ordering::Relaxed);
    assert!(
        n_checks >= READERS as u64,
        "each reader must have completed at least one validated query, got {n_checks}"
    );
    // The drifting appender must have caused real background rebuilds.
    assert!(
        table.stats().rebuilds.load(Ordering::Relaxed) > 0,
        "maintenance daemon never rebuilt a segment"
    );
}

/// Validating readers hold `TableSnapshot`s *across* compaction swaps while
/// the daemon runs at an aggressive interval with an eager tier policy:
/// every pinned snapshot must keep answering identically (its epoch's view
/// is frozen), and every live query must see an exact contiguous row-id
/// prefix — no id lost or duplicated by a merge swap.
#[test]
fn snapshots_stay_consistent_across_compaction_swaps() {
    const ROWS: usize = 60_000;
    const VALIDATORS: usize = 3;
    let catalog = Arc::new(Catalog::new());
    let cfg = EngineConfig {
        segment_rows: 512,
        workers: 2,
        tail_index_min_rows: 128,
        maintenance: MaintenanceConfig {
            // Eager tiering: pairs merge as soon as they exist, so swaps
            // happen constantly under the readers.
            tier_fanin: 2,
            compaction_budget_bytes: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    let table = catalog.create_table("churn", &[("k", ColumnType::I64)], cfg).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let daemon = MaintenanceDaemon::start(Arc::clone(&catalog), Duration::from_millis(1));

    std::thread::scope(|s| {
        {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7);
                let mut appended = 0usize;
                while appended < ROWS {
                    let n = rng.gen_range(100..600).min(ROWS - appended);
                    let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..100_000)).collect();
                    table.append_batch(vec![AnyColumn::I64(keys.into_iter().collect())]).unwrap();
                    appended += n;
                }
                done.store(true, Ordering::Release);
            });
        }
        for r in 0..VALIDATORS {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + r as u64);
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = table.snapshot();
                    let pinned_epoch = snap.epoch();
                    let full = snap.query(&[]).unwrap();
                    // Consistency of the pinned view: exactly the rows
                    // 0..row_count, each exactly once.
                    assert_eq!(full.len() as u64, snap.row_count());
                    assert!(
                        full.as_slice().windows(2).all(|w| w[1] == w[0] + 1),
                        "snapshot ids must be a contiguous prefix (epoch {pinned_epoch})"
                    );
                    // Hold the snapshot while the daemon swaps beneath it,
                    // then re-ask: the frozen view may not move.
                    std::thread::sleep(Duration::from_millis(rng.gen_range(1..4)));
                    let again = snap.query(&[]).unwrap();
                    assert_eq!(full, again, "a pinned snapshot changed across a swap");
                    let lo = rng.gen_range(0..90_000i64);
                    let pred = [("k", ValueRange::between(Value::I64(lo), Value::I64(lo + 5000)))];
                    let a = snap.query(&pred).unwrap();
                    let b = snap.query(&pred).unwrap();
                    assert_eq!(a, b);
                    // Live view: still an exact contiguous prefix, at least
                    // as long as the snapshot's.
                    let live = table.query(&[]).unwrap();
                    assert!(live.len() as u64 >= snap.row_count());
                    assert!(
                        live.as_slice().windows(2).all(|w| w[1] == w[0] + 1),
                        "live ids must be a contiguous prefix"
                    );
                    assert!(table.epoch() >= pinned_epoch, "epochs are monotonic");
                    if finished {
                        break;
                    }
                }
            });
        }
    });

    drop(daemon);
    assert_eq!(table.row_count(), ROWS as u64);
    let mut guard = 0;
    while !maintenance_tick(&catalog).is_idle() {
        guard += 1;
        assert!(guard < 64);
    }
    // 117 tier-0 seals with fan-in 2: someone (daemon or drain) must have
    // merged; the cumulative counter is deterministic either way.
    assert!(
        table.stats().compactions.load(Ordering::Relaxed) > 0,
        "the eager tier policy never compacted"
    );

    // Epilogue, fully deterministic: pin a snapshot, force a merge swap
    // beneath it, and check the frozen view does not move.
    let pinned = table.snapshot();
    let pinned_full = pinned.query(&[]).unwrap();
    table.append_batch(vec![AnyColumn::I64((0..1024).collect())]).unwrap(); // 2 fresh tier-0 seals
    let epoch_before_swap = table.epoch();
    let report = maintenance_tick(&catalog);
    assert!(!report.compacted.is_empty(), "two adjacent tier-0 segments must merge");
    assert!(table.epoch() > epoch_before_swap, "the merge swap must bump the epoch");
    assert_eq!(pinned.query(&[]).unwrap(), pinned_full, "pinned snapshot moved across the swap");
    assert_eq!(pinned.row_count(), ROWS as u64);

    let full = table.query(&[]).unwrap();
    assert_eq!(full.len() as u64, table.row_count());
    assert!(full.as_slice().windows(2).all(|w| w[1] == w[0] + 1));
}
