//! Concurrency stress test for the engine: concurrent readers and one
//! appender, with the maintenance daemon running, must always produce
//! results identical to a serial scan of a consistent snapshot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::{ColumnType, Value};
use column_imprints::engine::{Catalog, EngineConfig, MaintenanceDaemon, ValueRange, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const READERS: usize = 4;
const TOTAL_ROWS: usize = 120_000;

#[test]
fn concurrent_readers_and_appender_stay_consistent() {
    let catalog = Arc::new(Catalog::new());
    let cfg = EngineConfig {
        segment_rows: 2048,
        workers: 2,
        // Aggressive thresholds so background rebuilds actually trigger
        // mid-flight.
        maintenance: column_imprints::engine::MaintenanceConfig {
            drift_threshold: 0.3,
            fp_threshold: 0.9,
            min_comparisons: 256,
            ..Default::default()
        },
        ..Default::default()
    };
    let table = catalog
        .create_table("events", &[("key", ColumnType::I64), ("score", ColumnType::F64)], cfg)
        .unwrap();
    let pool = Arc::new(WorkerPool::new(4));
    let done = Arc::new(AtomicBool::new(false));
    let checks = Arc::new(AtomicU64::new(0));

    // Maintenance daemon churns segment swaps under the readers.
    let daemon = MaintenanceDaemon::start(Arc::clone(&catalog), Duration::from_millis(3));

    std::thread::scope(|s| {
        // One appender: batches of drifting data (later batches shift the
        // key domain so inherited binnings degrade and get rebuilt).
        {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(42);
                let mut appended = 0usize;
                while appended < TOTAL_ROWS {
                    let n = rng.gen_range(200..1500).min(TOTAL_ROWS - appended);
                    let shift = (appended / 30_000) as i64 * 500_000;
                    let keys: Vec<i64> = (0..n).map(|_| shift + rng.gen_range(0..10_000)).collect();
                    let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
                    table
                        .append_batch(vec![
                            AnyColumn::I64(keys.into_iter().collect()),
                            AnyColumn::F64(scores.into_iter().collect()),
                        ])
                        .unwrap();
                    appended += n;
                }
                done.store(true, Ordering::Release);
            });
        }

        // READERS validating threads.
        for r in 0..READERS {
            let table = Arc::clone(&table);
            let pool = Arc::clone(&pool);
            let done = Arc::clone(&done);
            let checks = Arc::clone(&checks);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + r as u64);
                loop {
                    let finished = done.load(Ordering::Acquire);

                    // 1) Exact check against a consistent snapshot oracle.
                    let snap = table.snapshot();
                    let lo = rng.gen_range(0..2_500_000i64);
                    let hi = lo + rng.gen_range(0..500_000i64);
                    let smax = rng.gen_range(0.0..100.0f64);
                    let preds = [
                        ("key", ValueRange::between(Value::I64(lo), Value::I64(hi))),
                        ("score", ValueRange::at_most(Value::F64(smax))),
                    ];
                    let got = snap.query(&preds).unwrap();
                    let keys: Vec<i64> = snap.column_values("key").unwrap();
                    let scores: Vec<f64> = snap.column_values("score").unwrap();
                    let expect: Vec<u64> = (0..keys.len() as u64)
                        .filter(|&i| {
                            (lo..=hi).contains(&keys[i as usize]) && scores[i as usize] <= smax
                        })
                        .collect();
                    assert_eq!(
                        got.as_slice(),
                        expect.as_slice(),
                        "snapshot query diverged from serial scan (epoch {})",
                        snap.epoch()
                    );

                    // 2) Soundness of live parallel queries: rows are
                    // append-only, so every returned id must satisfy the
                    // predicates whenever we look at it.
                    let live = table.query_on(&pool, &preds).unwrap();
                    assert!(
                        live.as_slice().windows(2).all(|w| w[0] < w[1]),
                        "live result must be strictly ascending"
                    );
                    for &id in live.as_slice().iter().step_by(97) {
                        let tuple = table.tuple(id).expect("returned id must exist");
                        let (Value::I64(k), Value::F64(v)) = (tuple[0], tuple[1]) else {
                            panic!("wrong tuple types");
                        };
                        assert!((lo..=hi).contains(&k) && v <= smax, "id {id} is a false hit");
                    }

                    checks.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                }
            });
        }
    });

    drop(daemon);
    // Deterministic final pass: any drift the daemon did not get to yet is
    // repaired (and counted) here.
    let _ = column_imprints::engine::maintenance_tick(&catalog);
    assert_eq!(table.row_count(), TOTAL_ROWS as u64);
    assert!(table.sealed_segment_count() >= TOTAL_ROWS / 2048);
    let n_checks = checks.load(Ordering::Relaxed);
    assert!(
        n_checks >= READERS as u64,
        "each reader must have completed at least one validated query, got {n_checks}"
    );
    // The drifting appender must have caused real background rebuilds.
    assert!(
        table.stats().rebuilds.load(Ordering::Relaxed) > 0,
        "maintenance daemon never rebuilt a segment"
    );
}
