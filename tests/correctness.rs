//! Differential correctness: every index must return exactly the scan's
//! answer, on every data shape and scalar type the system supports.

use baselines::{SeqScan, WahBitmap, ZoneMap};
use colstore::{Column, RangeIndex, RangePredicate, Scalar};
use datagen::{datasets, distributions};
use imprints::ColumnImprints;

fn check_all_indexes<T: Scalar>(col: &Column<T>, preds: &[RangePredicate<T>]) {
    let scan = SeqScan::new(col);
    let imp = ColumnImprints::build(col);
    imp.verify(col).expect("imprint invariants");
    let zm = ZoneMap::build(col);
    let wah = WahBitmap::build_with_binning(col, imp.binning().clone());
    for pred in preds {
        let expect = scan.evaluate(col, pred);
        assert_eq!(imp.evaluate(col, pred), expect, "imprints vs scan on {pred}");
        assert_eq!(zm.evaluate(col, pred), expect, "zonemap vs scan on {pred}");
        assert_eq!(wah.evaluate(col, pred), expect, "wah vs scan on {pred}");
    }
}

fn int_preds(lo: i64, hi: i64) -> Vec<RangePredicate<i64>> {
    vec![
        RangePredicate::between(lo, hi),
        RangePredicate::half_open(lo, hi),
        RangePredicate::equals((lo + hi) / 2),
        RangePredicate::less_than(hi),
        RangePredicate::at_least(lo),
        RangePredicate::all(),
        RangePredicate::between(hi, lo), // empty
    ]
}

#[test]
fn sorted_column() {
    let col: Column<i64> = (0..50_000).collect();
    check_all_indexes(&col, &int_preds(1000, 2000));
}

#[test]
fn reverse_sorted_column() {
    let col: Column<i64> = (0..50_000).rev().collect();
    check_all_indexes(&col, &int_preds(1000, 2000));
}

#[test]
fn constant_column() {
    let col: Column<i64> = std::iter::repeat_n(7i64, 10_000).collect();
    check_all_indexes(&col, &int_preds(0, 7));
    check_all_indexes(&col, &int_preds(8, 100));
}

#[test]
fn uniform_random_column() {
    let col: Column<i64> = Column::from(distributions::uniform_ints(60_000, -5000, 5000, 3));
    check_all_indexes(&col, &int_preds(-1000, 1000));
    check_all_indexes(&col, &int_preds(-6000, -4990));
}

#[test]
fn zipf_skewed_column() {
    let col: Column<i64> = Column::from(distributions::zipf(60_000, 500, 1.3, 5));
    check_all_indexes(&col, &int_preds(0, 3));
    check_all_indexes(&col, &int_preds(400, 600));
}

#[test]
fn clustered_walk_column() {
    let vals = distributions::random_walk(60_000, 0.0, 1000.0, 0.5, 2048, 7);
    let col: Column<f64> = Column::from(vals);
    let preds = vec![
        RangePredicate::between(100.0, 200.0),
        RangePredicate::between(0.0, 1000.0),
        RangePredicate::less_than(50.0),
        RangePredicate::equals(500.0),
    ];
    check_all_indexes(&col, &preds);
}

#[test]
fn repeated_permutation_column() {
    let col: Column<i64> = Column::from(distributions::repeated_permutation(60_000, 777, 9));
    check_all_indexes(&col, &int_preds(100, 300));
}

#[test]
fn two_valued_column() {
    let col: Column<i64> = Column::from(distributions::two_valued(60_000, 1000, 11));
    check_all_indexes(&col, &int_preds(0, 0));
    check_all_indexes(&col, &int_preds(1, 1));
}

#[test]
fn narrow_types_u8_i16() {
    let v8: Column<u8> = (0..40_000).map(|i| ((i * 31) % 251) as u8).collect();
    let scan = SeqScan::new(&v8);
    let imp = ColumnImprints::build(&v8);
    let zm = ZoneMap::build(&v8);
    let wah = WahBitmap::build_with_binning(&v8, imp.binning().clone());
    for pred in
        [RangePredicate::between(10u8, 20), RangePredicate::at_least(250), RangePredicate::all()]
    {
        let expect = scan.evaluate(&v8, &pred);
        assert_eq!(imp.evaluate(&v8, &pred), expect);
        assert_eq!(zm.evaluate(&v8, &pred), expect);
        assert_eq!(wah.evaluate(&v8, &pred), expect);
    }

    let v16: Column<i16> = (0..40_000).map(|i| ((i * 37) % 30_000) as i16 - 15_000).collect();
    let scan = SeqScan::new(&v16);
    let imp = ColumnImprints::build(&v16);
    let zm = ZoneMap::build(&v16);
    let wah = WahBitmap::build_with_binning(&v16, imp.binning().clone());
    for pred in [RangePredicate::between(-100i16, 100), RangePredicate::less_than(-14_000)] {
        let expect = scan.evaluate(&v16, &pred);
        assert_eq!(imp.evaluate(&v16, &pred), expect);
        assert_eq!(zm.evaluate(&v16, &pred), expect);
        assert_eq!(wah.evaluate(&v16, &pred), expect);
    }
}

#[test]
fn float_column_with_nan_and_infinities() {
    let mut vals: Vec<f64> = (0..30_000).map(|i| ((i * 17) % 997) as f64 / 10.0).collect();
    vals[100] = f64::NAN;
    vals[200] = f64::INFINITY;
    vals[300] = f64::NEG_INFINITY;
    vals[400] = -0.0;
    let col: Column<f64> = Column::from(vals);
    let preds = vec![
        RangePredicate::between(5.0, 50.0),
        RangePredicate::at_least(99.0),
        RangePredicate::less_than(0.0),
        RangePredicate::all(),
        RangePredicate::equals(0.0),
    ];
    check_all_indexes(&col, &preds);
}

#[test]
fn tiny_columns_every_length() {
    // Lengths around cacheline boundaries: 0..=33 values of i32 (vpc 16).
    for n in 0..=33usize {
        let col: Column<i32> = (0..n as i32).map(|i| (i * 7) % 13).collect();
        let scan = SeqScan::new(&col);
        let imp = ColumnImprints::build(&col);
        imp.verify(&col).unwrap();
        let zm = ZoneMap::build(&col);
        let wah = WahBitmap::build_with_binning(&col, imp.binning().clone());
        for pred in [RangePredicate::between(3, 9), RangePredicate::all()] {
            let expect = scan.evaluate(&col, &pred);
            assert_eq!(imp.evaluate(&col, &pred), expect, "imprints n={n}");
            assert_eq!(zm.evaluate(&col, &pred), expect, "zonemap n={n}");
            assert_eq!(wah.evaluate(&col, &pred), expect, "wah n={n}");
        }
    }
}

#[test]
fn all_dataset_families_cross_validate() {
    use colstore::relation::AnyColumn;
    for family in datasets::DatasetFamily::ALL {
        for gc in datasets::generate(family, 30_000, 99) {
            macro_rules! check {
                ($c:expr) => {{
                    let c = $c;
                    let mut sorted = c.values().to_vec();
                    sorted.sort_unstable_by(|a, b| {
                        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let lo = sorted[sorted.len() / 4];
                    let hi = sorted[sorted.len() / 2];
                    check_all_indexes(c, &[RangePredicate::between(lo, hi), RangePredicate::all()]);
                }};
            }
            match &gc.column {
                AnyColumn::I8(c) => check!(c),
                AnyColumn::U8(c) => check!(c),
                AnyColumn::I16(c) => check!(c),
                AnyColumn::U16(c) => check!(c),
                AnyColumn::I32(c) => check!(c),
                AnyColumn::U32(c) => check!(c),
                AnyColumn::I64(c) => check!(c),
                AnyColumn::U64(c) => check!(c),
                AnyColumn::F32(c) => check!(c),
                AnyColumn::F64(c) => check!(c),
            }
        }
    }
}

#[test]
fn equi_width_strategy_cross_validates() {
    use imprints::{BinningStrategy, BuildOptions};
    for seed in [1u64, 2] {
        let col: Column<i64> = Column::from(distributions::zipf(50_000, 2000, 1.2, seed));
        let scan = SeqScan::new(&col);
        let idx = ColumnImprints::build_with(
            &col,
            BuildOptions { strategy: BinningStrategy::EquiWidth, ..Default::default() },
        );
        idx.verify(&col).unwrap();
        for pred in int_preds(0, 50) {
            assert_eq!(idx.evaluate(&col, &pred), scan.evaluate(&col, &pred), "{pred}");
        }
    }
}

#[test]
fn multilevel_cross_validates() {
    use imprints::multilevel::MultiLevelImprints;
    let col: Column<i64> = Column::from(distributions::uniform_ints(70_000, -900, 900, 4));
    let scan = SeqScan::new(&col);
    for fanout in [3u64, 64, 500] {
        let ml = MultiLevelImprints::from_base(ColumnImprints::build(&col), fanout);
        for pred in int_preds(-100, 250) {
            assert_eq!(
                ml.evaluate(&col, &pred),
                scan.evaluate(&col, &pred),
                "fanout {fanout} {pred}"
            );
        }
    }
}

#[test]
fn parallel_build_cross_validates() {
    let col: Column<i64> = Column::from(distributions::uniform_ints(80_000, 0, 10_000, 13));
    let idx = imprints::parallel::build_parallel(&col, Default::default(), 4);
    let scan = SeqScan::new(&col);
    for pred in int_preds(2000, 4000) {
        assert_eq!(idx.evaluate(&col, &pred), scan.evaluate(&col, &pred));
    }
}
