//! The facade crate's re-exports: a downstream user should be able to do
//! everything through `column_imprints::*` paths alone.

use column_imprints::{Column, ColumnImprints, RangeIndex, RangePredicate, Relation};

#[test]
fn facade_paths_cover_the_basic_workflow() {
    let col: Column<i32> = (0..10_000).map(|i| (i * 31) % 500).collect();
    let idx = ColumnImprints::build(&col);
    let ids = idx.evaluate(&col, &RangePredicate::between(10, 20));
    assert!(!ids.is_empty());

    let mut rel = Relation::new("t");
    rel.add_column("a", col).unwrap();
    assert_eq!(rel.row_count(), 10_000);

    // The four sub-crates are reachable as modules.
    let _ = column_imprints::baselines::WahVector::new();
    let _ = column_imprints::datagen::distributions::sorted_ints(3, 0);
    let _ = column_imprints::imprints::DEFAULT_SAMPLE_SIZE;
    let _ = column_imprints::colstore::CACHELINE_BYTES;
}

#[test]
fn facade_extension_types_reachable() {
    use column_imprints::imprints::{
        multilevel::MultiLevelImprints, relation_index::RelationImprints, BinningStrategy,
        MultiLevelImprints as Ml2, OverlayImprints,
    };
    let col: Column<i64> = (0..1000).collect();
    let base = ColumnImprints::build(&col);
    let _ml: MultiLevelImprints<i64> = Ml2::from_base(base.clone(), 8);
    let _ov = OverlayImprints::new(base);
    assert_eq!(BinningStrategy::default(), BinningStrategy::EquiHeight);

    let mut rel = Relation::new("r");
    rel.add_column("x", col).unwrap();
    let ri = RelationImprints::build(&rel);
    assert!(ri.size_bytes() > 0);
}
