//! Property tests for the engine: segmented evaluation must be
//! indistinguishable from whole-column evaluation, for any data, any
//! predicate and any segmentation.

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::{Column, ColumnType, Value};
use column_imprints::engine::{
    maintenance_tick, Catalog, EngineConfig, MaintenanceConfig, Table, ValueRange, WorkerPool,
};
use column_imprints::ColumnImprints;
use proptest::prelude::*;

fn engine_table(values: &[i64], segment_rows: usize) -> Table {
    let cfg = EngineConfig { segment_rows, workers: 2, ..Default::default() };
    let t = Table::new("t", &[("v", ColumnType::I64)], cfg).unwrap();
    t.append_batch(vec![AnyColumn::I64(values.iter().copied().collect())]).unwrap();
    t
}

fn range(lo: i64, width: i64) -> ValueRange {
    ValueRange::between(Value::I64(lo), Value::I64(lo + width))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Per-segment candidate/refine merged across segments equals the
    /// whole-column imprint evaluation (and the brute-force oracle).
    #[test]
    fn segment_merge_equals_whole_column(
        values in prop::collection::vec(-3000i64..3000, 0..6000),
        seg_exp in 1usize..6,
        lo in -3500i64..3500,
        width in 0i64..2500,
    ) {
        let segment_rows = 64usize << seg_exp; // 128..=2048, all multiples of 64
        let table = engine_table(&values, segment_rows);
        let got = table.query(&[("v", range(lo, width))]).unwrap();

        // Whole-column evaluation through one monolithic imprint index.
        let col: Column<i64> = Column::from(values.clone());
        let idx = ColumnImprints::build(&col);
        let pred = column_imprints::RangePredicate::between(lo, lo + width);
        let (whole, _) = column_imprints::imprints::query::evaluate(&idx, &col, &pred);
        prop_assert_eq!(got.as_slice(), whole.as_slice());

        // And both equal the oracle.
        let oracle: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| (lo..=lo + width).contains(*v))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got.as_slice(), oracle.as_slice());
    }

    /// The segmentation itself is unobservable: any two segment sizes give
    /// identical answers, serial or morsel-parallel.
    #[test]
    fn segmentation_is_transparent(
        values in prop::collection::vec(0i64..1000, 0..4000),
        lo in 0i64..1100,
        width in 0i64..600,
    ) {
        let a = engine_table(&values, 128);
        let b = engine_table(&values, 1024);
        let preds = [("v", range(lo, width))];
        let ra = a.query(&preds).unwrap();
        let rb = b.query(&preds).unwrap();
        prop_assert_eq!(ra.as_slice(), rb.as_slice());
        let pool = WorkerPool::new(3);
        let rp = a.query_on(&pool, &preds).unwrap();
        prop_assert_eq!(ra.as_slice(), rp.as_slice());
        let n = a.count(&preds, Some(&pool)).unwrap();
        prop_assert_eq!(n as usize, ra.len());
    }

    /// Multi-predicate conjunctions through the engine's late
    /// materialization match the oracle.
    #[test]
    fn conjunction_matches_oracle(
        rows in prop::collection::vec((0i64..500, 0i64..50), 0..3000),
        a_lo in 0i64..550, a_width in 0i64..300,
        b_lo in 0i64..55, b_width in 0i64..30,
    ) {
        let a: Vec<i64> = rows.iter().map(|r| r.0).collect();
        let b: Vec<i64> = rows.iter().map(|r| r.1).collect();
        let cfg = EngineConfig { segment_rows: 256, workers: 2, ..Default::default() };
        let t = Table::new(
            "t",
            &[("a", ColumnType::I64), ("b", ColumnType::I64)],
            cfg,
        )
        .unwrap();
        t.append_batch(vec![
            AnyColumn::I64(a.iter().copied().collect()),
            AnyColumn::I64(b.iter().copied().collect()),
        ])
        .unwrap();
        let got = t
            .query(&[("a", range(a_lo, a_width)), ("b", range(b_lo, b_width))])
            .unwrap();
        let oracle: Vec<u64> = (0..rows.len() as u64)
            .filter(|&i| {
                (a_lo..=a_lo + a_width).contains(&a[i as usize])
                    && (b_lo..=b_lo + b_width).contains(&b[i as usize])
            })
            .collect();
        prop_assert_eq!(got.as_slice(), oracle.as_slice());
    }

    /// Appending in many small batches equals appending at once, and
    /// background rebuilds never change answers.
    #[test]
    fn incremental_appends_and_rebuilds_preserve_answers(
        chunks in prop::collection::vec(
            prop::collection::vec(-2000i64..2000, 1..700),
            1..6,
        ),
        lo in -2200i64..2200,
        width in 0i64..1500,
    ) {
        let all: Vec<i64> = chunks.iter().flatten().copied().collect();
        let whole = engine_table(&all, 256);
        let cfg = EngineConfig { segment_rows: 256, workers: 2, ..Default::default() };
        let catalog = Catalog::new();
        let incremental = catalog.create_table("t", &[("v", ColumnType::I64)], cfg).unwrap();
        for chunk in &chunks {
            incremental
                .append_batch(vec![AnyColumn::I64(chunk.iter().copied().collect())])
                .unwrap();
        }
        let preds = [("v", range(lo, width))];
        let before = incremental.query(&preds).unwrap();
        prop_assert_eq!(before.as_slice(), whole.query(&preds).unwrap().as_slice());
        // Force every segment column through a rebuild: answers invariant.
        let _ = maintenance_tick(&catalog);
        let after = incremental.query(&preds).unwrap();
        prop_assert_eq!(before.as_slice(), after.as_slice());
    }

    /// Tail-indexed open-segment evaluation is id-identical to the
    /// scalar-scan oracle across arbitrary append/query/seal
    /// interleavings: after every appended chunk — heads below and above
    /// the engage threshold, heads that just rebuilt their tail after a
    /// drifted batch, heads emptied by a seal — a tail-indexed table, a
    /// tail-disabled table and the brute-force oracle must agree, for
    /// single predicates and conjunctions alike.
    #[test]
    fn tail_indexed_open_segment_equals_scalar_oracle(
        chunks in prop::collection::vec(
            prop::collection::vec((-2000i64..2000, 0i64..60), 1..600),
            1..8,
        ),
        a_lo in -2200i64..2200, a_width in 0i64..1500,
        b_lo in 0i64..66, b_width in 0i64..40,
    ) {
        let mk = |tail_min: usize| {
            let cfg = EngineConfig {
                segment_rows: 1024,
                workers: 2,
                tail_index_min_rows: tail_min,
                ..Default::default()
            };
            Table::new("t", &[("a", ColumnType::I64), ("b", ColumnType::I64)], cfg).unwrap()
        };
        let indexed = mk(64);
        let scanned = mk(usize::MAX);
        let single = [("a", range(a_lo, a_width))];
        let conj = [("a", range(a_lo, a_width)), ("b", range(b_lo, b_width))];
        let mut all: Vec<(i64, i64)> = Vec::new();
        for chunk in &chunks {
            for t in [&indexed, &scanned] {
                t.append_batch(vec![
                    AnyColumn::I64(chunk.iter().map(|r| r.0).collect()),
                    AnyColumn::I64(chunk.iter().map(|r| r.1).collect()),
                ])
                .unwrap();
            }
            all.extend_from_slice(chunk);
            for preds in [&single[..], &conj[..]] {
                let got = indexed.query(preds).unwrap();
                prop_assert_eq!(
                    got.as_slice(),
                    scanned.query(preds).unwrap().as_slice(),
                    "tail-indexed and scalar-scan heads disagreed"
                );
                let oracle: Vec<u64> = (0..all.len() as u64)
                    .filter(|&i| {
                        let (a, b) = all[i as usize];
                        (a_lo..=a_lo + a_width).contains(&a)
                            && (preds.len() == 1 || (b_lo..=b_lo + b_width).contains(&b))
                    })
                    .collect();
                prop_assert_eq!(got.as_slice(), oracle.as_slice());
                prop_assert_eq!(
                    indexed.count(preds, None).unwrap() as usize,
                    oracle.len()
                );
            }
        }
        prop_assert_eq!(indexed.row_count(), all.len() as u64);
        prop_assert_eq!(indexed.sealed_segment_count(), scanned.sealed_segment_count());
    }

    /// Arbitrary interleavings of appends and forced compaction ticks:
    /// query results always equal the whole-column oracle, and whenever a
    /// tick actually compacts, the sealed-segment count strictly drops.
    #[test]
    fn compaction_interleaved_with_appends_is_unobservable(
        chunks in prop::collection::vec(
            prop::collection::vec(-2000i64..2000, 1..500),
            1..8,
        ),
        tick_after in prop::collection::vec(any::<bool>(), 8..9),
        lo in -2200i64..2200,
        width in 0i64..1500,
    ) {
        let catalog = Catalog::new();
        let cfg = EngineConfig {
            segment_rows: 128,
            maintenance: MaintenanceConfig {
                tier_fanin: 2,
                compaction_budget_bytes: 0, // unlimited: cascade fully per tick
                ..Default::default()
            },
            ..Default::default()
        };
        let t = catalog.create_table("t", &[("v", ColumnType::I64)], cfg).unwrap();
        let preds = [("v", range(lo, width))];
        let mut all: Vec<i64> = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            t.append_batch(vec![AnyColumn::I64(chunk.iter().copied().collect())]).unwrap();
            all.extend_from_slice(chunk);
            if tick_after[i] {
                let sealed_before = t.sealed_segment_count();
                let report = maintenance_tick(&catalog);
                if !report.compacted.is_empty() {
                    prop_assert!(
                        t.sealed_segment_count() < sealed_before,
                        "a firing compaction must strictly shrink the sealed list \
                         ({} -> {}, report {:?})",
                        sealed_before,
                        t.sealed_segment_count(),
                        report.compacted
                    );
                }
                // Row ids and answers are invariant right after the swap.
                let got = t.query(&preds).unwrap();
                let oracle: Vec<u64> = all
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| (lo..=lo + width).contains(*v))
                    .map(|(i, _)| i as u64)
                    .collect();
                prop_assert_eq!(got.as_slice(), oracle.as_slice());
            }
        }
        prop_assert_eq!(t.row_count(), all.len() as u64);
        // Final state equals whole-column evaluation regardless of how the
        // segment list was reorganized along the way.
        let whole = engine_table(&all, 128);
        prop_assert_eq!(
            t.query(&preds).unwrap().as_slice(),
            whole.query(&preds).unwrap().as_slice()
        );
    }
}
