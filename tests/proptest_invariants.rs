//! Property-based tests on the core data structures and invariants.

use baselines::{WahBitmap, WahVector, ZoneMap};
use colstore::{Bound, Column, IdList, RangeIndex, RangePredicate};
use imprints::builder::Compressor;
use imprints::{column_entropy, Binning, ColumnImprints};
use proptest::prelude::*;

/// Oracle filter.
fn oracle<T: colstore::Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> Vec<u64> {
    col.values()
        .iter()
        .enumerate()
        .filter(|(_, v)| pred.matches(v))
        .map(|(i, _)| i as u64)
        .collect()
}

fn arb_pred_i32() -> impl Strategy<Value = RangePredicate<i32>> {
    let bound = prop_oneof![
        Just(Bound::Unbounded),
        (-2000i32..2000).prop_map(Bound::Inclusive),
        (-2000i32..2000).prop_map(Bound::Exclusive),
    ];
    (bound.clone(), bound).prop_map(|(lo, hi)| RangePredicate::with_bounds(lo, hi))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn imprints_match_oracle(
        values in prop::collection::vec(-1500i32..1500, 0..3000),
        pred in arb_pred_i32(),
    ) {
        let col: Column<i32> = Column::from(values);
        let idx = ColumnImprints::build(&col);
        idx.verify(&col).unwrap();
        let got = idx.evaluate(&col, &pred);
        let expect = oracle(&col, &pred);
        prop_assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn zonemap_and_wah_match_oracle(
        values in prop::collection::vec(-1500i32..1500, 0..2000),
        pred in arb_pred_i32(),
    ) {
        let col: Column<i32> = Column::from(values);
        let expect = oracle(&col, &pred);
        let zm = ZoneMap::build(&col);
        let got_zm = zm.evaluate(&col, &pred);
        prop_assert_eq!(got_zm.as_slice(), expect.as_slice());
        let wah = WahBitmap::build(&col);
        let got_wah = wah.evaluate(&col, &pred);
        prop_assert_eq!(got_wah.as_slice(), expect.as_slice());
    }

    #[test]
    fn imprints_match_oracle_f64(
        values in prop::collection::vec(
            prop_oneof![
                8 => -1e6f64..1e6,
                1 => Just(f64::NAN),
                1 => Just(f64::INFINITY),
                1 => Just(f64::NEG_INFINITY),
            ],
            0..2000,
        ),
        lo in -1e6f64..1e6,
        width in 0.0f64..5e5,
    ) {
        let col: Column<f64> = Column::from(values);
        let idx = ColumnImprints::build(&col);
        idx.verify(&col).unwrap();
        let pred = RangePredicate::between(lo, lo + width);
        let got = idx.evaluate(&col, &pred);
        let expect = oracle(&col, &pred);
        prop_assert_eq!(got.as_slice(), expect.as_slice());
    }

    /// Satellite regression for the partial-tail geometry: columns whose
    /// length is *not* a multiple of `values_per_block` end in a partial
    /// cacheline, and every imprint query kernel — materializing
    /// evaluation, the count kernel, and the late-materialization
    /// `candidates` + `refine` pair — must agree with the scalar oracle
    /// there (this is exactly where PR 3's `ids_via_full_lines` accounting
    /// bug hid; the oracles elsewhere almost all use exact multiples).
    #[test]
    fn partial_tail_lengths_agree_with_oracle(
        values in prop::collection::vec(-1500i32..1500, 0..3000),
        extra in -1500i32..1500,
        pred in arb_pred_i32(),
    ) {
        // Force a partial tail: i32 packs 16 values per 64-byte line, so a
        // non-multiple of 16 is also a non-multiple of u8's 64.
        let mut values = values;
        while values.len() % 16 == 0 {
            values.push(extra);
        }
        let col: Column<i32> = Column::from(values.clone());
        let idx = ColumnImprints::build(&col);
        prop_assert_eq!(idx.values_per_block(), 16);
        prop_assert!(!col.len().is_multiple_of(idx.values_per_block()));
        let expect = oracle(&col, &pred);

        let (ids, stats) = imprints::query::evaluate(&idx, &col, &pred);
        prop_assert_eq!(ids.as_slice(), expect.as_slice());
        // The exact fast-path id counter can never exceed what was emitted.
        prop_assert!(stats.ids_via_full_lines <= ids.len() as u64);

        let (n, cstats) = imprints::query::count(&idx, &col, &pred);
        prop_assert_eq!(n as usize, expect.len());
        prop_assert_eq!(cstats.ids_via_full_lines, stats.ids_via_full_lines);

        let (cands, mut rstats) = imprints::query::candidate_id_ranges(&idx, &pred);
        let refined = imprints::query::refine(&col, &pred, &cands, &mut rstats);
        prop_assert_eq!(refined.as_slice(), expect.as_slice());

        // Same partial-tail geometry at u8's 64-values-per-line grid.
        let u8col: Column<u8> = values.iter().map(|v| (v.unsigned_abs() % 256) as u8).collect();
        let u8idx = ColumnImprints::build(&u8col);
        prop_assert!(!u8col.len().is_multiple_of(u8idx.values_per_block()));
        for p in [
            RangePredicate::between(20u8, 180),
            RangePredicate::less_than(7),
            RangePredicate::at_least(250),
            RangePredicate::equals(values.len() as u8),
        ] {
            let expect = oracle(&u8col, &p);
            let (ids, _) = imprints::query::evaluate(&u8idx, &u8col, &p);
            prop_assert_eq!(ids.as_slice(), expect.as_slice(), "u8 evaluate {}", p);
            let (n, _) = imprints::query::count(&u8idx, &u8col, &p);
            prop_assert_eq!(n as usize, expect.len(), "u8 count {}", p);
            let (cands, mut rstats) = imprints::query::candidate_id_ranges(&u8idx, &p);
            let refined = imprints::query::refine(&u8col, &p, &cands, &mut rstats);
            prop_assert_eq!(refined.as_slice(), expect.as_slice(), "u8 refine {}", p);
        }
    }

    #[test]
    fn compressor_roundtrips_any_run_sequence(
        runs in prop::collection::vec((0u64..6, 1u64..40), 0..60),
    ) {
        let mut comp = Compressor::new();
        let mut logical = Vec::new();
        for &(v, n) in &runs {
            comp.push_run(v, n);
            logical.extend(std::iter::repeat_n(v, n as usize));
        }
        comp.verify().unwrap();
        // Decompress through the dictionary.
        let mut out = Vec::new();
        let mut pos = 0usize;
        for e in comp.dict() {
            if e.repeat() {
                out.extend(std::iter::repeat_n(comp.imprints()[pos], e.cnt() as usize));
                pos += 1;
            } else {
                for _ in 0..e.cnt() {
                    out.push(comp.imprints()[pos]);
                    pos += 1;
                }
            }
        }
        prop_assert_eq!(out, logical);
    }

    #[test]
    fn wah_roundtrips_any_bit_sequence(
        runs in prop::collection::vec((any::<bool>(), 1u64..120), 0..50),
    ) {
        let mut v = WahVector::new();
        let mut reference: Vec<bool> = Vec::new();
        for &(bit, n) in &runs {
            v.append_run(bit, n);
            reference.extend(std::iter::repeat_n(bit, n as usize));
        }
        prop_assert_eq!(v.len() as usize, reference.len());
        let ones: Vec<u64> = v.ones().collect();
        let expect: Vec<u64> = reference
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(ones, expect);
        prop_assert_eq!(v.count_ones() as usize, reference.iter().filter(|&&b| b).count());
    }

    #[test]
    fn binning_bin_of_is_monotone_and_matches_portable(
        mut sample in prop::collection::vec(-10_000i64..10_000, 1..500),
        probes in prop::collection::vec(-11_000i64..11_000, 1..200),
    ) {
        sample.sort_unstable();
        let binning = Binning::from_sorted_sample(&sample);
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_unstable();
        let mut prev_bin = 0usize;
        for v in sorted_probes {
            let bin = binning.bin_of(v);
            prop_assert!(bin < binning.bins());
            prop_assert!(bin >= prev_bin, "bin_of must be monotone");
            prop_assert_eq!(bin, binning.bin_of_portable(v));
            prev_bin = bin;
        }
    }

    #[test]
    fn entropy_is_bounded(
        values in prop::collection::vec(0i32..5000, 1..4000),
    ) {
        let col: Column<i32> = Column::from(values);
        let e = column_entropy(&ColumnImprints::build(&col));
        prop_assert!((0.0..=1.0).contains(&e), "E = {}", e);
    }

    #[test]
    fn append_equals_fresh_build_answers(
        base in prop::collection::vec(0i32..1000, 0..1500),
        extra in prop::collection::vec(0i32..1000, 0..800),
        lo in 0i32..1000,
        width in 0i32..500,
    ) {
        // Building on base then appending must answer like an index whose
        // column was the concatenation all along (binning differs — the
        // appended index keeps the old borders — but *answers* must agree).
        let mut idx = ColumnImprints::build(&Column::from(base.clone()));
        idx.append(&extra);
        let mut all = base;
        all.extend_from_slice(&extra);
        let col: Column<i32> = Column::from(all);
        idx.verify(&col).unwrap();
        let pred = RangePredicate::between(lo, lo + width);
        let got = idx.evaluate(&col, &pred);
        let expect = oracle(&col, &pred);
        prop_assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn index_storage_roundtrip(
        values in prop::collection::vec(-3000i64..3000, 0..2000),
    ) {
        let col: Column<i64> = Column::from(values);
        let idx = ColumnImprints::build(&col);
        let mut bytes = Vec::new();
        imprints::storage::write_index(&idx, &mut bytes).unwrap();
        let back: ColumnImprints<i64> =
            imprints::storage::read_index(&mut bytes.as_slice()).unwrap();
        back.verify(&col).unwrap();
        let pred = RangePredicate::between(-500, 500);
        prop_assert_eq!(back.evaluate(&col, &pred), idx.evaluate(&col, &pred));
    }

    #[test]
    fn idlist_ops_match_set_semantics(
        a in prop::collection::btree_set(0u64..500, 0..200),
        b in prop::collection::btree_set(0u64..500, 0..200),
    ) {
        let la = IdList::from_sorted(a.iter().copied().collect());
        let lb = IdList::from_sorted(b.iter().copied().collect());
        let inter: Vec<u64> = a.intersection(&b).copied().collect();
        let uni: Vec<u64> = a.union(&b).copied().collect();
        let diff: Vec<u64> = a.difference(&b).copied().collect();
        let got_inter = la.intersect(&lb);
        let got_uni = la.union(&lb);
        let got_diff = la.difference(&lb);
        prop_assert_eq!(got_inter.as_slice(), inter.as_slice());
        prop_assert_eq!(got_uni.as_slice(), uni.as_slice());
        prop_assert_eq!(got_diff.as_slice(), diff.as_slice());
    }

    #[test]
    fn candidate_lines_never_lose_matches(
        values in prop::collection::vec(0i32..2000, 1..3000),
        lo in 0i32..2000,
        width in 0i32..1000,
    ) {
        let col: Column<i32> = Column::from(values);
        let idx = ColumnImprints::build(&col);
        let pred = RangePredicate::between(lo, lo + width);
        let (cands, _) = imprints::query::candidates(&idx, &pred);
        let vpb = idx.values_per_block() as u64;
        for id in oracle(&col, &pred) {
            prop_assert!(cands.contains(id / vpb), "id {} lost from candidates", id);
        }
    }

    #[test]
    fn multilevel_equals_flat_any_fanout(
        values in prop::collection::vec(0i32..800, 0..2500),
        fanout in 1u64..200,
        lo in 0i32..800,
        width in 0i32..400,
    ) {
        use imprints::multilevel::MultiLevelImprints;
        let col: Column<i32> = Column::from(values);
        let base = ColumnImprints::build(&col);
        let ml = MultiLevelImprints::from_base(base.clone(), fanout);
        let pred = RangePredicate::between(lo, lo + width);
        let flat = base.evaluate(&col, &pred);
        let two = ml.evaluate(&col, &pred);
        prop_assert_eq!(flat, two);
    }

    #[test]
    fn equi_width_matches_oracle(
        values in prop::collection::vec(-4000i64..4000, 0..2000),
        pred_lo in -4500i64..4500,
        width in 0i64..3000,
    ) {
        use imprints::{BinningStrategy, BuildOptions};
        let col: Column<i64> = Column::from(values);
        let idx = ColumnImprints::build_with(
            &col,
            BuildOptions { strategy: BinningStrategy::EquiWidth, ..Default::default() },
        );
        idx.verify(&col).unwrap();
        let pred = RangePredicate::between(pred_lo, pred_lo + width);
        let got = idx.evaluate(&col, &pred);
        let expect = oracle(&col, &pred);
        prop_assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn masks_innermask_subset_of_mask(
        mut sample in prop::collection::vec(-5000i64..5000, 64..300),
        lo in -6000i64..6000,
        width in 0i64..4000,
    ) {
        sample.sort_unstable();
        let binning = Binning::from_sorted_sample(&sample);
        let pred = RangePredicate::between(lo, lo + width);
        let m = imprints::masks::make_masks(&binning, &pred);
        prop_assert_eq!(m.innermask & !m.mask, 0);
    }
}
