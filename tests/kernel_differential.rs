//! Differential harness for the false-positive refinement kernels.
//!
//! The SWAR kernel (`imprints::simd`) and the scalar oracle loop must be
//! observationally identical: byte-identical id lists, identical counts
//! and identical access statistics, on every access path that weeds
//! candidates — imprints (evaluate, count, and the late-materialization
//! `candidates` + `refine` pair), zonemap, sequential scan, and the WAH
//! bitmap's edge bins — across all scalar widths (8/32/64-bit lanes,
//! floats included), arbitrary bound shapes (unbounded / inclusive /
//! exclusive / point / impossible) and partial-tail geometries (column
//! lengths that are not a multiple of `values_per_block`). Everything is
//! additionally pinned to the brute-force scalar oracle, so a bug shared
//! by both kernels cannot hide either.

use baselines::{SeqScan, WahBitmap, ZoneMap};
use colstore::{Bound, Column, RangePredicate, Scalar};
use imprints::simd::RefineKernel;
use imprints::{query, ColumnImprints};
use proptest::prelude::*;

/// Brute-force oracle: the definition of a correct answer.
fn oracle<T: Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> Vec<u64> {
    col.values()
        .iter()
        .enumerate()
        .filter(|(_, v)| pred.matches(v))
        .map(|(i, _)| i as u64)
        .collect()
}

/// Runs one (column, predicate) pair through every access path under both
/// kernels and cross-checks ids, counts and statistics.
fn assert_kernels_identical<T: Scalar>(values: Vec<T>, pred: &RangePredicate<T>) {
    const S: RefineKernel = RefineKernel::Scalar;
    const V: RefineKernel = RefineKernel::Swar;
    let col: Column<T> = Column::from(values);
    let expect = oracle(&col, pred);
    let idx = ColumnImprints::build(&col);

    // Imprints: materializing evaluation.
    let (ids_s, st_s) = query::evaluate_with_kernel(&idx, &col, pred, S);
    let (ids_v, st_v) = query::evaluate_with_kernel(&idx, &col, pred, V);
    assert_eq!(ids_s.as_slice(), expect.as_slice(), "imprints/scalar vs oracle: {pred}");
    assert_eq!(ids_s, ids_v, "imprints kernels diverged: {pred}");
    assert_eq!(st_s, st_v, "imprints stats diverged: {pred}");

    // Imprints: count kernel.
    let (n_s, cst_s) = query::count_with_kernel(&idx, &col, pred, S);
    let (n_v, cst_v) = query::count_with_kernel(&idx, &col, pred, V);
    assert_eq!(n_s as usize, expect.len(), "imprints count vs oracle: {pred}");
    assert_eq!((n_s, cst_s), (n_v, cst_v), "imprints count kernels diverged: {pred}");

    // Imprints: late materialization (candidates + refine).
    let (cands, mut rst_s) = query::candidate_id_ranges(&idx, pred);
    let mut rst_v = rst_s;
    let ref_s = query::refine_with_kernel(&col, pred, &cands, &mut rst_s, S);
    let ref_v = query::refine_with_kernel(&col, pred, &cands, &mut rst_v, V);
    assert_eq!(ref_s.as_slice(), expect.as_slice(), "refine/scalar vs oracle: {pred}");
    assert_eq!(ref_s, ref_v, "refine kernels diverged: {pred}");
    assert_eq!(rst_s, rst_v, "refine stats diverged: {pred}");

    // Zonemap.
    let zm = ZoneMap::build(&col);
    let (zs, zst_s) = zm.evaluate_with_kernel(&col, pred, S);
    let (zv, zst_v) = zm.evaluate_with_kernel(&col, pred, V);
    assert_eq!(zs.as_slice(), expect.as_slice(), "zonemap/scalar vs oracle: {pred}");
    assert_eq!((zs, zst_s), (zv, zst_v), "zonemap kernels diverged: {pred}");
    let (zn_s, zcst_s) = zm.count_with_kernel(&col, pred, S);
    let (zn_v, zcst_v) = zm.count_with_kernel(&col, pred, V);
    assert_eq!(zn_s as usize, expect.len(), "zonemap count vs oracle: {pred}");
    assert_eq!((zn_s, zcst_s), (zn_v, zcst_v), "zonemap count kernels diverged: {pred}");

    // Sequential scan.
    let scan = SeqScan::new(&col);
    let (ss, sst_s) = scan.evaluate_with_kernel(&col, pred, S);
    let (sv, sst_v) = scan.evaluate_with_kernel(&col, pred, V);
    assert_eq!(ss.as_slice(), expect.as_slice(), "scan/scalar vs oracle: {pred}");
    assert_eq!((ss, sst_s), (sv, sst_v), "scan kernels diverged: {pred}");
    let (sn_s, scst_s) = scan.count_with_kernel(&col, pred, S);
    let (sn_v, scst_v) = scan.count_with_kernel(&col, pred, V);
    assert_eq!(sn_s as usize, expect.len(), "scan count vs oracle: {pred}");
    assert_eq!((sn_s, scst_s), (sn_v, scst_v), "scan count kernels diverged: {pred}");

    // WAH bitmap, sharing the imprint's binning as the engine does.
    let wah = WahBitmap::build_with_binning(&col, idx.binning().clone());
    let (ws, wst_s) = wah.evaluate_with_kernel(&col, pred, S);
    let (wv, wst_v) = wah.evaluate_with_kernel(&col, pred, V);
    assert_eq!(ws.as_slice(), expect.as_slice(), "wah/scalar vs oracle: {pred}");
    assert_eq!((ws, wst_s), (wv, wst_v), "wah kernels diverged: {pred}");
    let (wn_s, wcst_s) = wah.count_with_kernel(&col, pred, S);
    let (wn_v, wcst_v) = wah.count_with_kernel(&col, pred, V);
    assert_eq!(wn_s as usize, expect.len(), "wah count vs oracle: {pred}");
    assert_eq!((wn_s, wcst_s), (wn_v, wcst_v), "wah count kernels diverged: {pred}");
}

/// Appends `extra` until the length is not a multiple of this type's
/// values-per-cacheline grid, forcing a partial tail line.
fn force_partial_tail<T: Scalar>(mut values: Vec<T>, extra: T) -> Vec<T> {
    let vpb = colstore::values_per_cacheline::<T>();
    while values.is_empty() || values.len().is_multiple_of(vpb) {
        values.push(extra);
    }
    values
}

/// An arbitrary predicate over a numeric domain: every bound shape,
/// point queries and impossible ranges included.
macro_rules! arb_pred {
    ($name:ident, $t:ty, $range:expr) => {
        fn $name() -> impl Strategy<Value = RangePredicate<$t>> {
            let bound = prop_oneof![
                1 => Just(Bound::Unbounded),
                4 => ($range).prop_map(Bound::Inclusive),
                4 => ($range).prop_map(Bound::Exclusive),
            ];
            (bound.clone(), bound, $range).prop_map(|(lo, hi, point)| {
                // One in a few predicates collapses to a point query.
                if point as i64 % 5 == 0 {
                    RangePredicate::equals(point)
                } else {
                    RangePredicate::with_bounds(lo, hi)
                }
            })
        }
    };
}

arb_pred!(arb_pred_u8, u8, any::<u8>());
arb_pred!(arb_pred_i32, i32, -2000i32..2000);
arb_pred!(arb_pred_i64, i64, -2_000_000i64..2_000_000);

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// u8: 64 values per cacheline, 8 SWAR lanes per word — the densest
    /// lane packing, over a domain the predicate bounds cover entirely
    /// (so `T::MIN`/`T::MAX` edges occur naturally).
    #[test]
    fn u8_paths_agree(
        values in prop::collection::vec(any::<u8>(), 0..2000),
        extra in any::<u8>(),
        pred in arb_pred_u8(),
    ) {
        assert_kernels_identical(force_partial_tail(values, extra), &pred);
    }

    /// i32: 16 values per line, 2 lanes per word, signed key flip.
    #[test]
    fn i32_paths_agree(
        values in prop::collection::vec(-1500i32..1500, 0..2000),
        extra in -1500i32..1500,
        pred in arb_pred_i32(),
    ) {
        assert_kernels_identical(force_partial_tail(values, extra), &pred);
    }

    /// i64: one lane per word — the SWAR degenerate case must still be
    /// byte-identical.
    #[test]
    fn i64_paths_agree(
        values in prop::collection::vec(-1_500_000i64..1_500_000, 0..1500),
        extra in -1_500_000i64..1_500_000,
        pred in arb_pred_i64(),
    ) {
        assert_kernels_identical(force_partial_tail(values, extra), &pred);
    }

    /// f64: totalOrder keys with NaNs and infinities in the data.
    #[test]
    fn f64_paths_agree(
        values in prop::collection::vec(
            prop_oneof![
                12 => -1e6f64..1e6,
                1 => Just(f64::NAN),
                1 => Just(f64::INFINITY),
                1 => Just(f64::NEG_INFINITY),
                1 => Just(-0.0f64),
            ],
            0..1500,
        ),
        lo in -1.2e6f64..1.2e6,
        width in -1e4f64..8e5,
    ) {
        // Negative widths yield impossible ranges; both kernels must
        // agree on those too.
        let pred = RangePredicate::between(lo, lo + width);
        assert_kernels_identical(force_partial_tail(values, 0.25), &pred);
    }

    /// One-sided float predicates exercise the unbounded key edges
    /// (key 0 / key MAX) against NaN-bearing data.
    #[test]
    fn f64_one_sided_agree(
        values in prop::collection::vec(
            prop_oneof![8 => -1e6f64..1e6, 1 => Just(f64::NAN)],
            1..800,
        ),
        cut in -1e6f64..1e6,
        upper in any::<bool>(),
    ) {
        let pred = if upper { RangePredicate::at_most(cut) } else { RangePredicate::greater_than(cut) };
        assert_kernels_identical(force_partial_tail(values, -0.5), &pred);
    }
}

/// Deterministic spot checks at the type extremes, where proptest's
/// uniform draws rarely land.
#[test]
fn extreme_bound_spot_checks() {
    let u8s: Vec<u8> = (0..997).map(|i| (i % 256) as u8).collect();
    for pred in [
        RangePredicate::between(0u8, 0),
        RangePredicate::between(255u8, 255),
        RangePredicate::with_bounds(Bound::Exclusive(255u8), Bound::Unbounded),
        RangePredicate::with_bounds(Bound::Unbounded, Bound::Exclusive(0u8)),
        RangePredicate::all(),
    ] {
        assert_kernels_identical(u8s.clone(), &pred);
    }
    let i64s: Vec<i64> = (0..500)
        .map(|i| match i % 5 {
            0 => i64::MIN,
            1 => i64::MAX,
            _ => (i as i64 - 250) * 1_000_003,
        })
        .collect();
    for pred in [
        RangePredicate::at_most(i64::MIN),
        RangePredicate::at_least(i64::MAX),
        RangePredicate::between(i64::MIN, i64::MIN + 1),
        RangePredicate::half_open(i64::MAX - 1, i64::MAX),
    ] {
        assert_kernels_identical(i64s.clone(), &pred);
    }
}
