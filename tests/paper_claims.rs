//! Qualitative claims of the paper, asserted at laptop scale.
//!
//! These are the *shapes* the evaluation (§6) reports; EXPERIMENTS.md
//! records the corresponding quantitative runs of the harness.

use baselines::{WahBitmap, ZoneMap};
use colstore::{Column, RangeIndex, RangePredicate};
use datagen::{datasets, distributions, entropy_sweep};
use imprints::{column_entropy, ColumnImprints};

/// §6.2 / Fig. 6: "The storage overhead … is just a few percent over the
/// size of the columns being indexed", max ~12%.
#[test]
fn imprint_overhead_bounded_on_all_datasets() {
    for family in datasets::DatasetFamily::ALL {
        for gc in datasets::generate(family, 100_000, 1) {
            let overhead = column_imprints_overhead(&gc);
            assert!(
                overhead < 0.14,
                "{}: imprints overhead {:.3} exceeds the paper's ~12% bound",
                gc.name,
                overhead
            );
        }
    }
}

fn column_imprints_overhead(gc: &datasets::GeneratedColumn) -> f64 {
    use colstore::relation::AnyColumn;
    macro_rules! ov {
        ($c:expr) => {{
            let idx = ColumnImprints::build($c);
            RangeIndex::size_bytes(&idx) as f64 / $c.data_bytes() as f64
        }};
    }
    match &gc.column {
        AnyColumn::I8(c) => ov!(c),
        AnyColumn::U8(c) => ov!(c),
        AnyColumn::I16(c) => ov!(c),
        AnyColumn::U16(c) => ov!(c),
        AnyColumn::I32(c) => ov!(c),
        AnyColumn::U32(c) => ov!(c),
        AnyColumn::I64(c) => ov!(c),
        AnyColumn::U64(c) => ov!(c),
        AnyColumn::F32(c) => ov!(c),
        AnyColumn::F64(c) => ov!(c),
    }
}

/// §6.2 / Fig. 7: imprints stay ≤ ~12% across the whole entropy range,
/// while WAH degrades badly as entropy grows.
#[test]
fn imprints_robust_to_entropy_wah_is_not() {
    let rows = 200_000;
    let low: Column<i64> = Column::from(entropy_sweep::entropy_dial(rows, 1 << 20, 0.0, 3));
    let high: Column<i64> = Column::from(entropy_sweep::entropy_dial(rows, 1 << 20, 1.0, 3));

    let imp_low = ColumnImprints::build(&low);
    let imp_high = ColumnImprints::build(&high);
    assert!(column_entropy(&imp_low) < column_entropy(&imp_high));

    let bytes = low.data_bytes() as f64;
    let imp_high_pct = RangeIndex::size_bytes(&imp_high) as f64 / bytes;
    assert!(imp_high_pct < 0.14, "imprints at high entropy: {imp_high_pct:.3}");

    let wah_low = WahBitmap::build_with_binning(&low, imp_low.binning().clone());
    let wah_high = WahBitmap::build_with_binning(&high, imp_high.binning().clone());
    let wah_low_pct = wah_low.size_bytes() as f64 / bytes;
    let wah_high_pct = wah_high.size_bytes() as f64 / bytes;
    assert!(
        wah_high_pct > 4.0 * wah_low_pct && wah_high_pct > 0.5,
        "WAH must degrade with entropy: {wah_low_pct:.3} -> {wah_high_pct:.3}"
    );
    assert!(imp_high_pct < wah_high_pct / 4.0, "imprints must beat WAH at high entropy");
}

/// §2.2: "If each cacheline contains both the minimum and the maximum value
/// of the domain and one random value in between, zonemaps are practically
/// useless, but imprints will have a different bit set for each of these
/// random values."
#[test]
fn skew_pathology_zonemap_useless_imprints_not() {
    let n = 64_000usize;
    let col: Column<i32> = (0..n)
        .map(|i| match i % 16 {
            0 => 0,
            1 => 1_000_000,
            k => ((i / 16) * 16 + k) as i32 % 1_000_000,
        })
        .collect();
    let pred = RangePredicate::between(10_000, 20_000);

    let zm = ZoneMap::build(&col);
    let (_, zm_stats) = zm.evaluate_with_stats(&col, &pred);
    assert_eq!(zm_stats.lines_skipped, 0, "zonemap cannot skip any zone");

    let imp = ColumnImprints::build(&col);
    let (_, imp_stats) = imp.evaluate_with_stats(&col, &pred);
    assert!(
        imp_stats.lines_skipped > (n as u64 / 16) / 2,
        "imprints must skip most cachelines; skipped {}",
        imp_stats.lines_skipped
    );
    assert!(imp_stats.value_comparisons < zm_stats.value_comparisons / 2);
}

/// §6.1 / Fig. 3-4: entropy quantifies clustering — sorted < clustered <
/// shuffled, and the five dataset families land in their expected bands.
#[test]
fn entropy_orders_dataset_families() {
    let rows = 100_000;
    let e_of = |family| {
        let gc = &datasets::generate(family, rows, 5)[0];
        column_imprints_entropy(gc)
    };
    let routing = e_of(datasets::DatasetFamily::Routing);
    let sdss = e_of(datasets::DatasetFamily::Sdss);
    let tpch = e_of(datasets::DatasetFamily::Tpch);
    // SkyServer-style uniform data is by far the most entropic (paper
    // measures 0.79 vs 0.31/0.23 for routing/tpch).
    assert!(sdss > 0.5, "SDSS entropy {sdss}");
    assert!(routing < 0.35, "Routing entropy {routing}");
    assert!(tpch < 0.5, "TPC-H entropy {tpch}");
    assert!(sdss > routing && sdss > tpch);
}

fn column_imprints_entropy(gc: &datasets::GeneratedColumn) -> f64 {
    use colstore::relation::AnyColumn;
    macro_rules! e {
        ($c:expr) => {
            column_entropy(&ColumnImprints::build($c))
        };
    }
    match &gc.column {
        AnyColumn::I8(c) => e!(c),
        AnyColumn::U8(c) => e!(c),
        AnyColumn::I16(c) => e!(c),
        AnyColumn::U16(c) => e!(c),
        AnyColumn::I32(c) => e!(c),
        AnyColumn::U32(c) => e!(c),
        AnyColumn::I64(c) => e!(c),
        AnyColumn::U64(c) => e!(c),
        AnyColumn::F32(c) => e!(c),
        AnyColumn::F64(c) => e!(c),
    }
}

/// §6.3 / Fig. 11: probe/comparison profile — WAH probes the most (more
/// than one per record) but compares the least; zonemap probes exactly one
/// per cacheline; imprints balance in between.
#[test]
fn probe_comparison_profile() {
    let col: Column<i64> = Column::from(distributions::uniform_ints(200_000, 0, 1 << 20, 17));
    let imp = ColumnImprints::build(&col);
    let zm = ZoneMap::build(&col);
    let wah = WahBitmap::build_with_binning(&col, imp.binning().clone());

    // A ~45% selectivity query, as in Figure 11.
    let mut sorted = col.values().to_vec();
    sorted.sort_unstable();
    let pred = RangePredicate::between(sorted[50_000], sorted[140_000]);

    let n = col.len() as f64;
    let (_, s_imp) = imp.evaluate_with_stats(&col, &pred);
    let (_, s_zm) = zm.evaluate_with_stats(&col, &pred);
    let (_, s_wah) = wah.evaluate_with_stats(&col, &pred);

    // Zonemap: exactly one probe per zone.
    assert_eq!(s_zm.index_probes, col.cacheline_count() as u64);
    // WAH probes dominate everyone else's.
    assert!(s_wah.index_probes > s_imp.index_probes);
    assert!(s_wah.index_probes > s_zm.index_probes);
    // ... but WAH needs the fewest value comparisons.
    assert!(s_wah.value_comparisons < s_imp.value_comparisons);
    assert!(s_wah.value_comparisons < s_zm.value_comparisons);
    // Imprint probes are bounded by stored imprints (compression pays).
    assert!(s_imp.index_probes as usize <= imp.imprint_count());
    // WAH probe volume is on the order of the record count (we count
    // decoded words — 31 bits each — so the per-row figure sits just below
    // the paper's per-bit ">1 per record" but the dominance holds).
    assert!(s_wah.probes_per_row(col.len()) > 0.5);
    assert!(s_zm.comparisons_per_row(col.len()) <= 1.0);
    let _ = n;
}

/// Figure 1/2 of the paper, end to end: the worked 15-value example and the
/// 23-cacheline compression example are reproduced exactly elsewhere
/// (unit tests); here we assert the *sizes* relation the figures convey:
/// imprints ≤ zonemap ≤ bitmap on the classic example shapes.
#[test]
fn index_size_ranking_on_clustered_data() {
    let col: Column<i64> = (0..400_000).map(|i| i / 1000).collect();
    let imp = ColumnImprints::build(&col);
    let zm = ZoneMap::build(&col);
    let wah = WahBitmap::build_with_binning(&col, imp.binning().clone());
    let (i, z, w) = (RangeIndex::size_bytes(&imp), zm.size_bytes(), wah.size_bytes());
    assert!(i < z, "imprints {i} < zonemap {z}");
    // On such clustered data WAH also compresses well, but imprints still
    // win by an order of magnitude.
    assert!(i * 5 < w || w < z, "imprints {i}, wah {w}, zonemap {z}");
}

/// §3: the innermask fast path never changes answers, only costs.
#[test]
fn innermask_ablation_equivalence() {
    let col: Column<i64> = Column::from(distributions::uniform_ints(100_000, 0, 5000, 23));
    let idx = ColumnImprints::build(&col);
    for (lo, hi) in [(0, 5000), (100, 4000), (2000, 2001)] {
        let pred = RangePredicate::between(lo, hi);
        let (a, _) = imprints::query::evaluate(&idx, &col, &pred);
        let (b, _) = imprints::query::evaluate_no_innermask(&idx, &col, &pred);
        assert_eq!(a, b);
    }
}

/// §4.1: appends never rewrite existing imprint vectors.
#[test]
fn appends_are_strictly_additive() {
    let col: Column<i64> = Column::from(distributions::uniform_ints(64_000, 0, 1000, 29));
    let mut idx = ColumnImprints::build(&col);
    let snapshot: Vec<u64> = imprints_vectors(&idx);
    idx.append(&distributions::uniform_ints(10_000, 0, 1000, 31));
    let after = imprints_vectors(&idx);
    assert_eq!(&after[..snapshot.len()], &snapshot[..], "prefix must be untouched");
    assert!(after.len() >= snapshot.len());
}

fn imprints_vectors<T: colstore::Scalar>(idx: &ColumnImprints<T>) -> Vec<u64> {
    idx.runs().map(|r| r.imprint).collect()
}
