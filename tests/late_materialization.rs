//! The late-materialization query plan of §3: per-attribute candidate
//! cachelines, merge-join in id space, then a single false-positive pass —
//! across columns of *different* value widths (hence different cacheline
//! geometry) of the same relation.

use colstore::{CachelineSet, Column, RangePredicate, Relation, Value};
use datagen::distributions;
use imprints::query::{candidate_id_ranges, candidates, conjunction2, refine};
use imprints::ColumnImprints;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn conjunction_matches_oracle_across_widths() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 50_000usize;
    // Three attributes with different widths: u8, i32, f64.
    let a: Column<u8> = (0..n).map(|_| rng.gen_range(0..50u8)).collect();
    let b: Column<i32> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
    let c: Column<f64> = Column::from(distributions::random_walk(n, 0.0, 100.0, 0.01, 4096, 1));

    let ia = ColumnImprints::build(&a);
    let ib = ColumnImprints::build(&b);
    let ic = ColumnImprints::build(&c);

    let pa = RangePredicate::between(10u8, 20);
    let pb = RangePredicate::between(1000, 4000);
    let pc = RangePredicate::between(25.0, 75.0);

    // Pairwise conjunctions via the built-in helper.
    let (ab, _) = conjunction2((&ia, &a, &pa), (&ib, &b, &pb));
    let oracle_ab: Vec<u64> = (0..n as u64)
        .filter(|&i| pa.matches(&a.values()[i as usize]) && pb.matches(&b.values()[i as usize]))
        .collect();
    assert_eq!(ab.as_slice(), oracle_ab.as_slice());

    // Three-way: intersect id-space candidate sets manually, refine each.
    let (ca, _) = candidate_id_ranges(&ia, &pa);
    let (cb, _) = candidate_id_ranges(&ib, &pb);
    let (cc, _) = candidate_id_ranges(&ic, &pc);
    let joint = ca.intersect(&cb).intersect(&cc);
    let mut stats = imprints::ImprintStats::default();
    let ids_a = refine(&a, &pa, &joint, &mut stats);
    let survivors: Vec<u64> = ids_a
        .iter()
        .filter(|&i| pb.matches(&b.values()[i as usize]) && pc.matches(&c.values()[i as usize]))
        .collect();
    let oracle_abc: Vec<u64> = (0..n as u64)
        .filter(|&i| {
            pa.matches(&a.values()[i as usize])
                && pb.matches(&b.values()[i as usize])
                && pc.matches(&c.values()[i as usize])
        })
        .collect();
    assert_eq!(survivors, oracle_abc);
}

#[test]
fn candidate_sets_shrink_with_each_attribute() {
    // "The combination of many range queries will increase the selectivity
    // of the final result set" — each merge-join can only shrink the
    // candidate space.
    let n = 100_000usize;
    let a: Column<f64> = Column::from(distributions::random_walk(n, 0.0, 100.0, 0.001, 2048, 5));
    let b: Column<f64> = Column::from(distributions::random_walk(n, 0.0, 100.0, 0.001, 2048, 6));
    let ia = ColumnImprints::build(&a);
    let ib = ColumnImprints::build(&b);
    let pa = RangePredicate::between(40.0, 60.0);
    let pb = RangePredicate::between(40.0, 60.0);
    let (ca, _) = candidate_id_ranges(&ia, &pa);
    let (cb, _) = candidate_id_ranges(&ib, &pb);
    let joint = ca.intersect(&cb);
    assert!(joint.line_count() <= ca.line_count());
    assert!(joint.line_count() <= cb.line_count());
    assert!(
        joint.line_count() < ca.line_count().max(cb.line_count()),
        "independent clustered walks should actually prune"
    );
}

#[test]
fn line_space_candidates_convert_to_id_space_consistently() {
    let n = 30_000usize;
    let col: Column<i16> = (0..n).map(|i| ((i * 31) % 5000) as i16).collect();
    let idx = ColumnImprints::build(&col);
    let pred = RangePredicate::between(100i16, 200);
    let (lines, _) = candidates(&idx, &pred);
    let (ids, _) = candidate_id_ranges(&idx, &pred);
    let vpb = idx.values_per_block() as u64;
    // Expected id count: each candidate line contributes its (possibly
    // clamped) row range.
    let expected: u64 =
        lines.lines().map(|l| ((l + 1) * vpb).min(n as u64).saturating_sub(l * vpb)).sum();
    assert_eq!(ids.line_count(), expected);
    // And every candidate id belongs to a candidate line.
    for r in ids.runs() {
        for id in [r.start, r.end - 1] {
            assert!(lines.contains(id / vpb));
        }
    }
}

#[test]
fn relation_tuple_reconstruction_after_conjunction() {
    let n = 10_000usize;
    let temp: Column<f32> = (0..n).map(|i| 15.0 + ((i % 200) as f32) / 10.0).collect();
    let station: Column<u16> = (0..n).map(|i| (i % 37) as u16).collect();
    let mut rel = Relation::new("weather");
    rel.add_column("temp", temp.clone()).unwrap();
    rel.add_column("station", station.clone()).unwrap();

    let it = ColumnImprints::build(&temp);
    let is = ColumnImprints::build(&station);
    let pt = RangePredicate::between(20.0f32, 21.0);
    let ps = RangePredicate::equals(5u16);
    let (ids, _) = conjunction2((&it, &temp, &pt), (&is, &station, &ps));
    let tuples = rel.tuples(&ids);
    assert_eq!(tuples.len(), ids.len());
    for t in &tuples {
        match (t[0], t[1]) {
            (Value::F32(x), Value::U16(s)) => {
                assert!((20.0..=21.0).contains(&x));
                assert_eq!(s, 5);
            }
            other => panic!("unexpected tuple {other:?}"),
        }
    }
}

#[test]
fn empty_intersection_short_circuits() {
    let n = 20_000usize;
    let a: Column<i32> = (0..n).map(|i| (i % 100) as i32).collect();
    let b: Column<i32> = (0..n).map(|i| ((i + 50) % 100) as i32).collect();
    let ia = ColumnImprints::build(&a);
    let ib = ColumnImprints::build(&b);
    // Disjoint value predicates that no row satisfies jointly... a values
    // 0..10 happen at i%100 < 10; b at those rows is 50..60.
    let pa = RangePredicate::between(0, 9);
    let pb = RangePredicate::between(90, 95);
    let (ids, _) = conjunction2((&ia, &a, &pa), (&ib, &b, &pb));
    let oracle: Vec<u64> = (0..n as u64)
        .filter(|&i| pa.matches(&a.values()[i as usize]) && pb.matches(&b.values()[i as usize]))
        .collect();
    assert_eq!(ids.as_slice(), oracle.as_slice());
}

#[test]
fn cachelineset_algebra_with_imprint_output() {
    let col: Column<i64> = (0..50_000).map(|i| i / 500).collect();
    let idx = ColumnImprints::build(&col);
    let (c1, _) = candidates(&idx, &RangePredicate::between(10, 20));
    let (c2, _) = candidates(&idx, &RangePredicate::between(15, 30));
    let (c_union_pred, _) = candidates(&idx, &RangePredicate::between(10, 30));
    // Candidates of the union predicate = union of candidates (same
    // binning, contiguous ranges).
    let manual_union = c1.union(&c2);
    assert_eq!(manual_union, c_union_pred);
    // Intersection is contained in both.
    let inter = c1.intersect(&c2);
    assert!(inter.line_count() <= c1.line_count().min(c2.line_count()));
    let empty = CachelineSet::new();
    assert!(inter.intersect(&empty).is_empty());
}
