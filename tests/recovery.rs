//! Restart recovery and imprint-resident cold eviction, end to end: a
//! durable engine is killed and reopened, answers must come back
//! byte-identical; evicted-cold segments must answer fully-covered
//! counts from the resident imprint alone (zero data bytes faulted) and
//! fault data back in only when a query materializes row ids.

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::{ColumnType, IdList, Value};
use column_imprints::engine::{Engine, EngineConfig, StorageOptions, ValueRange};

fn tmproot(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("imprints_rec_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_cfg(root: &std::path::Path) -> EngineConfig {
    EngineConfig {
        segment_rows: 1024,
        workers: 2,
        storage: StorageOptions { root: Some(root.to_path_buf()), ..Default::default() },
        ..Default::default()
    }
}

/// Three sealed segments plus a flushed partial head: 3500 rows of
/// `(i, i % 97)` in table `t`.
fn seed_engine(cfg: EngineConfig) -> Engine {
    let engine = Engine::new(cfg);
    engine.create_table("t", &[("id", ColumnType::I64), ("grp", ColumnType::I64)]).unwrap();
    let t = engine.table("t").unwrap();
    let ids: Vec<i64> = (0..3500).collect();
    let grps: Vec<i64> = (0..3500).map(|i| i % 97).collect();
    t.append_batch(vec![
        AnyColumn::I64(ids.into_iter().collect()),
        AnyColumn::I64(grps.into_iter().collect()),
    ])
    .unwrap();
    assert_eq!(engine.flush(), 1, "the partial head must seal durably");
    engine
}

fn probes() -> Vec<Vec<(&'static str, ValueRange)>> {
    vec![
        vec![("id", ValueRange::between(Value::I64(100), Value::I64(180)))],
        vec![("grp", ValueRange::between(Value::I64(3), Value::I64(5)))],
        vec![
            ("id", ValueRange::between(Value::I64(900), Value::I64(2900))),
            ("grp", ValueRange::at_most(Value::I64(10))),
        ],
        vec![("id", ValueRange::at_least(Value::I64(3400)))],
    ]
}

fn answers(engine: &Engine) -> Vec<IdList> {
    probes()
        .iter()
        .map(|p| {
            let preds: Vec<(&str, ValueRange)> = p.clone();
            engine.query("t", &preds).unwrap()
        })
        .collect()
}

#[test]
fn restart_recovers_byte_identical_answers() {
    let root = tmproot("restart");
    let engine = seed_engine(durable_cfg(&root));
    let oracle = answers(&engine);
    let rows = engine.table("t").unwrap().row_count();
    drop(engine);

    let (engine, report) = Engine::open(durable_cfg(&root)).unwrap();
    assert_eq!(report.tables, 1);
    assert_eq!(report.segments, 4, "3 full segments + 1 flushed head");
    assert_eq!(report.rows, rows);
    assert!(report.indexes_recovered > 0, "persisted indexes must be read back");
    assert_eq!(report.indexes_rebuilt, 0, "no rebuild needed on a clean restart");

    // The fast restart path leaves data evicted until first touched.
    let stats = engine.catalog().storage_stats();
    assert_eq!(stats.data_bytes_resident, 0);
    assert!(stats.data_bytes_evicted > 0);

    assert_eq!(engine.table("t").unwrap().row_count(), rows);
    assert_eq!(answers(&engine), oracle, "recovered answers must be byte-identical");

    // Appending keeps working after recovery: row ids resume past the
    // recovered tail.
    let t = engine.table("t").unwrap();
    t.append_batch(vec![
        AnyColumn::I64((3500..3600).collect()),
        AnyColumn::I64((3500..3600).map(|i| i % 97).collect()),
    ])
    .unwrap();
    assert_eq!(t.row_count(), rows + 100);
    let tail = engine.query("t", &[("id", ValueRange::at_least(Value::I64(3550)))]).unwrap();
    assert_eq!(tail.len(), 50);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn rebuild_path_answers_identically() {
    let root = tmproot("rebuild");
    let engine = seed_engine(durable_cfg(&root));
    let oracle = answers(&engine);
    drop(engine);

    let mut cfg = durable_cfg(&root);
    cfg.storage.load_indexes = false;
    let (engine, report) = Engine::open(cfg).unwrap();
    assert_eq!(report.indexes_recovered, 0);
    assert!(report.indexes_rebuilt > 0, "indexes must be rebuilt from column data");
    assert!(report.rebuild_nanos > 0);
    assert_eq!(answers(&engine), oracle, "rebuilt answers must be byte-identical");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn evicted_count_answers_from_imprint_alone() {
    let root = tmproot("evict");
    let mut cfg = durable_cfg(&root);
    cfg.storage.max_resident_data_bytes = 0;
    let engine = seed_engine(cfg);
    let rows = engine.table("t").unwrap().row_count();
    let oracle = answers(&engine);

    let report = engine.maintenance_tick();
    assert!(report.evicted_segments > 0, "a zero budget must evict every persisted segment");
    assert!(report.evicted_bytes > 0);
    let stats = engine.catalog().storage_stats();
    assert_eq!(stats.data_bytes_resident, 0, "everything sealed is persisted, so evictable");
    assert!(stats.data_bytes_evicted > 0);
    assert_eq!(stats.faulted_bytes, 0);

    // A fully-covered COUNT is answered by the resident imprint: exact
    // answer, zero data bytes read back from disk.
    let n = engine
        .count("t", &[("id", ValueRange::between(Value::I64(i64::MIN), Value::I64(i64::MAX)))])
        .unwrap();
    assert_eq!(n, rows);
    assert_eq!(
        engine.catalog().storage_stats().faulted_bytes,
        0,
        "imprint-covered count must not touch evicted data"
    );

    // Materializing row ids needs value refinement: the data faults back
    // in and the answers still match the pre-eviction oracle.
    assert_eq!(answers(&engine), oracle, "faulted-in answers must match the oracle");
    assert!(engine.catalog().storage_stats().faulted_bytes > 0, "refinement must fault data in");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn orphan_directories_are_garbage_collected() {
    let root = tmproot("orphan");
    let engine = seed_engine(durable_cfg(&root));
    drop(engine);

    // A crashed segment write (tmp dir) and a lost-race replacement dir
    // that no manifest references.
    let tdir = root.join("t");
    std::fs::create_dir_all(tdir.join("seg-000000009999-7.tmp")).unwrap();
    std::fs::create_dir_all(tdir.join("seg-000000009999-8")).unwrap();

    let (engine, report) = Engine::open(durable_cfg(&root)).unwrap();
    assert_eq!(report.orphans_removed, 2);
    assert!(!tdir.join("seg-000000009999-7.tmp").exists());
    assert!(!tdir.join("seg-000000009999-8").exists());
    assert_eq!(engine.table("t").unwrap().row_count(), 3500);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn corrupt_index_file_falls_back_to_rebuild() {
    let root = tmproot("corrupt_idx");
    let engine = seed_engine(durable_cfg(&root));
    let oracle = answers(&engine);
    drop(engine);

    let imp = find_file(&root.join("t"), "c0.imp");
    flip_byte(&imp, 40);

    let (engine, report) = Engine::open(durable_cfg(&root)).unwrap();
    assert!(report.indexes_rebuilt >= 1, "the damaged imprint must be rebuilt from data");
    assert!(report.indexes_recovered > 0, "undamaged columns still take the fast path");
    assert_eq!(answers(&engine), oracle, "data is ground truth; answers survive index damage");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn corrupt_data_and_manifest_surface_typed_errors() {
    let root = tmproot("corrupt_data");
    let engine = seed_engine(durable_cfg(&root));
    drop(engine);

    // Damage one column's data *and* index: nothing left to recover that
    // column from, so open must fail with a typed error — not a panic,
    // not a silently wrong table.
    let seg = find_file(&root.join("t"), "c0.col");
    flip_byte(&seg, 100);
    flip_byte(&seg.with_extension("imp"), 100);
    assert!(Engine::open(durable_cfg(&root)).is_err());

    // A damaged manifest is detected before any segment is read.
    let root2 = tmproot("corrupt_manifest");
    let engine = seed_engine(durable_cfg(&root2));
    drop(engine);
    flip_byte(&root2.join("t").join("MANIFEST"), 9);
    assert!(Engine::open(durable_cfg(&root2)).is_err());

    let _ = std::fs::remove_dir_all(root);
    let _ = std::fs::remove_dir_all(root2);
}

/// First file named `name` under any segment directory of `table_dir`.
fn find_file(table_dir: &std::path::Path, name: &str) -> std::path::PathBuf {
    let mut dirs: Vec<_> = std::fs::read_dir(table_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for d in dirs {
        let f = d.join(name);
        if f.is_file() {
            return f;
        }
    }
    panic!("no {name} under {}", table_dir.display());
}

fn flip_byte(path: &std::path::Path, at: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    let i = at.min(bytes.len() - 1);
    bytes[i] ^= 0x40;
    std::fs::write(path, bytes).unwrap();
}
