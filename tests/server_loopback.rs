//! Loopback integration tests for the network front-end: concurrent
//! clients must see responses byte-identical to the in-process oracle,
//! overload must shed with `BUSY` (never a hang), shutdown must drain, and
//! `Catalog::drop_table` must not invalidate snapshots pinned by in-flight
//! batches.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::{ColumnType, Value};
use column_imprints::engine::{
    BatchAnswer, BatchQuery, Engine, EngineConfig, ValueRange, ValueSet,
};
use column_imprints::server::protocol::{fmt_err, fmt_ok_count, fmt_ok_ids};
use column_imprints::server::{Client, Reply, Server, ServerConfig};

const SENSORS: u64 = 13;
const VALUE_MOD: u64 = 10007;

/// An engine with one static table `readings(sensor: U16, value: I64)`:
/// `sensor = i % 13`, `value = i * 7919 % 10007`. Static data keeps every
/// oracle answer stable while clients hammer the server.
fn build_engine(rows: u64, segment_rows: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig {
        segment_rows,
        workers: 2,
        tail_index_min_rows: 256,
        ..Default::default()
    }));
    let t = engine
        .create_table("readings", &[("sensor", ColumnType::U16), ("value", ColumnType::I64)])
        .unwrap();
    let sensor: Vec<u16> = (0..rows).map(|i| (i % SENSORS) as u16).collect();
    let value: Vec<i64> = (0..rows).map(|i| (i.wrapping_mul(7919) % VALUE_MOD) as i64).collect();
    t.append_batch(vec![
        AnyColumn::U16(sensor.into_iter().collect()),
        AnyColumn::I64(value.into_iter().collect()),
    ])
    .unwrap();
    engine
}

/// One deterministic mixed request: the wire body, and the oracle preds +
/// verb to compute the expected response from the in-process engine.
fn mixed_request(engine: &Engine, tag: &str, c: usize, i: usize) -> (String, String) {
    let s = ((c * 7 + i) % SENSORS as usize) as u16;
    let s2 = ((c * 5 + i * 3) % SENSORS as usize) as u16;
    let (lo, hi) = (s.min(s2), s.max(s2));
    let x = ((c * 131 + i * 17) % VALUE_MOD as usize) as i64;
    match (c + i) % 4 {
        0 => {
            let body = format!("QUERY readings sensor={s}");
            let ids = engine.query("readings", &[("sensor", ValueRange::equals(Value::U16(s)))]);
            (body, fmt_ok_ids(Some(tag), ids.unwrap().as_slice()))
        }
        1 => {
            let body = format!("COUNT readings value<={x}");
            let n = engine.count("readings", &[("value", ValueRange::at_most(Value::I64(x)))]);
            (body, fmt_ok_count(Some(tag), n.unwrap()))
        }
        2 => {
            let body = format!("QUERY readings sensor={lo}..{hi} value>={x}");
            let ids = engine.query(
                "readings",
                &[
                    ("sensor", ValueRange::between(Value::U16(lo), Value::U16(hi))),
                    ("value", ValueRange::at_least(Value::I64(x))),
                ],
            );
            (body, fmt_ok_ids(Some(tag), ids.unwrap().as_slice()))
        }
        _ => {
            let body = format!("COUNT readings sensor>={lo} value<={x}");
            let n = engine.count(
                "readings",
                &[
                    ("sensor", ValueRange::at_least(Value::U16(lo))),
                    ("value", ValueRange::at_most(Value::I64(x))),
                ],
            );
            (body, fmt_ok_count(Some(tag), n.unwrap()))
        }
    }
}

#[test]
fn concurrent_clients_match_in_process_oracle() {
    let engine = build_engine(40_000, 1024);
    let server =
        Server::start(Arc::clone(&engine), ServerConfig::from_engine(engine.config())).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..6usize)
        .map(|c| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                for i in 0..50usize {
                    let tag = format!("c{c}-{i}");
                    let (body, expected) = mixed_request(&engine, &tag, c, i);
                    client.send(&format!("#{tag} {body}")).unwrap();
                    let line = client.recv().unwrap();
                    assert_eq!(line, expected, "response mismatch for {body:?}");
                }
                // Inline verbs and error paths, also byte-checked.
                assert_eq!(
                    client.roundtrip("TABLES").unwrap(),
                    Reply::Ok(vec!["readings".to_string()])
                );
                assert_eq!(client.ping().unwrap(), Reply::Ok(Vec::new()));
                let not_found = engine.table("nope").err().expect("lookup fails").to_string();
                client.send("#e QUERY nope sensor=1").unwrap();
                assert_eq!(client.recv().unwrap(), fmt_err(Some("e"), &not_found));
                client.send("#f COUNT readings bogus=1").unwrap();
                assert_eq!(
                    client.recv().unwrap(),
                    fmt_err(Some("f"), "no column \"bogus\" in table \"readings\"")
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.shed, 0, "the sync round-trip load must never overflow the default queue");
    // 50 mixed requests plus the two error-path requests per client — the
    // bad-table and bad-column QUERY/COUNTs are admitted too (they fail at
    // dispatch, after the queue).
    assert_eq!(stats.admitted, 6 * 52, "every QUERY/COUNT goes through admission");
    assert!(stats.batches > 0 && stats.batched_requests == stats.admitted);
}

#[test]
fn overload_sheds_with_busy_and_nothing_hangs() {
    const FLOOD: usize = 1000;
    let engine = build_engine(200_000, 2048);
    let cfg = ServerConfig {
        queue_depth: 4,
        batch_max: 4,
        batch_tick: Duration::ZERO,
        ..ServerConfig::from_engine(engine.config())
    };
    let server = Server::start(Arc::clone(&engine), cfg).unwrap();
    let oracle_heavy =
        engine.query("readings", &[("value", ValueRange::at_least(Value::I64(1)))]).unwrap();
    let oracle_count =
        engine.count("readings", &[("sensor", ValueRange::equals(Value::U16(1)))]).unwrap();

    // Pipeline one huge materializing query, then flood counts without
    // reading: the dispatcher saturates, the 4-deep queue overflows, and
    // everything past it must shed with an immediate tagged BUSY.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    client.send("#h QUERY readings value>=1").unwrap();
    for i in 0..FLOOD {
        client.send(&format!("#c{i} COUNT readings sensor=1")).unwrap();
    }
    let mut seen: HashMap<String, Reply> = HashMap::new();
    for _ in 0..FLOOD + 1 {
        let (tag, reply) = client.recv_reply().unwrap();
        let tag = tag.expect("every reply carries its request tag");
        assert!(seen.insert(tag.clone(), reply).is_none(), "duplicate reply for {tag:?}");
    }

    assert_eq!(seen["h"].ids().expect("heavy query must succeed"), oracle_heavy.as_slice());
    let (mut ok, mut busy) = (0usize, 0usize);
    for i in 0..FLOOD {
        match &seen[&format!("c{i}")] {
            Reply::Busy => busy += 1,
            reply => {
                assert_eq!(reply.count(), Some(oracle_count), "admitted count must be exact");
                ok += 1;
            }
        }
    }
    assert_eq!(ok + busy, FLOOD);
    assert!(busy > 0, "a 4-deep queue under a {FLOOD}-request flood must shed");
    let stats = server.stats();
    assert_eq!(stats.shed, busy as u64);
    assert_eq!(stats.admitted, 1 + ok as u64);
}

#[test]
fn shutdown_drains_queued_requests_with_busy() {
    let engine = build_engine(10_000, 1024);
    // A huge batching tick parks the dispatcher lingering for company, so
    // everything the client pipelines is still queued when shutdown lands —
    // the drain must answer all of it with BUSY, then hang up.
    let cfg = ServerConfig {
        queue_depth: 64,
        batch_max: 1000,
        batch_tick: Duration::from_secs(30),
        ..ServerConfig::from_engine(engine.config())
    };
    let mut server = Server::start(Arc::clone(&engine), cfg).unwrap();
    let addr = server.local_addr();

    let client = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        assert_eq!(c.ping().unwrap(), Reply::Ok(Vec::new()), "inline verbs bypass the queue");
        for i in 0..13 {
            c.send(&format!("#q{i} QUERY readings sensor=1")).unwrap();
        }
        let mut replies = Vec::new();
        while let Ok(reply) = c.recv_reply() {
            replies.push(reply);
        }
        replies // the Err terminates the loop: connection closed by the drain
    });

    thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let replies = client.join().unwrap();
    assert_eq!(replies.len(), 13, "every queued request must be answered before the hangup");
    let mut tags: Vec<String> = Vec::new();
    for (tag, reply) in replies {
        assert_eq!(reply, Reply::Busy, "queued requests are shed at drain");
        tags.push(tag.expect("tag echoed"));
    }
    tags.sort();
    let mut expect: Vec<String> = (0..13).map(|i| format!("q{i}")).collect();
    expect.sort();
    assert_eq!(tags, expect);
    // Idempotent, and the engine daemon slot is already stopped.
    server.shutdown();
}

/// Hostile and broken input must never kill a reader thread: malformed
/// requests get `ERR`, an oversized line gets an untagged `ERR` with the
/// connection (and every other client) intact, and mid-line EOF is a clean
/// teardown. See `lint_policy.toml` `[server_panics]` — the analyzer bans
/// unwrap/expect/panic/indexing on these paths, and this test drives the
/// inputs those panics would have hit.
#[test]
fn hostile_input_gets_err_replies_never_a_dead_server() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let engine = build_engine(10_000, 1024);
    let cfg = ServerConfig { max_line_bytes: 4096, ..ServerConfig::from_engine(engine.config()) };
    let server = Server::start(Arc::clone(&engine), cfg).unwrap();
    let addr = server.local_addr();
    let oracle_count =
        engine.count("readings", &[("sensor", ValueRange::equals(Value::U16(1)))]).unwrap();

    // A well-behaved bystander, checked again after every abuse below.
    let mut bystander = Client::connect(addr).unwrap();
    bystander.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut check_bystander = |when: &str| {
        let reply = bystander.count("readings", &["sensor=1"]).unwrap();
        assert_eq!(reply.count(), Some(oracle_count), "bystander broken {when}");
    };
    check_bystander("before any abuse");

    // Malformed requests: every one gets a one-line ERR on the same
    // connection, which then keeps working.
    let mut abuser = Client::connect(addr).unwrap();
    abuser.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for bad in [
        "FLY readings",
        "QUERY",
        "COUNT readings sensor",
        "COUNT readings =3",
        "COUNT readings sensor=",
        "COUNT readings sensor=1..",
        "TABLES extra",
        "#tagged-bad STATS a b",
    ] {
        match abuser.roundtrip(bad).unwrap() {
            Reply::Err(_) => {}
            other => panic!("{bad:?} must be answered ERR, got {other:?}"),
        }
    }
    assert_eq!(abuser.count("readings", &["sensor=1"]).unwrap().count(), Some(oracle_count));
    check_bystander("after malformed requests");

    // An oversized line (past max_line_bytes) is discarded as it streams
    // in and answered with an untagged ERR; the same connection then
    // serves a normal request.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut huge = String::from("#big QUERY readings ");
    while huge.len() <= 5000 {
        huge.push_str("sensor=1 ");
    }
    huge.push('\n');
    raw.write_all(huge.as_bytes()).unwrap();
    let mut lines = BufReader::new(raw.try_clone().unwrap());
    let mut reply = String::new();
    lines.read_line(&mut reply).unwrap();
    assert!(
        reply.starts_with("ERR") && reply.contains("4096"),
        "oversized line must get an untagged ERR naming the cap, got {reply:?}"
    );
    raw.write_all(b"#ok COUNT readings sensor=1\n").unwrap();
    reply.clear();
    lines.read_line(&mut reply).unwrap();
    assert_eq!(
        reply.trim(),
        format!("#ok OK {oracle_count}"),
        "the connection must survive its own oversized line"
    );
    check_bystander("after the oversized line");

    // Invalid UTF-8 on the wire: ERR, connection still alive.
    raw.write_all(b"#u8 COUNT readings sensor=\xff\xfe\n").unwrap();
    reply.clear();
    lines.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR"), "non-UTF-8 line must get ERR, got {reply:?}");
    raw.write_all(b"PING\n").unwrap();
    reply.clear();
    lines.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim(), "OK");
    check_bystander("after invalid UTF-8");

    // Mid-line EOF: a partial request with no newline, then hangup. The
    // reader must tear down cleanly — no reply, no panic, and the server
    // keeps serving everyone else.
    let mut torn = TcpStream::connect(addr).unwrap();
    torn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    torn.write_all(b"#torn COUNT readings sens").unwrap();
    torn.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    torn.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "a torn request must not be answered, got {rest:?}");
    check_bystander("after a mid-line EOF");
}

/// The multi-predicate wire forms — IN-lists (`col=5,7,9`) and `OR`
/// groups — must answer byte-identically to the engine's set-based entry
/// points, and their malformed variants must get `ERR` while a bystander
/// connection keeps working.
#[test]
fn multi_predicate_wire_forms_match_oracle() {
    let engine = build_engine(40_000, 1024);
    let server =
        Server::start(Arc::clone(&engine), ServerConfig::from_engine(engine.config())).unwrap();
    let addr = server.local_addr();
    let table = engine.table("readings").unwrap();

    let mut bystander = Client::connect(addr).unwrap();
    bystander.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let oracle_count =
        engine.count("readings", &[("sensor", ValueRange::equals(Value::U16(1)))]).unwrap();
    let mut check_bystander = |when: &str| {
        let reply = bystander.count("readings", &["sensor=1"]).unwrap();
        assert_eq!(reply.count(), Some(oracle_count), "bystander broken {when}");
    };
    check_bystander("before the multi-predicate traffic");

    let mut client = Client::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

    // IN-list alone, byte-checked against the set-based oracle.
    let in_list = ValueSet::points([Value::U16(1), Value::U16(4), Value::U16(9)]);
    let ids = table.query_sets(&[("sensor", in_list.clone())]).unwrap();
    client.send("#in QUERY readings sensor=1,4,9").unwrap();
    assert_eq!(client.recv().unwrap(), fmt_ok_ids(Some("in"), ids.as_slice()));

    // IN-list conjoined with a range predicate.
    let ids = table
        .query_sets(&[
            ("sensor", in_list.clone()),
            ("value", ValueSet::range(ValueRange::at_most(Value::I64(5000)))),
        ])
        .unwrap();
    client.send("#inand QUERY readings sensor=1,4,9 value<=5000").unwrap();
    assert_eq!(client.recv().unwrap(), fmt_ok_ids(Some("inand"), ids.as_slice()));

    // OR group: the union of its arms, for QUERY and COUNT alike.
    let or_preds = [
        ("sensor", ValueSet::range(ValueRange::equals(Value::U16(2)))),
        ("value", ValueSet::range(ValueRange::at_least(Value::I64(9000)))),
    ];
    let ids = table.query_any(&or_preds).unwrap();
    client.send("#or QUERY readings OR sensor=2 value>=9000").unwrap();
    assert_eq!(client.recv().unwrap(), fmt_ok_ids(Some("or"), ids.as_slice()));
    let n = table.count_any(&or_preds).unwrap();
    client.send("#orc COUNT readings or sensor=2 value>=9000").unwrap();
    assert_eq!(client.recv().unwrap(), fmt_ok_count(Some("orc"), n));
    check_bystander("after the well-formed multi-predicate requests");

    // Malformed IN-list / OR syntax: a tagged ERR each, connection and
    // bystander intact.
    for bad in [
        "QUERY readings sensor=1..3,9", // range inside an IN-list
        "QUERY readings sensor=5,,9",   // empty list item
        "QUERY readings sensor=5,",     // trailing comma
        "QUERY readings OR",            // empty OR group
        "COUNT readings or",            // ditto, case-insensitive
    ] {
        match client.roundtrip(bad).unwrap() {
            Reply::Err(_) => {}
            other => panic!("{bad:?} must be answered ERR, got {other:?}"),
        }
        check_bystander("after a malformed multi-predicate request");
    }
    // An IN-list item that fails schema typing errs at dispatch, after
    // admission — still a tagged ERR, still a live connection.
    match client.roundtrip("QUERY readings sensor=1,66000").unwrap() {
        Reply::Err(msg) => assert!(msg.contains("66000"), "typing error names the value: {msg}"),
        other => panic!("out-of-range IN-list item must ERR, got {other:?}"),
    }
    assert_eq!(client.count("readings", &["sensor=1"]).unwrap().count(), Some(oracle_count));
    check_bystander("after the mistyped IN-list item");
}

#[test]
fn drop_table_keeps_pinned_batches_valid() {
    let engine = build_engine(60_000, 1024);
    let table = engine.table("readings").unwrap();
    let queries = vec![
        BatchQuery::ids(vec![("sensor".to_string(), ValueRange::equals(Value::U16(3)))]),
        BatchQuery::count(vec![("value".to_string(), ValueRange::at_most(Value::I64(500)))]),
    ];
    let expected: Vec<BatchAnswer> = table
        .query_batch(&queries, Some(engine.pool()))
        .into_iter()
        .map(|r| r.unwrap().0)
        .collect();

    let dropped = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let table = Arc::clone(&table);
            let engine = Arc::clone(&engine);
            let queries = queries.clone();
            let expected = expected.clone();
            let dropped = Arc::clone(&dropped);
            thread::spawn(move || {
                let mut after_drop = 0u32;
                while after_drop < 20 {
                    let got: Vec<BatchAnswer> = table
                        .query_batch(&queries, Some(engine.pool()))
                        .into_iter()
                        .map(|r| r.unwrap().0)
                        .collect();
                    assert_eq!(got, expected, "a held Arc<Table> must answer identically");
                    if dropped.load(Ordering::SeqCst) {
                        after_drop += 1;
                    }
                }
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(20));
    assert!(engine.catalog().drop_table("readings"), "table was registered");
    dropped.store(true, Ordering::SeqCst);
    assert!(engine.table("readings").is_err(), "catalog lookup fails after the drop");
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn drop_table_race_over_the_wire_answers_everything() {
    const REQUESTS: usize = 200;
    let engine = build_engine(30_000, 1024);
    let server =
        Server::start(Arc::clone(&engine), ServerConfig::from_engine(engine.config())).unwrap();
    let oracle_count =
        engine.count("readings", &[("sensor", ValueRange::equals(Value::U16(2)))]).unwrap();
    // The exact catalog error the server forwards once the table is gone,
    // probed through an unregistered name.
    let not_found = engine
        .table("probe")
        .err()
        .expect("lookup fails")
        .to_string()
        .replace("\"probe\"", "\"readings\"");

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    for i in 0..REQUESTS {
        client.send(&format!("#c{i} COUNT readings sensor=2")).unwrap();
    }
    thread::sleep(Duration::from_millis(2));
    engine.catalog().drop_table("readings");
    for _ in 0..REQUESTS {
        let (tag, reply) = client.recv_reply().unwrap();
        assert!(tag.is_some());
        match reply {
            Reply::Busy => panic!("default queue depth must not shed {REQUESTS} requests"),
            Reply::Err(msg) => assert_eq!(msg, not_found, "only the not-found error is allowed"),
            ok => assert_eq!(ok.count(), Some(oracle_count), "pinned batches answer exactly"),
        }
    }
}
