//! End-to-end update workflows (§4): randomized delta operations checked
//! against a straightforward logical-table oracle, plus the saturation /
//! rebuild lifecycle.

use colstore::{Column, DeltaStore, RangeIndex, RangePredicate};
use datagen::distributions;
use imprints::{update, ColumnImprints};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A logical-table oracle mirroring base + delta.
fn oracle_ids(base: &Column<i64>, delta: &DeltaStore<i64>, pred: &RangePredicate<i64>) -> Vec<u64> {
    (0..delta.logical_len())
        .filter(|&id| delta.effective_value(id, base.values()).is_some_and(|v| pred.matches(&v)))
        .collect()
}

#[test]
fn randomized_delta_workloads_match_oracle() {
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..20 {
        let n = rng.gen_range(100..5000);
        let base: Column<i64> = Column::from(distributions::uniform_ints(n, 0, 500, round));
        let idx = ColumnImprints::build(&base);
        let mut delta = DeltaStore::new(base.len());
        // Random mix of operations.
        for _ in 0..rng.gen_range(0..200) {
            match rng.gen_range(0..3) {
                0 => {
                    delta.append(rng.gen_range(0..500));
                }
                1 => {
                    delta.delete(rng.gen_range(0..n as u64));
                }
                _ => {
                    delta.update(rng.gen_range(0..n as u64), rng.gen_range(0..500));
                }
            }
        }
        for _ in 0..5 {
            let a = rng.gen_range(0..500);
            let b = rng.gen_range(0..500);
            let pred = RangePredicate::between(a.min(b), a.max(b));
            let got = update::evaluate_with_delta(&idx, &base, &delta, &pred);
            assert_eq!(
                got.as_slice(),
                oracle_ids(&base, &delta, &pred).as_slice(),
                "round {round}, pred {pred}"
            );
        }
    }
}

#[test]
fn consolidation_resets_the_world() {
    let base: Column<i64> = Column::from(distributions::uniform_ints(10_000, 0, 100, 5));
    let mut delta = DeltaStore::new(base.len());
    for i in 0..1000u64 {
        match i % 3 {
            0 => {
                delta.delete(i * 7 % 10_000);
            }
            1 => {
                delta.update(i * 13 % 10_000, (i % 100) as i64);
            }
            _ => {
                delta.append((i % 100) as i64);
            }
        }
    }
    // Consolidate and rebuild: the fresh index over the merged column must
    // answer exactly what the delta-merged path answered (modulo the id
    // renumbering deletions cause — compare multisets of values).
    let merged: Column<i64> = Column::from(delta.consolidate(base.values()));
    let fresh = ColumnImprints::build(&merged);
    fresh.verify(&merged).unwrap();

    let old_idx = ColumnImprints::build(&base);
    for (lo, hi) in [(0, 10), (50, 99), (0, 99)] {
        let pred = RangePredicate::between(lo, hi);
        let via_delta = update::evaluate_with_delta(&old_idx, &base, &delta, &pred);
        let via_fresh = fresh.evaluate(&merged, &pred);
        assert_eq!(via_delta.len(), via_fresh.len(), "cardinalities must survive consolidation");
    }
}

#[test]
fn saturation_lifecycle() {
    // Start clustered (low saturation), then append scattershot data into
    // the same lines until the index degrades and rebuild pays off.
    let base: Column<i64> = (0..64_000).map(|i| i / 640).collect();
    let mut idx = ColumnImprints::build(&base);
    let initial_saturation = idx.saturation();
    assert!(initial_saturation < 0.4);

    // Appends drawn uniformly from far outside the sampled domain.
    let noisy = distributions::uniform_ints(64_000, -1_000_000, 1_000_000, 9);
    idx.append(&noisy);
    assert!(idx.append_drift() > 0.5, "out-of-domain appends must register as drift");
    assert!(idx.needs_rebuild());

    let mut col = base.clone();
    col.extend_from_slice(&noisy);
    let rebuilt = idx.rebuild(&col);
    rebuilt.verify(&col).unwrap();
    assert!(!rebuilt.needs_rebuild());
    // The rebuilt binning discriminates the new domain again.
    let pred = RangePredicate::between(-900_000, -800_000);
    let (_, stats) = imprints::query::evaluate(&rebuilt, &col, &pred);
    assert!(stats.access.lines_skipped > 0);
}

#[test]
fn interleaved_appends_and_queries() {
    let mut col: Column<i64> = Column::from(distributions::uniform_ints(1000, 0, 1000, 3));
    let mut idx = ColumnImprints::build(&col);
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..50 {
        let batch: Vec<i64> = (0..rng.gen_range(1..300)).map(|_| rng.gen_range(0..1000)).collect();
        idx.append(&batch);
        col.extend_from_slice(&batch);
        let a = rng.gen_range(0..1000);
        let b = rng.gen_range(0..1000);
        let pred = RangePredicate::between(a.min(b), a.max(b));
        let expect: Vec<u64> = col
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(idx.evaluate(&col, &pred).as_slice(), expect.as_slice());
    }
    idx.verify(&col).unwrap();
}

#[test]
fn stale_imprints_only_widen_results_never_narrow() {
    // In-place updates make imprints stale; §4.2 argues stale bits are safe
    // because they only cause false positives. Verify: after updating the
    // column in place, the *candidate* set still covers all fresh matches
    // whose bins were already set. (Full correctness requires rebuild; the
    // delta path is the supported route.)
    let mut col: Column<i64> = (0..32_000).map(|i| i % 100).collect();
    let idx = ColumnImprints::build(&col);
    // Overwrite some values with other in-domain values.
    for i in (0..32_000).step_by(97) {
        let v = col.values()[i];
        col.values_mut()[i] = (v + 50) % 100;
    }
    let stale = update::stale_line_count(&idx, &col);
    assert!(stale > 0, "updates must show up as stale lines");
}
