//! Property tests for multi-predicate planning: conjunctions, OR groups
//! and IN-lists must be indistinguishable from the brute-force row oracle
//! for any data, any segmentation, any access-path mix (imprint, zonemap,
//! scan, WAH), any head geometry (tail-indexed or scalar-scanned, partial
//! or just-sealed) and either refinement kernel (the CI matrix forces the
//! scalar kernel through this suite via `IMPRINTS_REFINE_KERNEL`).

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::{ColumnType, Value};
use column_imprints::engine::{EngineConfig, Table, ValueRange, ValueSet};
use proptest::prelude::*;

/// Row shape shared by every generator: three i64 columns with different
/// domains so per-column selectivities (and therefore the plans the
/// chooser picks) diverge.
type Row = (i64, i64, i64);

fn three_col_table(rows: &[Row], chunks: usize, cfg: EngineConfig) -> Table {
    let t = Table::new(
        "t",
        &[("a", ColumnType::I64), ("b", ColumnType::I64), ("c", ColumnType::I64)],
        cfg,
    )
    .unwrap();
    // Append in several chunks so the open head is left partially filled
    // (or exactly sealed) depending on how the generated row count lands
    // relative to `segment_rows`.
    let per = rows.len().div_ceil(chunks).max(1);
    for chunk in rows.chunks(per) {
        t.append_batch(vec![
            AnyColumn::I64(chunk.iter().map(|r| r.0).collect()),
            AnyColumn::I64(chunk.iter().map(|r| r.1).collect()),
            AnyColumn::I64(chunk.iter().map(|r| r.2).collect()),
        ])
        .unwrap();
    }
    t
}

fn set_range(lo: i64, width: i64) -> ValueSet {
    ValueSet::range(ValueRange::between(Value::I64(lo), Value::I64(lo + width)))
}

fn in_set(s: &ValueSet, v: i64) -> bool {
    s.terms.iter().any(|t| {
        let lo = match &t.low {
            Some(Value::I64(x)) => *x,
            None => i64::MIN,
            _ => unreachable!("i64 columns only"),
        };
        let hi = match &t.high {
            Some(Value::I64(x)) => *x,
            None => i64::MAX,
            _ => unreachable!("i64 columns only"),
        };
        (lo..=hi).contains(&v)
    })
}

/// Brute-force oracle over the raw rows, conjunction or disjunction.
fn oracle(rows: &[Row], preds: &[(&str, ValueSet)], any: bool) -> Vec<u64> {
    (0..rows.len() as u64)
        .filter(|&i| {
            let (a, b, c) = rows[i as usize];
            let hit = |(name, set): &(&str, ValueSet)| {
                let v = match *name {
                    "a" => a,
                    "b" => b,
                    _ => c,
                };
                in_set(set, v)
            };
            if any {
                preds.iter().any(hit)
            } else {
                preds.iter().all(hit)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Three-predicate conjunctions: the fused mask-intersection plan, the
    /// pinned per-predicate plan and the brute-force oracle agree for any
    /// data, any segment size, tail-indexed or scanned heads, with or
    /// without a WAH budget — and keep agreeing across repeated runs while
    /// the `PlanChooser` bootstraps and explores.
    #[test]
    fn conjunction_equals_oracle_across_plans_and_paths(
        rows in prop::collection::vec((0i64..1000, 0i64..100, 0i64..50), 0..3000),
        chunks in 1usize..5,
        seg_exp in 1usize..5,
        tail_indexed in any::<bool>(),
        wah in any::<bool>(),
        a_lo in 0i64..1100, a_width in 0i64..400,
        b_lo in 0i64..110, b_width in 0i64..40,
        c_lo in 0i64..55, c_width in 0i64..20,
    ) {
        let cfg = EngineConfig {
            segment_rows: 64usize << seg_exp, // 128..=1024
            workers: 2,
            tail_index_min_rows: if tail_indexed { 64 } else { usize::MAX },
            wah_budget_bytes: if wah { 1 << 20 } else { 0 },
            ..Default::default()
        };
        let pinned_cfg = EngineConfig { conjunction_planning: false, ..cfg.clone() };
        let planned = three_col_table(&rows, chunks, cfg);
        let pinned = three_col_table(&rows, chunks, pinned_cfg);
        let preds = [
            ("a", set_range(a_lo, a_width)),
            ("b", set_range(b_lo, b_width)),
            ("c", set_range(c_lo, c_width)),
        ];
        let expect = oracle(&rows, &preds, false);
        // Repeats walk the chooser through bootstrap (both plans) and into
        // steady state; every round must stay byte-identical.
        for round in 0..4 {
            let got = planned.query_sets(&preds).unwrap();
            prop_assert_eq!(got.as_slice(), expect.as_slice(), "planned, round {}", round);
            let got = pinned.query_sets(&preds).unwrap();
            prop_assert_eq!(got.as_slice(), expect.as_slice(), "pinned, round {}", round);
            let (n, _) = planned.count_sets_with_stats(&preds, false, None).unwrap();
            prop_assert_eq!(n as usize, expect.len());
        }
    }

    /// IN-lists, alone and mixed with ranges: lowering an `IN` to a union
    /// of point intervals (and unioning the per-term candidate masks) is
    /// unobservable next to the row-at-a-time oracle.
    #[test]
    fn in_lists_equal_oracle(
        rows in prop::collection::vec((0i64..1000, 0i64..100, 0i64..50), 0..2500),
        points in prop::collection::vec(0i64..1000, 1..8),
        b_lo in 0i64..110, b_width in 0i64..50,
        seg_exp in 1usize..4,
    ) {
        let cfg = EngineConfig {
            segment_rows: 64usize << seg_exp,
            workers: 2,
            tail_index_min_rows: 64,
            ..Default::default()
        };
        let t = three_col_table(&rows, 2, cfg);
        let in_list = ValueSet::points(points.iter().map(|&p| Value::I64(p)));
        // IN alone.
        let alone = [("a", in_list.clone())];
        prop_assert_eq!(
            t.query_sets(&alone).unwrap().as_slice(),
            oracle(&rows, &alone, false).as_slice()
        );
        // IN ∧ range (mixed set shapes in one conjunction).
        let mixed = [("a", in_list), ("b", set_range(b_lo, b_width))];
        let expect = oracle(&rows, &mixed, false);
        prop_assert_eq!(t.query_sets(&mixed).unwrap().as_slice(), expect.as_slice());
        let (n, _) = t.count_sets_with_stats(&mixed, false, None).unwrap();
        prop_assert_eq!(n as usize, expect.len());
    }

    /// OR groups: the union evaluation (`query_any`/`count_any`) equals
    /// the oracle's any-of-predicates filter; the empty group matches
    /// nothing while the empty conjunction matches everything.
    #[test]
    fn disjunction_equals_oracle(
        rows in prop::collection::vec((0i64..1000, 0i64..100, 0i64..50), 0..2500),
        chunks in 1usize..4,
        a_lo in 0i64..1100, a_width in 0i64..200,
        c_points in prop::collection::vec(0i64..50, 1..5),
        seg_exp in 1usize..4,
        tail_indexed in any::<bool>(),
    ) {
        let cfg = EngineConfig {
            segment_rows: 64usize << seg_exp,
            workers: 2,
            tail_index_min_rows: if tail_indexed { 64 } else { usize::MAX },
            ..Default::default()
        };
        let t = three_col_table(&rows, chunks, cfg);
        let preds = [
            ("a", set_range(a_lo, a_width)),
            ("c", ValueSet::points(c_points.iter().map(|&p| Value::I64(p)))),
        ];
        let expect = oracle(&rows, &preds, true);
        prop_assert_eq!(t.query_any(&preds).unwrap().as_slice(), expect.as_slice());
        prop_assert_eq!(t.count_any(&preds).unwrap() as usize, expect.len());
        // Identity elements: OR of nothing is nothing, AND of nothing is
        // every row.
        prop_assert_eq!(t.query_any(&[]).unwrap().as_slice(), &[] as &[u64]);
        prop_assert_eq!(t.query_sets(&[]).unwrap().len(), rows.len());
    }

    /// Interleaved appends: after every chunk — whatever mix of sealed
    /// segments and partial head exists at that instant — conjunctions and
    /// disjunctions over the table equal the oracle over the rows appended
    /// so far.
    #[test]
    fn multi_predicate_answers_track_interleaved_appends(
        chunks in prop::collection::vec(
            prop::collection::vec((0i64..1000, 0i64..100, 0i64..50), 1..700),
            1..6,
        ),
        a_lo in 0i64..1100, a_width in 0i64..300,
        b_lo in 0i64..110, b_width in 0i64..40,
    ) {
        let cfg = EngineConfig {
            segment_rows: 256,
            workers: 2,
            tail_index_min_rows: 64,
            ..Default::default()
        };
        let t = Table::new(
            "t",
            &[("a", ColumnType::I64), ("b", ColumnType::I64), ("c", ColumnType::I64)],
            cfg,
        )
        .unwrap();
        let preds = [("a", set_range(a_lo, a_width)), ("b", set_range(b_lo, b_width))];
        let mut all: Vec<Row> = Vec::new();
        for chunk in &chunks {
            t.append_batch(vec![
                AnyColumn::I64(chunk.iter().map(|r| r.0).collect()),
                AnyColumn::I64(chunk.iter().map(|r| r.1).collect()),
                AnyColumn::I64(chunk.iter().map(|r| r.2).collect()),
            ])
            .unwrap();
            all.extend_from_slice(chunk);
            prop_assert_eq!(
                t.query_sets(&preds).unwrap().as_slice(),
                oracle(&all, &preds, false).as_slice()
            );
            prop_assert_eq!(
                t.query_any(&preds).unwrap().as_slice(),
                oracle(&all, &preds, true).as_slice()
            );
        }
    }
}
