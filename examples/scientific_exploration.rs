//! Scientific data exploration: the SkyServer/SDSS scenario of the paper's
//! introduction — wide tables of double-precision measurements, scanned
//! interactively with ad-hoc range predicates.
//!
//! Uniform high-cardinality doubles are the worst case for bitmap
//! compression (WAH blows past the column size, §6.2) while imprints stay
//! ≤ ~12% and keep filtering. This example measures both.
//!
//! ```text
//! cargo run --release --example scientific_exploration
//! ```

use column_imprints::baselines::{SeqScan, WahBitmap, ZoneMap};
use column_imprints::colstore::{Column, RangeIndex, RangePredicate};
use column_imprints::datagen::distributions;
use column_imprints::imprints::{column_entropy, ColumnImprints};

fn main() {
    // photoprofile.profmean-like: uniform doubles, ~every value distinct.
    let n = 2_000_000;
    let col: Column<f64> = Column::from(distributions::uniform_doubles(n, 0.0, 30.0, 2013));

    let imprints = ColumnImprints::build(&col);
    let zonemap = ZoneMap::build(&col);
    let wah = WahBitmap::build_with_binning(&col, imprints.binning().clone());
    let scan = SeqScan::new(&col);

    println!("SDSS-like column: {n} uniform doubles, entropy E = {:.3}", column_entropy(&imprints));
    println!("column data: {} bytes", col.data_bytes());
    let pct = |b: usize| 100.0 * b as f64 / col.data_bytes() as f64;
    println!(
        "index sizes: imprints {} ({:.2}%), zonemap {} ({:.2}%), wah {} ({:.2}%)",
        RangeIndex::<f64>::size_bytes(&imprints),
        pct(RangeIndex::<f64>::size_bytes(&imprints)),
        zonemap.size_bytes(),
        pct(zonemap.size_bytes()),
        wah.size_bytes(),
        pct(wah.size_bytes()),
    );
    assert!(
        RangeIndex::<f64>::size_bytes(&imprints) < wah.size_bytes() / 4,
        "imprints must stay far below WAH on uniform data"
    );

    // Interactive exploration: progressively zooming into a measurement
    // band, as an astronomer would.
    for (lo, hi) in [(14.0, 16.0), (14.9, 15.1), (14.99, 15.01)] {
        let pred = RangePredicate::between(lo, hi);
        let mut line = format!("profmean in [{lo}, {hi}]:");
        for (name, result) in [
            ("scan", timed(|| scan.evaluate(&col, &pred))),
            ("imprints", timed(|| imprints.evaluate(&col, &pred))),
            ("zonemap", timed(|| zonemap.evaluate(&col, &pred))),
            ("wah", timed(|| wah.evaluate(&col, &pred))),
        ] {
            let (ids, dt) = result;
            line.push_str(&format!("  {name} {:>8.1}µs ({} rows)", dt * 1e6, ids.len()));
        }
        println!("{line}");
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}
