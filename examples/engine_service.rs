//! A miniature query-serving service on the imprints engine.
//!
//! Simulates a sensor-ingestion workload: one appender streams readings
//! into a three-column relation (with the value distribution drifting over
//! time), several clients issue conjunctive range queries concurrently,
//! and the maintenance daemon re-bins drifted segment indexes in the
//! background. Prints a live summary at the end.
//!
//! ```text
//! cargo run --release --example engine_service
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::{ColumnType, Value};
use column_imprints::engine::{Engine, EngineConfig, ValueRange};

const CLIENTS: usize = 4;
const TOTAL_ROWS: usize = 2_000_000;
const BATCH: usize = 20_000;

fn main() {
    let engine =
        Arc::new(Engine::new(EngineConfig { segment_rows: 1 << 15, ..Default::default() }));
    let table = engine
        .create_table(
            "readings",
            &[("ts", ColumnType::I64), ("sensor", ColumnType::U16), ("value", ColumnType::F64)],
        )
        .unwrap();
    engine.start_maintenance(Duration::from_millis(20));

    let done = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    std::thread::scope(|s| {
        // Ingest: time-ordered readings whose value domain drifts upward —
        // exactly the append pattern that degrades inherited binnings.
        {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut ts = 0i64;
                while (ts as usize) < TOTAL_ROWS {
                    let drift = (ts / 500_000) as f64 * 1000.0;
                    let tss: Vec<i64> = (ts..ts + BATCH as i64).collect();
                    let sensors: Vec<u16> = (0..BATCH).map(|i| (i % 64) as u16).collect();
                    let values: Vec<f64> =
                        (0..BATCH).map(|i| drift + ((i * 37) % 997) as f64 / 10.0).collect();
                    table
                        .append_batch(vec![
                            AnyColumn::I64(tss.into_iter().collect()),
                            AnyColumn::U16(sensors.into_iter().collect()),
                            AnyColumn::F64(values.into_iter().collect()),
                        ])
                        .unwrap();
                    ts += BATCH as i64;
                }
                done.store(true, Ordering::Release);
            });
        }

        // Query clients: recent-window conjunctions, served while ingest
        // and maintenance run.
        for c in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            let served = Arc::clone(&served);
            let hits = Arc::clone(&hits);
            s.spawn(move || {
                let mut q = 0u64;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let now = table.row_count() as i64;
                    let lo = (now - 300_000).max(0) + (q as i64 * 131) % 100_000;
                    let sensor = ((q as usize * 13 + c) % 64) as u16;
                    let ids = engine
                        .query(
                            "readings",
                            &[
                                (
                                    "ts",
                                    ValueRange::between(Value::I64(lo), Value::I64(lo + 200_000)),
                                ),
                                ("sensor", ValueRange::equals(Value::U16(sensor))),
                            ],
                        )
                        .unwrap();
                    served.fetch_add(1, Ordering::Relaxed);
                    hits.fetch_add(ids.len() as u64, Ordering::Relaxed);
                    q += 1;
                    if finished && q >= 50 {
                        break;
                    }
                }
            });
        }
    });

    let secs = t0.elapsed().as_secs_f64();
    engine.stop_maintenance();
    let report = engine.maintenance_tick();
    let stats = table.stats();
    println!("── engine_service summary ──────────────────────────────");
    println!("rows ingested      : {}", table.row_count());
    println!("sealed segments    : {}", table.sealed_segment_count());
    println!("index overhead     : {} KiB", table.index_bytes() / 1024);
    println!(
        "queries served     : {} ({:.0}/s across {CLIENTS} clients)",
        served.load(Ordering::Relaxed),
        served.load(Ordering::Relaxed) as f64 / secs
    );
    println!("rows matched       : {}", hits.load(Ordering::Relaxed));
    println!(
        "background rebuilds: {} (final sweep examined {} segment-columns)",
        stats.rebuilds.load(Ordering::Relaxed),
        report.examined
    );
    // Late materialization: reconstruct a couple of matching tuples.
    if let Some(t) = table.tuple(0) {
        println!("tuple(0)           : {t:?}");
    }
    println!("wall time          : {secs:.2}s");
}
