//! A miniature query-serving service on the imprints engine — now over
//! the wire.
//!
//! Boots the real TCP front-end (`imprints-server`) on a loopback port,
//! streams sensor readings into a three-column relation (with the value
//! distribution drifting over time, and the maintenance daemon re-binning
//! drifted segment indexes in the background), and drives it with several
//! *network* clients speaking the line protocol — tagged pipelined
//! QUERY/COUNT requests, admission control and batched shared-morsel
//! dispatch included. Prints a live summary at the end, sourced from the
//! server's own `STATS` verb, then drains the server gracefully.
//!
//! ```text
//! cargo run --release --example engine_service
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use column_imprints::colstore::relation::AnyColumn;
use column_imprints::colstore::ColumnType;
use column_imprints::engine::{Engine, EngineConfig};
use column_imprints::server::{request_line, Client, Reply, Server, ServerConfig};

const CLIENTS: usize = 4;
const TOTAL_ROWS: usize = 2_000_000;
const BATCH: usize = 20_000;
/// Tagged requests each client keeps in flight on its pipeline.
const WINDOW: usize = 8;

fn main() {
    let engine =
        Arc::new(Engine::new(EngineConfig { segment_rows: 1 << 15, ..Default::default() }));
    let table = engine
        .create_table(
            "readings",
            &[("ts", ColumnType::I64), ("sensor", ColumnType::U16), ("value", ColumnType::F64)],
        )
        .unwrap();
    engine.start_maintenance(Duration::from_millis(20));

    let mut server = Server::start(Arc::clone(&engine), ServerConfig::from_engine(engine.config()))
        .expect("bind loopback server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let done = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    std::thread::scope(|s| {
        // Ingest: time-ordered readings whose value domain drifts upward —
        // exactly the append pattern that degrades inherited binnings.
        {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut ts = 0i64;
                while (ts as usize) < TOTAL_ROWS {
                    let drift = (ts / 500_000) as f64 * 1000.0;
                    let tss: Vec<i64> = (ts..ts + BATCH as i64).collect();
                    let sensors: Vec<u16> = (0..BATCH).map(|i| (i % 64) as u16).collect();
                    let values: Vec<f64> =
                        (0..BATCH).map(|i| drift + ((i * 37) % 997) as f64 / 10.0).collect();
                    table
                        .append_batch(vec![
                            AnyColumn::I64(tss.into_iter().collect()),
                            AnyColumn::U16(sensors.into_iter().collect()),
                            AnyColumn::F64(values.into_iter().collect()),
                        ])
                        .unwrap();
                    ts += BATCH as i64;
                }
                done.store(true, Ordering::Release);
            });
        }

        // Query clients: thin network clients pipelining recent-window
        // conjunctions over loopback while ingest and maintenance run.
        // Same-tick requests from different clients share morsel passes in
        // the server's batching dispatcher.
        for c in 0..CLIENTS {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            let served = Arc::clone(&served);
            let hits = Arc::clone(&hits);
            let busy = Arc::clone(&busy);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut q = 0u64;
                let mut inflight = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    // Keep the pipeline full until the workload is done,
                    // then let it drain so every tag gets its reply.
                    while inflight < WINDOW && !(finished && q >= 50) {
                        let now = table.row_count() as i64;
                        let lo = (now - 300_000).max(0) + (q as i64 * 131) % 100_000;
                        let sensor = ((q * 13 + c as u64) % 64) as u16;
                        let line = request_line(
                            "QUERY",
                            "readings",
                            &[&format!("ts={lo}..{}", lo + 200_000), &format!("sensor={sensor}")],
                        );
                        client.send(&format!("#q{q} {line}")).expect("send");
                        inflight += 1;
                        q += 1;
                    }
                    let (_tag, reply) = client.recv_reply().expect("reply");
                    inflight -= 1;
                    match reply {
                        Reply::Busy => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Reply::Err(e) => panic!("server error: {e}"),
                        ok => {
                            let ids = ok.ids().expect("QUERY payload");
                            served.fetch_add(1, Ordering::Relaxed);
                            hits.fetch_add(ids.len() as u64, Ordering::Relaxed);
                        }
                    }
                    if finished && q >= 50 && inflight == 0 {
                        break;
                    }
                }
            });
        }
    });

    let secs = t0.elapsed().as_secs_f64();
    // One more client reads the summary off the wire before the drain.
    let mut admin = Client::connect(addr).expect("connect admin");
    let server_stats = match admin.roundtrip("STATS").expect("stats") {
        Reply::Ok(fields) => fields.join(" "),
        other => panic!("STATS failed: {other:?}"),
    };
    let tables = match admin.roundtrip("TABLES").expect("tables") {
        Reply::Ok(fields) => fields.join(", "),
        other => panic!("TABLES failed: {other:?}"),
    };
    server.shutdown();
    let report = engine.maintenance_tick();
    let stats = table.stats();
    println!("── engine_service summary ──────────────────────────────");
    println!("tables             : {tables}");
    println!("rows ingested      : {}", table.row_count());
    println!("sealed segments    : {}", table.sealed_segment_count());
    println!("index overhead     : {} KiB", table.index_bytes() / 1024);
    println!(
        "queries served     : {} ({:.0}/s across {CLIENTS} wire clients)",
        served.load(Ordering::Relaxed),
        served.load(Ordering::Relaxed) as f64 / secs
    );
    println!("rows matched       : {}", hits.load(Ordering::Relaxed));
    println!("shed (BUSY)        : {}", busy.load(Ordering::Relaxed));
    println!("server STATS       : {server_stats}");
    println!(
        "background rebuilds: {} (final sweep examined {} segment-columns)",
        stats.rebuilds.load(Ordering::Relaxed),
        report.examined
    );
    // Late materialization: reconstruct a matching tuple in-process.
    if let Some(t) = table.tuple(0) {
        println!("tuple(0)           : {t:?}");
    }
    println!("wall time          : {secs:.2}s");
}
