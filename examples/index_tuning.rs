//! Index tuning tour: the knobs beyond the paper's defaults — block
//! granularity, binning strategy, the two-level organization and the
//! multi-core build (§2.3 and §7) — measured side by side on one column.
//!
//! ```text
//! cargo run --release --example index_tuning
//! ```

use std::time::Instant;

use column_imprints::colstore::{Column, RangeIndex, RangePredicate};
use column_imprints::imprints::multilevel::MultiLevelImprints;
use column_imprints::imprints::{
    column_entropy, parallel, BinningStrategy, BuildOptions, ColumnImprints,
};

fn main() {
    // A mid-entropy column: slow drift + per-row noise (defeats the RLE,
    // the regime where the tuning knobs actually matter).
    let n: u64 = 4_000_000;
    let col: Column<i64> =
        (0..n).map(|i| ((i * 59_500 / n) + i.wrapping_mul(2_654_435_761) % 2_500) as i64).collect();
    let pred = RangePredicate::between(1_000, 4_000);
    let brute: usize = col.values().iter().filter(|v| pred.matches(v)).count();

    let baseline = ColumnImprints::build(&col);
    println!(
        "column: {} rows i64, E = {:.3}, query {pred} -> {brute} rows\n",
        n,
        column_entropy(&baseline)
    );

    // --- block granularity (§2.3) -------------------------------------
    println!("block granularity (values covered per imprint vector):");
    for block in [64usize, 128, 256, 512] {
        let idx = ColumnImprints::build_with(
            &col,
            BuildOptions { block_bytes: block, ..Default::default() },
        );
        let (ids, dt) = timed(|| idx.evaluate(&col, &pred));
        assert_eq!(ids.len(), brute);
        println!(
            "  {block:>3}B blocks: index {:>9} bytes ({:.2}%), query {:>9.1}µs",
            RangeIndex::<i64>::size_bytes(&idx),
            100.0 * RangeIndex::<i64>::size_bytes(&idx) as f64 / col.data_bytes() as f64,
            dt * 1e6,
        );
    }

    // --- binning strategy (§7) -----------------------------------------
    println!("\nbinning strategy:");
    for (name, strategy) in
        [("equi-height", BinningStrategy::EquiHeight), ("equi-width ", BinningStrategy::EquiWidth)]
    {
        let idx = ColumnImprints::build_with(&col, BuildOptions { strategy, ..Default::default() });
        let (ids, dt) = timed(|| idx.evaluate(&col, &pred));
        assert_eq!(ids.len(), brute);
        println!("  {name}: query {:>9.1}µs, saturation {:.3}", dt * 1e6, idx.saturation());
    }

    // --- two-level organization (§7) ------------------------------------
    println!("\ntwo-level imprints:");
    let (flat_ids, flat_dt) = timed(|| baseline.evaluate(&col, &pred));
    let ml = MultiLevelImprints::from_base(baseline.clone(), 64);
    let (ml_ids, ml_dt) = timed(|| ml.evaluate(&col, &pred));
    assert_eq!(flat_ids, ml_ids);
    let (_, flat_stats) = baseline.evaluate_with_stats(&col, &pred);
    let (_, ml_stats) = ml.evaluate_with_stats(&col, &pred);
    println!("  flat:      {:>9.1}µs, {} probes", flat_dt * 1e6, flat_stats.index_probes);
    println!(
        "  two-level: {:>9.1}µs, {} probes ({} blocks, +{} bytes)",
        ml_dt * 1e6,
        ml_stats.index_probes,
        ml.block_count(),
        ml.size_bytes() - RangeIndex::<i64>::size_bytes(&baseline),
    );

    // --- parallel construction (§7) --------------------------------------
    println!("\nparallel construction:");
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let idx = parallel::build_parallel(&col, BuildOptions::default(), threads);
        let dt = t0.elapsed();
        assert_eq!(idx.imprint_count(), baseline.imprint_count(), "must be bit-identical");
        println!("  {threads} thread(s): {:>8.1}ms", dt.as_secs_f64() * 1e3);
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}
