//! An ever-growing warehouse: the paper's Airtraffic scenario (§4) —
//! monthly batch appends, occasional corrections through a delta
//! structure, and index persistence across restarts.
//!
//! ```text
//! cargo run --release --example airtraffic_delays
//! ```

use column_imprints::colstore::{
    storage as colstorage, Column, DeltaStore, RangeIndex, RangePredicate,
};
use column_imprints::datagen::distributions;
use column_imprints::imprints::{storage as idxstorage, update, ColumnImprints};

fn main() {
    // Year one of departure delays: time-clustered minutes.
    let base: Vec<i64> = distributions::time_clustered(1_200_000, 12, 120, 0.02, 7);
    let mut col: Column<i64> = Column::from(base);
    let mut idx = ColumnImprints::build(&col);
    println!(
        "initial load: {} rows, imprint index {} bytes, saturation {:.2}",
        col.len(),
        RangeIndex::<i64>::size_bytes(&idx),
        idx.saturation()
    );

    // --- Monthly appends (§4.1): no existing imprint vector is touched. --
    for month in 0..3 {
        let batch: Vec<i64> = distributions::time_clustered(100_000, 1, 120, 0.02, 100 + month)
            .iter()
            .map(|v| v + 1440 + month as i64 * 120)
            .collect();
        let stats = idx.append(&batch);
        col.extend_from_slice(&batch);
        println!(
            "append month {month}: +{} rows, {} new lines, {} overflow values, drift {:.3}",
            stats.appended,
            stats.lines_finalized,
            stats.overflow_low + stats.overflow_high,
            idx.append_drift()
        );
    }
    idx.verify(&col).expect("index and column in sync after appends");

    // Appended months land in the top overflow bin (their delays exceed
    // the sampled domain), so the rebuild heuristic eventually fires.
    if idx.needs_rebuild() {
        println!("rebuild heuristic fired -> rebuilding with fresh binning");
        idx = idx.rebuild(&col);
    }

    // --- Point corrections through a delta structure (§4.2). -------------
    let mut delta = DeltaStore::new(col.len());
    delta.update(42, 999); // a corrected delay
    delta.delete(17); // a cancelled record
    delta.append(75); // one straggler row

    let pred = RangePredicate::between(60, 120);
    let merged = update::evaluate_with_delta(&idx, &col, &delta, &pred);
    println!(
        "\ndelayed 60-120 minutes: {} rows (delta-merged: {} pending changes)",
        merged.len(),
        delta.pending()
    );
    // Verify against first-principles evaluation over the logical table.
    let expected = (0..delta.logical_len())
        .filter(|&id| delta.effective_value(id, col.values()).is_some_and(|v| pred.matches(&v)))
        .count();
    assert_eq!(merged.len(), expected);

    // --- Persistence: column and index survive a restart. ----------------
    let dir = std::env::temp_dir().join("imprints_airtraffic_example");
    std::fs::create_dir_all(&dir).unwrap();
    let col_path = dir.join("delays.col");
    let idx_path = dir.join("delays.imprints");
    colstorage::write_column(&col, &mut std::fs::File::create(&col_path).unwrap()).unwrap();
    idxstorage::write_index(&idx, &mut std::fs::File::create(&idx_path).unwrap()).unwrap();

    let col2: Column<i64> =
        colstorage::read_column(&mut std::fs::File::open(&col_path).unwrap()).unwrap();
    let idx2: ColumnImprints<i64> =
        idxstorage::read_index(&mut std::fs::File::open(&idx_path).unwrap()).unwrap();
    idx2.verify(&col2).expect("reloaded index matches reloaded column");
    assert_eq!(idx2.evaluate(&col2, &pred), idx.evaluate(&col, &pred));
    println!(
        "\npersisted and reloaded: {} + {} bytes on disk, answers identical",
        std::fs::metadata(&col_path).unwrap().len(),
        std::fs::metadata(&idx_path).unwrap().len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
