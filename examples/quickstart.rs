//! Quickstart: build a column imprints index and run range queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use column_imprints::colstore::{Column, RangeIndex, RangePredicate};
use column_imprints::imprints::{column_entropy, print, ColumnImprints};

fn main() {
    // An unsorted secondary attribute: 4M integers with mild local
    // clustering, the kind of column a data warehouse scans repeatedly.
    let n = 4_000_000;
    let col: Column<i32> = (0..n).map(|i| (i / 100 + (i * 37) % 50) % 10_000).collect();
    println!("column: {} rows, {} MiB", col.len(), col.data_bytes() >> 20);

    // Build the index: one sampling pass for the histogram, one scan for
    // the imprint vectors.
    let t0 = std::time::Instant::now();
    let idx = ColumnImprints::build(&col);
    println!(
        "imprints built in {:?}: {} bins, {} cachelines -> {} stored imprints ({} dict entries)",
        t0.elapsed(),
        idx.bins(),
        idx.line_count(),
        idx.imprint_count(),
        idx.dict_len(),
    );
    println!(
        "index size: {} bytes = {:.2}% of the column; entropy E = {:.3}",
        RangeIndex::<i32>::size_bytes(&idx),
        100.0 * RangeIndex::<i32>::size_bytes(&idx) as f64 / col.data_bytes() as f64,
        column_entropy(&idx),
    );

    // A peek at the index itself, Figure-3 style.
    println!("\nfirst imprint vectors ('x' = bin occupied):");
    print!("{}", print::render_stored(&idx, 8));

    // Range queries of decreasing selectivity.
    for (lo, hi) in [(100, 110), (100, 1000), (100, 9000)] {
        let pred = RangePredicate::between(lo, hi);
        let t0 = std::time::Instant::now();
        let (ids, stats) = column_imprints::imprints::query::evaluate(&idx, &col, &pred);
        let dt = t0.elapsed();
        println!(
            "\nquery {pred}: {} rows in {:?} \
             (probes {}, skipped {} lines, fast-path {} lines, {} value checks)",
            ids.len(),
            dt,
            stats.access.index_probes,
            stats.access.lines_skipped,
            stats.lines_full,
            stats.access.value_comparisons,
        );
        // Compare against a full scan.
        let t0 = std::time::Instant::now();
        let expected: Vec<u64> = col
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect();
        let scan_dt = t0.elapsed();
        assert_eq!(ids.as_slice(), expected.as_slice(), "index must agree with the scan");
        println!(
            "scan: same {} rows in {:?} -> imprints speedup {:.1}x",
            expected.len(),
            scan_dt,
            scan_dt.as_secs_f64() / dt.as_secs_f64()
        );
    }
}
