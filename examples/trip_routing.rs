//! Trip routing analytics: the paper's Routing dataset — GPS traces with
//! strong local clustering — and a *multi-attribute* bounding-box query
//! answered with the late-materialization plan of §3: per-column candidate
//! cachelines, merge-joined in id space, then one false-positive pass.
//!
//! ```text
//! cargo run --release --example trip_routing
//! ```

use column_imprints::colstore::{Column, RangeIndex, RangePredicate, Relation, Value};
use column_imprints::datagen::distributions;
use column_imprints::imprints::query::{self, conjunction2};
use column_imprints::imprints::relation_index::{RelationImprints, ValueRange};
use column_imprints::imprints::{column_entropy, ColumnImprints};

fn main() {
    // 2M GPS points: lat/lon wander smoothly within each 4096-point trip.
    let n = 2_000_000;
    let lat: Column<f64> = Column::from(distributions::random_walk(n, 45.0, 55.0, 0.0005, 4096, 1));
    let lon: Column<f64> = Column::from(distributions::random_walk(n, 3.0, 8.0, 0.0005, 4096, 2));

    // The relation ties the columns into one logical table.
    let mut trips = Relation::new("trips");
    trips.add_column("lat", lat.clone()).unwrap();
    trips.add_column("lon", lon.clone()).unwrap();

    let idx_lat = ColumnImprints::build(&lat);
    let idx_lon = ColumnImprints::build(&lon);
    println!(
        "routing columns: E(lat) = {:.3}, E(lon) = {:.3} (clustered, as in the paper's Fig. 3)",
        column_entropy(&idx_lat),
        column_entropy(&idx_lon)
    );
    println!(
        "imprint sizes: lat {:.2}%, lon {:.2}% of column data",
        100.0 * RangeIndex::<f64>::size_bytes(&idx_lat) as f64 / lat.data_bytes() as f64,
        100.0 * RangeIndex::<f64>::size_bytes(&idx_lon) as f64 / lon.data_bytes() as f64,
    );

    // Bounding box around Amsterdam-ish coordinates.
    let lat_pred = RangePredicate::between(52.0, 52.5);
    let lon_pred = RangePredicate::between(4.5, 5.5);

    // Late materialization: candidates -> merge-join -> refine.
    let t0 = std::time::Instant::now();
    let (ids, stats) = conjunction2((&idx_lat, &lat, &lat_pred), (&idx_lon, &lon, &lon_pred));
    let dt_idx = t0.elapsed();
    println!(
        "\nbounding box [{lat_pred} x {lon_pred}]: {} points in {:?} ({} value checks)",
        ids.len(),
        dt_idx,
        stats.access.value_comparisons
    );

    // The same box via two scans + intersection, for comparison.
    let t0 = std::time::Instant::now();
    let brute: Vec<u64> = (0..n as u64)
        .filter(|&i| {
            lat_pred.matches(&lat.values()[i as usize])
                && lon_pred.matches(&lon.values()[i as usize])
        })
        .collect();
    let dt_scan = t0.elapsed();
    assert_eq!(ids.as_slice(), brute.as_slice());
    println!(
        "scan of both columns: {:?} -> conjunction speedup {:.1}x",
        dt_scan,
        dt_scan.as_secs_f64() / dt_idx.as_secs_f64()
    );

    // Late materialization endpoint: reconstruct a few matching tuples.
    println!("\nfirst matches (id, lat, lon):");
    for id in ids.iter().take(5) {
        let tuple = trips.tuple(id as usize).unwrap();
        println!("  #{id}: {} , {}", tuple[0], tuple[1]);
    }

    // The same query through the relation-level API (one index per column,
    // dynamically-typed bounds).
    let rel_idx = RelationImprints::build(&trips);
    let rel_ids = rel_idx
        .query(
            &trips,
            &[
                ("lat", ValueRange::between(Value::F64(52.0), Value::F64(52.5))),
                ("lon", ValueRange::between(Value::F64(4.5), Value::F64(5.5))),
            ],
        )
        .expect("well-typed predicates");
    assert_eq!(rel_ids, ids);
    println!("\nrelation-level API agrees: {} points", rel_ids.len());

    // Candidate-set statistics: how much did each imprint prune?
    let (cand_lat, _) = query::candidates(&idx_lat, &lat_pred);
    let (cand_lon, _) = query::candidates(&idx_lon, &lon_pred);
    println!(
        "\ncandidate cachelines: lat {} of {} ({} runs), lon {} of {} ({} runs)",
        cand_lat.line_count(),
        idx_lat.line_count(),
        cand_lat.run_count(),
        cand_lon.line_count(),
        idx_lon.line_count(),
        cand_lon.run_count(),
    );
}
