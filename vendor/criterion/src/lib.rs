//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the measurement surface the workspace's benches use:
//! benchmark groups, `bench_function` / `bench_with_input`, throughput
//! annotation and the `criterion_group!` / `criterion_main!` macros. Each
//! benchmark is timed with an adaptive iteration count targeting a fixed
//! wall-clock budget per sample and reported as `ns/iter` (plus derived
//! element throughput). There is no statistical analysis, plotting, or
//! baseline comparison; when the binary is invoked with `--test` (as
//! `cargo test --benches` does) every benchmark runs exactly once, as a
//! smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to every benchmark target function.
pub struct Criterion {
    /// Run each closure once, without timing loops (smoke-test mode).
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` / `cargo bench -- --test` runs bench binaries with
        // `--test` in the arguments: compile-and-smoke mode.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.quick {
            println!("\n== {name} ==");
        }
        BenchmarkGroup { c: self, name, throughput: None, sample_budget: Duration::from_millis(60) }
    }
}

/// Throughput annotation: converts ns/iter into a rate in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; scales the per-sample time budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's default is 100 samples; treat smaller requests as a
        // proportionally smaller budget so heavy benches stay quick.
        self.sample_budget = Duration::from_millis(60).mul_f64((n as f64 / 100.0).clamp(0.1, 1.0));
        self
    }

    /// Measures `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { quick: self.c.quick, budget: self.sample_budget, report: None };
        f(&mut b);
        self.report(&id.id, b.report);
        self
    }

    /// Measures `f` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { quick: self.c.quick, budget: self.sample_budget, report: None };
        f(&mut b, input);
        self.report(&id.id, b.report);
        self
    }

    /// Ends the group (printing is incremental; nothing left to do).
    pub fn finish(self) {}

    fn report(&self, id: &str, ns_per_iter: Option<f64>) {
        if self.c.quick {
            return;
        }
        let Some(ns) = ns_per_iter else { return };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:>12.1} Melem/s", n as f64 / ns * 1e3),
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{}/{id}: {ns:>14.1} ns/iter{rate}", self.name);
    }
}

/// Passed to the closure; `iter` runs the measured routine.
pub struct Bencher {
    quick: bool,
    budget: Duration,
    report: Option<f64>,
}

impl Bencher {
    /// Times `f`, adapting the iteration count to the sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            return;
        }
        // Calibrate: run once to estimate cost.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = t1.elapsed();
        self.report = Some(total.as_nanos() as f64 / iters as f64);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
