//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Exposes the subset of the rand 0.8 API this workspace uses: [`rngs::StdRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic per seed. The
//! generated stream differs from crates.io `rand` — no caller depends on the
//! exact stream, only on determinism and rough uniformity.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — fast, full-period, good statistical quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid state; the seeding above
            // cannot produce it for any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample(rng: &mut dyn RngCore) -> Self;
}

#[inline]
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn standard_sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng) as f32
    }
}

/// Types `Rng::gen_range` can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo draw; the bias is < span / 2^128, irrelevant here.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo as i128 + (wide % span) as i128) as $t
            }

            #[inline]
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo as i128 + (wide % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let v = lo + (hi - lo) * unit_f64(rng) as $t;
                // Guard against rounding up to `hi` at the top of the range.
                if v < hi {
                    v
                } else {
                    lo
                }
            }

            #[inline]
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing convenience trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Slice helpers, mirroring `rand::seq`.
    use super::Rng;

    /// In-place shuffling and random element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let v = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let low = (0..n).filter(|_| rng.gen_range(0u32..100) < 50).count();
        assert!((45_000..55_000).contains(&low), "low half got {low}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        assert!((22_000..28_000).contains(&heads), "p=0.25 got {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..1000).collect();
        v.shuffle(&mut rng);
        assert!(v.windows(2).any(|w| w[0] > w[1]), "shuffle left input sorted");
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..1000).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
