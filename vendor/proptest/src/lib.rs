//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`], [`prop_oneof!`] and `prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `boxed`, [`strategy::Just`],
//! [`arbitrary::any`], and [`collection::vec`] / [`collection::btree_set`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! immediately, after printing the generated inputs (`Debug`) so the case
//! can be reproduced by hand. Generation is deterministic per test: the RNG
//! is seeded from the test's module path and name.

pub mod test_runner {
    //! Test configuration and RNG plumbing used by the macros.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config` that call sites reference.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for API compatibility; unused (there is no shrinker).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Deterministic RNG for one named test (FNV-1a of the name).
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`] for boxing.
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map { inner: self.inner.clone(), f: self.f.clone() }
        }
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { variants: self.variants.clone() }
        }
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` pairs.
        pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
            assert!(variants.iter().any(|(w, _)| *w > 0), "all prop_oneof! weights are zero");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, s) in &self.variants {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of bounds")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);

    /// Strategy for an [`crate::arbitrary::Arbitrary`] type.
    pub struct ArbitraryStrategy<A>(pub(crate) PhantomData<fn() -> A>);

    impl<A> Clone for ArbitraryStrategy<A> {
        fn clone(&self) -> Self {
            ArbitraryStrategy(PhantomData)
        }
    }

    impl<A: crate::arbitrary::Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use std::marker::PhantomData;

    use rand::Rng;

    use crate::strategy::ArbitraryStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `A` over its whole domain.
    pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
        ArbitraryStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::BTreeSet;
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { element: self.element.clone(), size: self.size.clone() }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_len(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size`-many elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>` from `size`-many draws (duplicate
    /// draws collapse, so the set can come out smaller — as in proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for BTreeSetStrategy<S> {
        fn clone(&self) -> Self {
            BTreeSetStrategy { element: self.element.clone(), size: self.size.clone() }
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = sample_len(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A set built from `size`-many draws of `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    fn sample_len(rng: &mut TestRng, size: &Range<usize>) -> usize {
        assert!(size.start < size.end, "empty size range");
        rng.gen_range(size.start..size.end)
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path alias used by call sites.
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __values =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+);
                let __desc = format!("{:?}", &__values);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        #[allow(unused_mut)]
                        let ($($pat,)+) = __values;
                        $body
                    }),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "[proptest] {} failed at case {}/{} with inputs:\n  {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __desc,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts within a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity_bound(n: i64) -> impl Strategy<Value = i64> + Clone {
        (0i64..n).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(v in -50i32..50, f in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_set_sizes(
            mut values in prop::collection::vec(0u64..100, 1..30),
            set in prop::collection::btree_set(0u64..100, 0..30),
        ) {
            prop_assert!(!values.is_empty() && values.len() < 30);
            values.sort_unstable();
            prop_assert!(set.len() < 30);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![8 => parity_bound(10), 1 => Just(1i64)],
            pair in (any::<bool>(), 0u64..4),
        ) {
            prop_assert!(v == 1 || v % 2 == 0);
            prop_assert!(pair.1 < 4);
        }
    }
}
