//! Synthetic analogues of the paper's five evaluation datasets (Table 1).
//!
//! | family | emulates | signature properties |
//! |---|---|---|
//! | [`DatasetFamily::Routing`] | GPS trip logs (240M rows, int/long) | continuous random walks per trip → strong local clustering, E ≈ 0.3 |
//! | [`DatasetFamily::Sdss`] | SkyServer astronomy (real/double/long) | uniform high-cardinality floats → E ≈ 0.8, WAH's worst case |
//! | [`DatasetFamily::Cnet`] | product catalog (int/char, 1M rows) | sparse zipf categoricals, low cardinality → E ≈ 0.2 |
//! | [`DatasetFamily::Airtraffic`] | flight-delay warehouse (93 cols) | month-ordered clustered ints/shorts/chars → E ≈ 0.35 |
//! | [`DatasetFamily::Tpch`] | TPC-H SF-100 (int/date) | repeated permutations (e.g. `p_retailprice`) → E ≈ 0.23 |
//!
//! Row counts are scaled (configurable) — every §6 comparison is relative,
//! so the shapes survive scaling; the entropy targets are asserted in the
//! integration tests.

use colstore::relation::AnyColumn;
use colstore::Column;

use crate::distributions as dist;

/// Which real-world dataset a generated column emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// GPS trip logs: clustered doubles/longs.
    Routing,
    /// SkyServer: uniform high-cardinality reals/doubles.
    Sdss,
    /// Product catalog: sparse low-cardinality categoricals.
    Cnet,
    /// Flight statistics: time-ordered clustered sequences.
    Airtraffic,
    /// TPC-H: repeated-permutation generated columns.
    Tpch,
}

impl DatasetFamily {
    /// All five families, in Table 1 order.
    pub const ALL: [DatasetFamily; 5] = [
        DatasetFamily::Routing,
        DatasetFamily::Sdss,
        DatasetFamily::Cnet,
        DatasetFamily::Airtraffic,
        DatasetFamily::Tpch,
    ];

    /// Display name matching Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetFamily::Routing => "Routing",
            DatasetFamily::Sdss => "SDSS",
            DatasetFamily::Cnet => "Cnet",
            DatasetFamily::Airtraffic => "Airtraffic",
            DatasetFamily::Tpch => "TPC-H 100",
        }
    }
}

/// One generated column with its provenance.
#[derive(Debug, Clone)]
pub struct GeneratedColumn {
    /// Column name, in the style of the paper's Figure 3 captions
    /// (`trips.lat`, `photoprofile.profmean`, …).
    pub name: String,
    /// The dataset family it belongs to.
    pub family: DatasetFamily,
    /// The data, behind the dynamic column wrapper.
    pub column: AnyColumn,
}

impl GeneratedColumn {
    fn new<C: Into<AnyColumn>>(name: &str, family: DatasetFamily, column: C) -> Self {
        GeneratedColumn { name: name.to_string(), family, column: column.into() }
    }

    /// Rows in the column.
    pub fn rows(&self) -> usize {
        self.column.len()
    }

    /// Bytes of raw data.
    pub fn data_bytes(&self) -> usize {
        self.column.data_bytes()
    }
}

/// Generates the columns of one dataset family at `rows` rows per column.
///
/// Column counts are kept small (4–8 per family) but cover every value
/// width the paper's Figure 5 groups by (1, 2, 4, 8 bytes).
pub fn generate(family: DatasetFamily, rows: usize, seed: u64) -> Vec<GeneratedColumn> {
    use DatasetFamily::*;
    match family {
        Routing => {
            // lat/lon walks, trip ids, timestamps (§6: int, long types).
            let lat = dist::random_walk(rows, -90.0, 90.0, 0.002, 4096, seed);
            let lon = dist::random_walk(rows, -180.0, 180.0, 0.002, 4096, seed ^ 1);
            let trip: Vec<i64> = (0..rows).map(|i| (i / 4096) as i64).collect();
            let ts: Vec<i64> = (0..rows)
                .map(|i| 1_300_000_000 + (i as i64) * 5 + ((i * 7919) % 4) as i64)
                .collect();
            vec![
                GeneratedColumn::new("trips.lat", family, Column::from(lat)),
                GeneratedColumn::new("trips.lon", family, Column::from(lon)),
                GeneratedColumn::new("trips.trip_id", family, Column::from(trip)),
                GeneratedColumn::new("trips.timestamp", family, Column::from(ts)),
            ]
        }
        Sdss => {
            let profmean = dist::uniform_doubles(rows, 0.0, 30.0, seed);
            let ra: Vec<f64> = dist::uniform_doubles(rows, 0.0, 360.0, seed ^ 2);
            let dec: Vec<f32> = dist::uniform_doubles(rows, -90.0, 90.0, seed ^ 3)
                .iter()
                .map(|&x| x as f32)
                .collect();
            let objid: Vec<i64> = dist::uniform_ints(rows, 0, i64::MAX / 2, seed ^ 4);
            vec![
                GeneratedColumn::new("photoprofile.profmean", family, Column::from(profmean)),
                GeneratedColumn::new("photoobj.ra", family, Column::from(ra)),
                GeneratedColumn::new("photoobj.dec", family, Column::from(dec)),
                GeneratedColumn::new("photoobj.objid", family, Column::from(objid)),
            ]
        }
        Cnet => {
            // Very sparse categorical attributes of a wide table: zipf with
            // a dominant "missing" value, repeating in runs because similar
            // products are inserted adjacently (low entropy despite skew).
            let attr18: Vec<i32> = dist::cast_vec(&dist::clustered_zipf(rows, 40, 1.4, 96, seed));
            let attr7: Vec<u8> =
                dist::cast_vec(&dist::clustered_zipf(rows, 12, 1.6, 128, seed ^ 5));
            let attr99: Vec<i16> =
                dist::cast_vec(&dist::clustered_zipf(rows, 200, 1.1, 64, seed ^ 6));
            let price_bucket: Vec<i32> =
                dist::cast_vec(&dist::clustered_zipf(rows, 64, 0.9, 48, seed ^ 7));
            vec![
                GeneratedColumn::new("cnet.attr18", family, Column::from(attr18)),
                GeneratedColumn::new("cnet.attr7", family, Column::from(attr7)),
                GeneratedColumn::new("cnet.attr99", family, Column::from(attr99)),
                GeneratedColumn::new("cnet.price_bucket", family, Column::from(price_bucket)),
            ]
        }
        Airtraffic => {
            let airline: Vec<i32> = dist::cast_vec(&dist::time_clustered(rows, 24, 30, 0.02, seed));
            let delay: Vec<i16> = dist::cast_vec(
                &dist::zipf(rows, 400, 1.3, seed ^ 8).iter().map(|&x| x - 30).collect::<Vec<_>>(),
            );
            let month: Vec<u8> = dist::cast_vec(
                &(0..rows).map(|i| ((i * 12) / rows.max(1)) as i64).collect::<Vec<_>>(),
            );
            let cancelled: Vec<u8> = dist::cast_vec(&dist::two_valued(rows, 2000, seed ^ 9));
            let dep_time: Vec<i32> =
                dist::cast_vec(&dist::time_clustered(rows, 365, 1440, 0.01, seed ^ 10));
            vec![
                GeneratedColumn::new("ontime.AirlineID", family, Column::from(airline)),
                GeneratedColumn::new("ontime.ArrDelay", family, Column::from(delay)),
                GeneratedColumn::new("ontime.Month", family, Column::from(month)),
                GeneratedColumn::new("ontime.Cancelled", family, Column::from(cancelled)),
                GeneratedColumn::new("ontime.DepTime", family, Column::from(dep_time)),
            ]
        }
        Tpch => {
            // p_retailprice is a deterministic sawtooth of the part key:
            // "not ordered, but … the same repeated permutation of an
            // order", locally incremental — which is what gives the paper's
            // low entropy (E ≈ 0.23) despite the column being unsorted.
            let retail: Vec<i64> = (0..rows).map(|i| 90_000 + ((i as i64 * 7) % 20_000)).collect();
            let qty: Vec<i32> = dist::cast_vec(&dist::repeated_permutation(rows, 50, seed ^ 11));
            let orderdate: Vec<i32> = dist::cast_vec(
                &(0..rows).map(|i| 8035 + ((i * 2557) / rows.max(1)) as i64).collect::<Vec<_>>(),
            );
            let orderkey: Vec<i64> = (0..rows as i64).map(|i| i * 4).collect();
            vec![
                GeneratedColumn::new("part.p_retailprice", family, Column::from(retail)),
                GeneratedColumn::new("lineitem.l_quantity", family, Column::from(qty)),
                GeneratedColumn::new("orders.o_orderdate", family, Column::from(orderdate)),
                GeneratedColumn::new("orders.o_orderkey", family, Column::from(orderkey)),
            ]
        }
    }
}

/// Generates every family at the same per-column row count.
pub fn generate_all(rows: usize, seed: u64) -> Vec<GeneratedColumn> {
    DatasetFamily::ALL.iter().flat_map(|&f| generate(f, rows, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates() {
        for f in DatasetFamily::ALL {
            let cols = generate(f, 10_000, 42);
            assert!(cols.len() >= 4, "{:?} has too few columns", f);
            for c in &cols {
                assert_eq!(c.rows(), 10_000, "{} wrong length", c.name);
                assert!(c.data_bytes() > 0);
                assert_eq!(c.family, f);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetFamily::Routing, 5000, 7);
        let b = generate(DatasetFamily::Routing, 5000, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.column, y.column, "{}", x.name);
        }
    }

    #[test]
    fn families_cover_all_widths() {
        use colstore::ColumnType::*;
        let widths: std::collections::HashSet<usize> =
            generate_all(1000, 1).iter().map(|c| c.column.column_type().width()).collect();
        assert!(
            widths.contains(&1)
                && widths.contains(&2)
                && widths.contains(&4)
                && widths.contains(&8)
        );
        // And both float and integer kinds appear.
        let types: std::collections::HashSet<_> =
            generate_all(1000, 1).iter().map(|c| c.column.column_type()).collect();
        assert!(types.contains(&F64) && types.contains(&I64) && types.contains(&U8));
    }

    #[test]
    fn table1_name_strings() {
        assert_eq!(DatasetFamily::Sdss.name(), "SDSS");
        assert_eq!(DatasetFamily::Tpch.name(), "TPC-H 100");
    }
}
