//! # datagen — synthetic datasets and workloads for the evaluation
//!
//! The paper evaluates on five real-world datasets (Table 1): GPS *Routing*
//! traces, the *SDSS/SkyServer* astronomy sample, the *Cnet* product
//! catalog, the *Airtraffic* delay warehouse and *TPC-H* at scale 100.
//! None of these is redistributable here, so this crate synthesizes columns
//! with the statistical properties the paper attributes to each dataset —
//! value distribution, cardinality and, crucially, *local clustering*
//! (column entropy), which is what drives every result in §6. See
//! `DESIGN.md` §5 for the substitution argument.
//!
//! * [`distributions`] — primitive value generators (uniform, zipf, markov
//!   walks, repeated permutations, …);
//! * [`datasets`] — the five dataset families of Table 1, scaled;
//! * [`workload`] — range-query workloads with controlled selectivity
//!   (the 10-step sweep of §6.3);
//! * [`entropy_sweep`] — columns with dial-a-clustering for the
//!   entropy-axis figures (7 and 11).

#![warn(missing_docs)]

pub mod datasets;
pub mod distributions;
pub mod entropy_sweep;
pub mod workload;

pub use datasets::{DatasetFamily, GeneratedColumn};
pub use workload::QueryWorkload;
