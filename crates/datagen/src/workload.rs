//! Selectivity-controlled range-query workloads (§6.3).
//!
//! "For each column, ten different range queries with varying selectivity
//! are created. The selectivity starts from less than 0.1 and increases
//! each time by 0.1, until it surpasses 0.9."
//!
//! Selectivity is dialed in exactly through the empirical quantiles of the
//! column: a query returning fraction `s` of the rows is
//! `[q(a), q(a + s)]` for a random offset `a ∈ [0, 1 − s]`.

use colstore::{Column, RangePredicate, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's ten-step selectivity ladder: "starts from less than 0.1 and
/// increases each time by 0.1, until it surpasses 0.9". The first step is
/// very selective (1%) — that end is where secondary indexes shine (the
/// ~1000× factors of Figure 10 appear near selectivity 0).
pub const SELECTIVITY_STEPS: [f64; 10] = [0.01, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.95];

/// A generated query with its intended selectivity.
#[derive(Debug, Clone)]
pub struct WorkloadQuery<T: Scalar> {
    /// The range predicate to evaluate.
    pub predicate: RangePredicate<T>,
    /// The selectivity the quantile construction aimed for.
    pub target_selectivity: f64,
}

/// A reproducible batch of range queries over one column.
#[derive(Debug, Clone)]
pub struct QueryWorkload<T: Scalar> {
    queries: Vec<WorkloadQuery<T>>,
}

impl<T: Scalar> QueryWorkload<T> {
    /// Builds `rounds` sweeps of the [`SELECTIVITY_STEPS`] ladder for
    /// `col`. Each query picks a fresh random window at its selectivity.
    pub fn for_column(col: &Column<T>, rounds: usize, seed: u64) -> Self {
        let mut sorted: Vec<T> = col.values().to_vec();
        sorted.sort_unstable_by(T::total_cmp);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(rounds * SELECTIVITY_STEPS.len());
        for _ in 0..rounds {
            for &s in &SELECTIVITY_STEPS {
                queries.push(WorkloadQuery {
                    predicate: quantile_range(&sorted, s, &mut rng),
                    target_selectivity: s,
                });
            }
        }
        QueryWorkload { queries }
    }

    /// The queries, in generation order.
    pub fn queries(&self) -> &[WorkloadQuery<T>] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// A closed range predicate selecting ~`selectivity` of `sorted`.
fn quantile_range<T: Scalar>(
    sorted: &[T],
    selectivity: f64,
    rng: &mut StdRng,
) -> RangePredicate<T> {
    let n = sorted.len();
    if n == 0 {
        // Degenerate: an unbounded query over an empty column.
        return RangePredicate::all();
    }
    let s = selectivity.clamp(0.0, 1.0);
    let span = ((n as f64) * s).round() as usize;
    let span = span.clamp(1, n);
    let max_start = n - span;
    let start = if max_start == 0 { 0 } else { rng.gen_range(0..=max_start) };
    let lo = sorted[start];
    let hi = sorted[start + span - 1];
    RangePredicate::between(lo, hi)
}

/// Measures the true selectivity of `pred` over `col` (used by the harness
/// to report the x-axis of Figures 8–10 honestly).
pub fn measured_selectivity<T: Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> f64 {
    if col.is_empty() {
        return 0.0;
    }
    let matches = col.values().iter().filter(|v| pred.matches(v)).count();
    matches as f64 / col.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_hits_target_selectivities_on_distinct_data() {
        let col: Column<i64> = (0..100_000).collect();
        let wl = QueryWorkload::for_column(&col, 2, 3);
        assert_eq!(wl.len(), 20);
        for q in wl.queries() {
            let got = measured_selectivity(&col, &q.predicate);
            assert!(
                (got - q.target_selectivity).abs() < 0.02,
                "target {} got {got}",
                q.target_selectivity
            );
        }
    }

    #[test]
    fn workload_on_skewed_data_overcounts_duplicates_gracefully() {
        // With heavy duplication a closed range can only approximate the
        // selectivity from above; it must never undershoot badly.
        let col: Column<i32> = (0..50_000).map(|i| i % 10).collect();
        let wl = QueryWorkload::for_column(&col, 1, 5);
        for q in wl.queries() {
            let got = measured_selectivity(&col, &q.predicate);
            assert!(
                got >= q.target_selectivity - 0.11,
                "target {} got {got}",
                q.target_selectivity
            );
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let col: Column<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let a = QueryWorkload::for_column(&col, 1, 9);
        let b = QueryWorkload::for_column(&col, 1, 9);
        for (x, y) in a.queries().iter().zip(b.queries()) {
            assert_eq!(x.predicate, y.predicate);
        }
    }

    #[test]
    fn empty_column_workload() {
        let col: Column<i32> = Column::new();
        let wl = QueryWorkload::for_column(&col, 1, 0);
        assert_eq!(wl.len(), 10);
        assert_eq!(measured_selectivity(&col, &wl.queries()[0].predicate), 0.0);
    }

    #[test]
    fn selectivity_ladder_matches_paper() {
        assert_eq!(SELECTIVITY_STEPS.len(), 10, "ten queries per column");
        let (first, last) = (SELECTIVITY_STEPS[0], SELECTIVITY_STEPS[9]);
        assert!(first < 0.1, "starts below 0.1");
        assert!(last > 0.9, "surpasses 0.9");
        for w in SELECTIVITY_STEPS.windows(2) {
            assert!(w[1] > w[0], "strictly increasing");
            assert!(w[1] - w[0] <= 0.15 + 1e-9, "~0.1 increments");
        }
    }
}
