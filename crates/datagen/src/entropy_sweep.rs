//! Columns with dial-a-clustering, for the entropy-axis figures.
//!
//! Figures 7 and 11 plot index behaviour against column entropy `E`. To
//! sweep the x-axis we need columns whose entropy is controllable: a
//! mixture of a slowly-drifting clustered process and uniform noise. With
//! mixing ratio `chaos = 0` the column is a pure drift (E ≈ 0); with
//! `chaos = 1` it is uniform random (E near its maximum for the binning).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` integers over domain `0..domain` whose local clustering
/// degrades as `chaos ∈ [0, 1]` grows.
pub fn entropy_dial(n: usize, domain: i64, chaos: f64, seed: u64) -> Vec<i64> {
    assert!(domain > 1);
    let chaos = chaos.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // The clustered component drifts through the domain in one sweep, so
    // every bin is eventually visited (keeping the binning comparable
    // across chaos levels).
    let drift_window = (domain / 64).max(1);
    (0..n)
        .map(|i| {
            if rng.gen_bool(chaos) {
                rng.gen_range(0..domain)
            } else {
                let base = ((i as i64) * domain) / (n as i64);
                (base + rng.gen_range(0..drift_window)).min(domain - 1)
            }
        })
        .collect()
}

/// A ladder of `steps` chaos levels from 0.0 to 1.0 inclusive.
pub fn chaos_ladder(steps: usize) -> Vec<f64> {
    assert!(steps >= 2);
    (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::Column;
    use imprints_entropy_helper::entropy_of;

    /// Local helper: entropy via the real index, avoiding a dev-dependency
    /// cycle (datagen cannot depend on imprints, so the full end-to-end
    /// monotonicity test lives in the workspace integration tests; here we
    /// use a lightweight stand-in entropy over value-bucket vectors).
    mod imprints_entropy_helper {
        pub fn entropy_of(values: &[i64], domain: i64, vpc: usize) -> f64 {
            // Bucket values into 64 equal ranges, build per-"cacheline"
            // bit vectors and apply the paper's formula directly.
            let mut vectors = Vec::new();
            for chunk in values.chunks(vpc) {
                let mut v = 0u64;
                for &x in chunk {
                    let bin = ((x.max(0) * 64) / domain).min(63) as u64;
                    v |= 1 << bin;
                }
                vectors.push(v);
            }
            let bits: u64 = vectors.iter().map(|v| v.count_ones() as u64).sum();
            if bits == 0 {
                return 0.0;
            }
            let edits: u64 = vectors.windows(2).map(|w| (w[0] ^ w[1]).count_ones() as u64).sum();
            edits as f64 / (2.0 * bits as f64)
        }
    }

    #[test]
    fn chaos_zero_is_clustered() {
        let v = entropy_dial(50_000, 4096, 0.0, 1);
        let e = entropy_of(&v, 4096, 8);
        assert!(e < 0.15, "chaos 0 entropy {e}");
    }

    #[test]
    fn chaos_one_is_noisy() {
        let v = entropy_dial(50_000, 4096, 1.0, 1);
        let e = entropy_of(&v, 4096, 8);
        assert!(e > 0.5, "chaos 1 entropy {e}");
    }

    #[test]
    fn entropy_grows_with_chaos() {
        let mut last = -1.0;
        for chaos in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = entropy_dial(30_000, 4096, chaos, 3);
            let e = entropy_of(&v, 4096, 8);
            assert!(e > last - 0.02, "entropy should not decrease: {last} -> {e} at {chaos}");
            last = e;
        }
    }

    #[test]
    fn values_in_domain() {
        let v = entropy_dial(10_000, 100, 0.5, 9);
        assert!(v.iter().all(|&x| (0..100).contains(&x)));
        let col: Column<i64> = Column::from(v);
        assert_eq!(col.len(), 10_000);
    }

    #[test]
    fn ladder_endpoints() {
        let l = chaos_ladder(11);
        assert_eq!(l.len(), 11);
        assert_eq!(l[0], 0.0);
        assert_eq!(l[10], 1.0);
        assert!((l[5] - 0.5).abs() < 1e-9);
    }
}
