//! Primitive synthetic value generators.
//!
//! Each generator is deterministic given its seed, so every experiment in
//! the harness is reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform integers in `[lo, hi)`.
pub fn uniform_ints(n: usize, lo: i64, hi: i64, seed: u64) -> Vec<i64> {
    assert!(lo < hi);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Uniform doubles in `[lo, hi)` — the SkyServer-style high-cardinality,
/// zero-clustering stress case.
pub fn uniform_doubles(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    assert!(lo < hi);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Zipf-distributed categories `0..cardinality` with exponent `theta`:
/// the skewed categorical case (Cnet-style sparse attributes).
///
/// Uses an inverse-CDF table; O(cardinality) setup, O(log cardinality) per
/// sample.
pub fn zipf(n: usize, cardinality: usize, theta: f64, seed: u64) -> Vec<i64> {
    assert!(cardinality > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cdf = Vec::with_capacity(cardinality);
    let mut acc = 0.0f64;
    for k in 1..=cardinality {
        acc += 1.0 / (k as f64).powf(theta);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            cdf.partition_point(|&c| c < u) as i64
        })
        .collect()
}

/// Zipf categories drawn once per *run* of `run_len`-ish rows instead of
/// per row. Catalog-style tables insert similar products adjacently, so
/// their sparse attributes repeat in stretches — the locality that gives
/// the paper's Cnet columns their low entropy (E ≈ 0.2) despite skew.
pub fn clustered_zipf(
    n: usize,
    cardinality: usize,
    theta: f64,
    run_len: usize,
    seed: u64,
) -> Vec<i64> {
    assert!(run_len > 0);
    let draws = zipf(n.div_ceil(run_len) * 2 + 1, cardinality, theta, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut out = Vec::with_capacity(n);
    let mut draw = 0usize;
    while out.len() < n {
        let len = rng.gen_range(1..=run_len * 2).min(n - out.len());
        out.extend(std::iter::repeat_n(draws[draw % draws.len()], len));
        draw += 1;
    }
    out
}

/// A bounded random walk: consecutive values differ by at most `max_step`,
/// clamped to `[lo, hi]`. Models the Routing dataset's GPS traces, which
/// are "continuous without any jumps, unless the trip-id changes": every
/// `trip_len` values the walk teleports to a fresh uniform position.
pub fn random_walk(
    n: usize,
    lo: f64,
    hi: f64,
    max_step: f64,
    trip_len: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(lo < hi && max_step > 0.0 && trip_len > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = rng.gen_range(lo..hi);
    (0..n)
        .map(|i| {
            if i % trip_len == 0 {
                v = rng.gen_range(lo..hi);
            } else {
                v = (v + rng.gen_range(-max_step..max_step)).clamp(lo, hi);
            }
            v
        })
        .collect()
}

/// Time-ordered clustered categories: the value domain advances slowly with
/// position (Airtraffic's "data are updated per month, leading to many
/// time-ordered clustered sequences"). `per_period` rows share each period;
/// within a period values are drawn from a small window of the domain.
pub fn time_clustered(
    n: usize,
    periods: usize,
    window: i64,
    per_period_noise: f64,
    seed: u64,
) -> Vec<i64> {
    assert!(periods > 0 && window > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_period = n.div_ceil(periods);
    (0..n)
        .map(|i| {
            let period = (i / per_period) as i64;
            let base = period * window;
            if rng.gen_bool(per_period_noise) {
                // occasional out-of-period stragglers (late updates)
                rng.gen_range(0..periods as i64 * window)
            } else {
                base + rng.gen_range(0..window)
            }
        })
        .collect()
}

/// The same permutation of `0..cycle` repeated until `n` values exist:
/// TPC-H's generated columns, which "contain a sequence of prices that are
/// not ordered, but they are still the same repeated permutation of an
/// order" — unsorted yet perfectly predictable at cacheline granularity.
pub fn repeated_permutation(n: usize, cycle: usize, seed: u64) -> Vec<i64> {
    use rand::seq::SliceRandom;
    assert!(cycle > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<i64> = (0..cycle as i64).collect();
    perm.shuffle(&mut rng);
    (0..n).map(|i| perm[i % cycle]).collect()
}

/// Sorted ascending integers (the primary-key / ordered-column case kept
/// in the evaluation "for completeness").
pub fn sorted_ints(n: usize, start: i64) -> Vec<i64> {
    (0..n as i64).map(|i| start + i).collect()
}

/// Exactly two distinct values in long runs — the 1-byte Airtraffic
/// columns where "although they have more than 126 million rows, they only
/// contain two distinct values".
pub fn two_valued(n: usize, run: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut bit = false;
    while out.len() < n {
        let len = rng.gen_range(1..=run).min(n - out.len());
        out.extend(std::iter::repeat_n(bit as i64, len));
        bit = !bit;
    }
    out
}

/// Casts an `i64` vector into a narrower integer type, wrapping.
pub fn cast_vec<T: TryFrom<i64> + Copy + Default>(v: &[i64]) -> Vec<T> {
    v.iter().map(|&x| T::try_from(x).unwrap_or_default()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ints_in_range_and_deterministic() {
        let a = uniform_ints(10_000, -50, 50, 7);
        let b = uniform_ints(10_000, -50, 50, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-50..50).contains(&v)));
        // Rough uniformity: both halves populated.
        let neg = a.iter().filter(|&&v| v < 0).count();
        assert!(neg > 3000 && neg < 7000);
    }

    #[test]
    fn uniform_doubles_high_cardinality() {
        let v = uniform_doubles(10_000, 0.0, 1.0, 1);
        let mut s = v.clone();
        s.sort_by(f64::total_cmp);
        s.dedup();
        assert!(s.len() > 9990, "uniform doubles should be almost all distinct");
    }

    #[test]
    fn zipf_is_skewed() {
        let v = zipf(50_000, 1000, 1.2, 3);
        assert!(v.iter().all(|&x| (0..1000).contains(&x)));
        let zeros = v.iter().filter(|&&x| x == 0).count();
        let rare = v.iter().filter(|&&x| x == 999).count();
        assert!(zeros > 100 * rare.max(1), "zipf head must dominate: {zeros} vs {rare}");
    }

    #[test]
    fn clustered_zipf_has_runs_and_skew() {
        let v = clustered_zipf(100_000, 40, 1.4, 96, 7);
        assert_eq!(v.len(), 100_000);
        assert!(v.iter().all(|&x| (0..40).contains(&x)));
        // Skew survives the clustering.
        let zeros = v.iter().filter(|&&x| x == 0).count();
        assert!(zeros > 20_000, "zipf head must dominate, got {zeros}");
        // Runs: the vast majority of adjacent pairs are equal.
        let equal_pairs = v.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(equal_pairs > 95_000, "expected long runs, got {equal_pairs} equal pairs");
    }

    #[test]
    fn random_walk_is_locally_smooth() {
        let v = random_walk(10_000, 0.0, 100.0, 0.5, 1_000_000, 5);
        let max_jump = v.windows(2).map(|w| (w[1] - w[0]).abs()).fold(0.0, f64::max);
        assert!(max_jump <= 0.5 + 1e-9);
        assert!(v.iter().all(|&x| (0.0..=100.0).contains(&x)));
    }

    #[test]
    fn random_walk_jumps_between_trips() {
        let v = random_walk(1000, 0.0, 1000.0, 0.1, 100, 6);
        // Within-trip steps tiny; some trip boundary should jump far.
        let boundary_jumps: Vec<f64> =
            (1..10).map(|t| (v[t * 100] - v[t * 100 - 1]).abs()).collect();
        assert!(boundary_jumps.iter().any(|&j| j > 10.0));
    }

    #[test]
    fn time_clustered_advances() {
        let v = time_clustered(10_000, 10, 100, 0.0, 9);
        // First period in [0,100), last in [900,1000).
        assert!(v[..1000].iter().all(|&x| (0..100).contains(&x)));
        assert!(v[9000..].iter().all(|&x| (900..1000).contains(&x)));
    }

    #[test]
    fn repeated_permutation_cycles() {
        let v = repeated_permutation(1000, 100, 11);
        assert_eq!(&v[..100], &v[100..200]);
        let mut head: Vec<i64> = v[..100].to_vec();
        head.sort_unstable();
        assert_eq!(head, (0..100).collect::<Vec<_>>());
        // Not sorted (overwhelmingly likely for a random permutation).
        assert!(v[..100].windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn sorted_and_two_valued() {
        assert_eq!(sorted_ints(5, 10), vec![10, 11, 12, 13, 14]);
        let v = two_valued(10_000, 500, 13);
        let mut d = v.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d, vec![0, 1]);
    }

    #[test]
    fn cast_vec_narrows() {
        let v: Vec<i16> = cast_vec(&[1i64, -5, 300]);
        assert_eq!(v, vec![1, -5, 300]);
        let v: Vec<u8> = cast_vec(&[1i64, 255, 256]); // 256 out of range -> default
        assert_eq!(v, vec![1, 255, 0]);
    }
}
