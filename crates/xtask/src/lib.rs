//! `xtask` — the workspace invariant analyzer behind `cargo xtask lint`.
//!
//! The engine's correctness rests on hand-maintained concurrency
//! invariants: epoch-swapped sealed lists, lazily-built WAH paths behind
//! `OnceLock`, a condvar-based admission queue, and raw-pointer
//! `AlignedVec` storage. Stock clippy checks none of the *discipline*
//! around them. This crate is a repo-native static-analysis pass — a
//! hand-rolled lexer (no external parser crates) plus five rule families
//! driven by `lint_policy.toml` at the workspace root:
//!
//! 1. [`rules::atomics`] — atomic-ordering justification discipline;
//! 2. [`rules::unsafe_doc`] — no undocumented `unsafe`;
//! 3. [`rules::server_panics`] — panic-free server request paths;
//! 4. [`rules::condvar`] — condvar waits inside predicate loops;
//! 5. [`rules::locks`] — lock-nesting order against a declared hierarchy,
//!    with workspace-wide cycle detection.
//!
//! Run it as `cargo xtask lint` (aliased in `.cargo/config.toml`); CI
//! runs it as a required job, and `tests/workspace_clean.rs` keeps the
//! real tree lint-clean as part of the normal test suite.

#![warn(missing_docs)]

pub mod lexer;
pub mod model;
pub mod policy;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use policy::Policy;
use rules::locks::{self, LockPolicy};
use rules::{atomics, condvar, server_panics, unsafe_doc, Violation};

/// Lints the workspace rooted at `root`, returning all violations sorted
/// by file and line. `Err` is reserved for infrastructure failures
/// (missing/unparsable policy, unreadable files).
pub fn run_lint(root: &Path) -> Result<Vec<Violation>, String> {
    let policy_path = root.join("lint_policy.toml");
    let policy_src = fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
    let policy = Policy::parse(&policy_src).map_err(|e| e.to_string())?;
    let files = scan_files(root, &policy)?;
    lint_files(root, &policy, &files)
}

/// Lints an explicit set of workspace-relative files under `root` with a
/// pre-parsed policy (the test harness entry point).
pub fn lint_files(
    root: &Path,
    policy: &Policy,
    files: &[String],
) -> Result<Vec<Violation>, String> {
    let (lock_policy, mut violations) = LockPolicy::from_policy(policy);
    let mut edges = Vec::new();
    for rel in files {
        let path = root.join(rel);
        let src = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let lexed = lexer::lex(&src);
        violations.extend(atomics::check(rel, &lexed, policy));
        violations.extend(unsafe_doc::check(rel, &lexed));
        if server_panics::applies(rel, policy) {
            violations.extend(server_panics::check(rel, &lexed));
        }
        violations.extend(condvar::check(rel, &lexed));
        let (v, e) = locks::check(rel, &lexed, &lock_policy);
        violations.extend(v);
        edges.extend(e);
    }
    violations.extend(locks::cycle_check(&edges));
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// Enumerates the `.rs` files the lint covers: `src/**` of the facade
/// crate and of every `crates/*` member, honoring `[scan] exclude`
/// prefixes from the policy. Integration tests, benches, examples and the
/// vendored stand-ins are intentionally out of scope (documented in
/// DESIGN.md).
pub fn scan_files(root: &Path, policy: &Policy) -> Result<Vec<String>, String> {
    let excludes = policy.list_of("scan", "exclude");
    let mut found = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for dir in roots {
        walk(&dir, &mut |p| {
            if p.extension().and_then(|e| e.to_str()) == Some("rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    let rel = rel.to_string_lossy().replace('\\', "/");
                    if !excludes.iter().any(|x| rel.starts_with(x.as_str())) {
                        found.push(rel);
                    }
                }
            }
        })?;
    }
    found.sort();
    Ok(found)
}

fn walk(dir: &Path, f: &mut impl FnMut(&Path)) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk(&p, f)?;
        } else {
            f(&p);
        }
    }
    Ok(())
}

/// Locates the workspace root: `$CARGO_MANIFEST_DIR/../..` when run via
/// cargo, else walks up from the current directory to the first
/// `lint_policy.toml`.
pub fn workspace_root() -> Result<PathBuf, String> {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("lint_policy.toml").is_file() {
                return Ok(root.to_path_buf());
            }
        }
    }
    let mut cur = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if cur.join("lint_policy.toml").is_file() {
            return Ok(cur);
        }
        if !cur.pop() {
            return Err("no lint_policy.toml found between here and filesystem root".into());
        }
    }
}
