//! A small hand-rolled Rust lexer: just enough token structure for the
//! lint rules, with none of a real parser's weight (and no external
//! parser crates, consistent with the workspace's vendored-offline
//! policy).
//!
//! The scanner understands the parts of Rust's lexical grammar that can
//! fool a grep: line and (nested) block comments, plain / raw / byte
//! string literals, char literals vs. lifetimes, and raw identifiers.
//! Everything else degrades to a flat stream of identifier and
//! punctuation tokens tagged with line numbers. Comments are captured
//! separately because three of the rules (SAFETY, `ordering:` and the
//! panic allowlist) key off adjacent comment text.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword or numeric literal (`[A-Za-z0-9_]+` runs).
    Ident(String),
    /// Single punctuation character (multi-char operators arrive as runs).
    Punct(char),
    /// A lifetime (`'a`) — kept distinct so apostrophes never desync the
    /// char-literal state machine.
    Lifetime(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in order.
    pub tokens: Vec<Token>,
    /// Per-line comment text: `comment_text[i]` holds every comment
    /// fragment that touches line `i + 1` (block comments register on
    /// each line they span).
    pub comment_text: Vec<String>,
    /// Lines (1-based) that contain at least one non-comment token.
    pub code_lines: Vec<bool>,
}

impl Lexed {
    fn ensure_line(&mut self, line: u32) {
        let need = line as usize;
        if self.comment_text.len() < need {
            self.comment_text.resize(need, String::new());
        }
        if self.code_lines.len() < need {
            self.code_lines.resize(need, false);
        }
    }

    fn add_comment(&mut self, line: u32, text: &str) {
        self.ensure_line(line);
        let slot = &mut self.comment_text[line as usize - 1];
        slot.push_str(text);
        slot.push(' ');
    }

    fn mark_code(&mut self, line: u32) {
        self.ensure_line(line);
        self.code_lines[line as usize - 1] = true;
    }

    /// Comment text touching 1-based `line` (empty if none).
    pub fn comment_on(&self, line: u32) -> &str {
        self.comment_text.get(line as usize - 1).map(String::as_str).unwrap_or("")
    }

    /// Whether 1-based `line` holds only comment text (no code tokens).
    pub fn is_comment_only(&self, line: u32) -> bool {
        let i = line as usize - 1;
        !self.comment_text.get(i).is_none_or(String::is_empty)
            && !self.code_lines.get(i).copied().unwrap_or(false)
    }

    /// Whether `needle` occurs in a comment *adjacent* to `line`: on the
    /// line itself (trailing comment) or in the contiguous run of
    /// comment-only lines directly above it.
    pub fn has_adjacent_comment(&self, line: u32, needle: &str) -> bool {
        if self.comment_on(line).contains(needle) {
            return true;
        }
        let mut l = line;
        while l > 1 && self.is_comment_only(l - 1) {
            l -= 1;
            if self.comment_on(l).contains(needle) {
                return true;
            }
        }
        false
    }
}

/// Lexes one file's source text.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks newlines inside any skipped region so `line` stays exact.
    macro_rules! bump_lines {
        ($range:expr) => {
            line += b[$range].iter().filter(|&&c| c == b'\n').count() as u32
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment (also doc comments).
                let end = memchr_newline(b, i).unwrap_or(b.len());
                out.add_comment(line, &src[i + 2..end]);
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment; Rust block comments nest.
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                // Register the comment on every line it spans.
                for l in start_line..=line {
                    out.add_comment(l, "");
                }
                out.add_comment(start_line, &src[start..i.min(b.len())]);
            }
            b'"' => {
                let end = scan_string(b, i);
                out.mark_code(line);
                bump_lines!(i..end);
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_literal(b, i) => {
                let end = scan_raw_or_byte(b, i);
                out.mark_code(line);
                bump_lines!(i..end);
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime.
                if let Some(end) = scan_char_literal(b, i) {
                    out.mark_code(line);
                    bump_lines!(i..end);
                    i = end;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.tokens.push(Token { kind: Tok::Lifetime(src[i + 1..j].to_string()), line });
                    out.mark_code(line);
                    i = j;
                }
            }
            c if c == b'_' || c.is_ascii_alphanumeric() => {
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                let mut word = &src[i..j];
                // Raw identifier `r#ident` arrives as `r` here when the
                // `r#"` raw-string check above declined it.
                if word == "r" && b.get(j) == Some(&b'#') {
                    let mut k = j + 1;
                    while k < b.len() && (b[k] == b'_' || b[k].is_ascii_alphanumeric()) {
                        k += 1;
                    }
                    word = &src[j + 1..k];
                    j = k;
                }
                out.tokens.push(Token { kind: Tok::Ident(word.to_string()), line });
                out.mark_code(line);
                i = j;
            }
            _ => {
                out.tokens.push(Token { kind: Tok::Punct(c as char), line });
                out.mark_code(line);
                i += 1;
            }
        }
    }
    out.ensure_line(line);
    out
}

fn memchr_newline(b: &[u8], from: usize) -> Option<usize> {
    b.iter().skip(from).position(|&c| c == b'\n').map(|p| from + p)
}

/// Scans a plain `"…"` string starting at `i`; returns the index past the
/// closing quote.
fn scan_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or byte
/// char literal rather than an identifier.
fn is_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"')) || raw_hashes(b, i + 1).is_some(),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"')) || raw_hashes(b, i + 2).is_some(),
            _ => false,
        },
        _ => false,
    }
}

/// If `b[from..]` is `#…#"`, returns the hash count.
fn raw_hashes(b: &[u8], from: usize) -> Option<usize> {
    let mut j = from;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    (j > from && b.get(j) == Some(&b'"')).then_some(j - from)
}

/// Scans a raw string / byte string / byte char starting at `i` (which
/// sits on the `r` or `b` prefix); returns the index past the literal.
fn scan_raw_or_byte(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        // Byte char literal b'x'.
        return scan_char_literal(b, j).unwrap_or(j + 1);
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let hashes = raw_hashes(b, j).unwrap_or(0);
    j += hashes; // at the opening quote
    debug_assert_eq!(b.get(j), Some(&b'"'));
    j += 1;
    while j < b.len() {
        if !raw && b[j] == b'\\' {
            j += 2;
            continue;
        }
        if b[j] == b'"' {
            let close = j + 1;
            if !raw {
                return close;
            }
            let (mut k, mut seen) = (close, 0);
            while seen < hashes && b.get(k) == Some(&b'#') {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// If `i` (at a `'`) starts a char literal, returns the index past it;
/// `None` means it is a lifetime.
fn scan_char_literal(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: skip to the closing quote.
            let mut j = i + 2;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            Some(j)
        }
        Some(_) if b.get(i + 2) == Some(&b'\'') => Some(i + 3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<String> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let l = lex("let x = \"unsafe { }\"; // unsafe in comment\n/* unwrap() */ let y = 1;");
        let ids = idents(&l);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"let".to_string()));
        assert!(l.comment_on(1).contains("unsafe in comment"));
        assert!(l.comment_on(2).contains("unwrap()"));
    }

    #[test]
    fn raw_strings_with_hashes_and_bytes() {
        let l = lex(r####"let s = r#"a " unsafe "# ; let b = b"panic!"; let c = br##"x"##;"####);
        assert!(!idents(&l).contains(&"unsafe".to_string()));
        assert!(!idents(&l).contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }\nlet nl = '\\n';");
        let lts: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Lifetime(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lts, vec!["a", "a"]);
        // The braces stayed balanced despite the 'x' literal.
        let opens = l.tokens.iter().filter(|t| t.kind == Tok::Punct('{')).count();
        let closes = l.tokens.iter().filter(|t| t.kind == Tok::Punct('}')).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("a\n/* one /* two */ still */ b\nc");
        assert_eq!(idents(&l), vec!["a", "b", "c"]);
        assert_eq!(l.tokens[1].line, 2);
        assert_eq!(l.tokens[2].line, 3);
    }

    #[test]
    fn adjacent_comment_walks_contiguous_comment_lines() {
        let src = "// SAFETY: reason one\n// continued\nunsafe { }\n\n// far away\n\nunsafe { }";
        let l = lex(src);
        assert!(l.has_adjacent_comment(3, "SAFETY:"));
        assert!(!l.has_adjacent_comment(7, "far away"), "blank line breaks adjacency");
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let l = lex("let r#type = 1;");
        assert!(idents(&l).contains(&"type".to_string()));
    }
}
