//! `lint_policy.toml` — a hand-rolled parser for the small TOML subset
//! the policy file needs (tables, string / bool / integer / string-array
//! values, quoted keys, comments). No external crates, per the
//! workspace's vendored-offline policy.

use std::collections::BTreeMap;
use std::fmt;

/// One policy value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An array of quoted strings (possibly spanning lines).
    List(Vec<String>),
}

/// The parsed policy: tables keyed by their `[header]` name, each a map
/// of key → value. Keys keep their quoted spelling verbatim (paths with
/// dots and slashes are common keys here).
#[derive(Debug, Default)]
pub struct Policy {
    tables: BTreeMap<String, BTreeMap<String, Value>>,
}

/// A parse failure with its 1-based line.
#[derive(Debug)]
pub struct PolicyError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint_policy.toml:{}: {}", self.line, self.msg)
    }
}

impl Policy {
    /// Parses policy text.
    pub fn parse(src: &str) -> Result<Policy, PolicyError> {
        let mut tables: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
        let mut current = String::new();
        tables.entry(String::new()).or_default();
        let mut lines = src.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(PolicyError { line: lineno, msg: "unterminated [table]".into() });
                };
                current = name.trim().to_string();
                tables.entry(current.clone()).or_default();
                continue;
            }
            let Some((key_part, val_part)) = split_key_value(&line) else {
                return Err(PolicyError {
                    line: lineno,
                    msg: format!("expected `key = value`, got {line:?}"),
                });
            };
            // Multiline arrays: keep consuming lines until the `]`.
            let mut val = val_part.to_string();
            while val.starts_with('[') && !array_closed(&val) {
                let Some((_, next)) = lines.next() else {
                    return Err(PolicyError { line: lineno, msg: "unterminated array".into() });
                };
                val.push(' ');
                val.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&val)
                .ok_or_else(|| PolicyError { line: lineno, msg: format!("bad value {val:?}") })?;
            tables.entry(current.clone()).or_default().insert(key_part, value);
        }
        Ok(Policy { tables })
    }

    /// All keys of `[table]`, in order.
    pub fn keys(&self, table: &str) -> Vec<&str> {
        self.tables.get(table).map(|t| t.keys().map(String::as_str).collect()).unwrap_or_default()
    }

    /// Looks up `key` in `[table]`.
    pub fn get(&self, table: &str, key: &str) -> Option<&Value> {
        self.tables.get(table)?.get(key)
    }

    /// String value of `[table] key`.
    pub fn str_of(&self, table: &str, key: &str) -> Option<&str> {
        match self.get(table, key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// String-array value of `[table] key` (empty when absent).
    pub fn list_of(&self, table: &str, key: &str) -> Vec<String> {
        match self.get(table, key) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    /// Bool value of `[table] key`, with a default.
    pub fn bool_of(&self, table: &str, key: &str, default: bool) -> bool {
        match self.get(table, key) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Splits `key = value`, unquoting the key if quoted.
fn split_key_value(line: &str) -> Option<(String, &str)> {
    let eq = if line.starts_with('"') {
        // Quoted key: find the closing quote first.
        let close = find_close_quote(line, 0)?;
        line[close..].find('=').map(|p| close + p)?
    } else {
        line.find('=')?
    };
    let key_raw = line[..eq].trim();
    let key = if key_raw.starts_with('"') && key_raw.ends_with('"') && key_raw.len() >= 2 {
        unescape(&key_raw[1..key_raw.len() - 1])
    } else {
        key_raw.to_string()
    };
    Some((key, line[eq + 1..].trim()))
}

fn find_close_quote(s: &str, open: usize) -> Option<usize> {
    let b = s.as_bytes();
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn array_closed(s: &str) -> bool {
    // Good enough: the policy file's arrays hold plain quoted strings, so
    // a `]` outside quotes closes the array.
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
        escaped = false;
    }
    false
}

fn parse_value(s: &str) -> Option<Value> {
    let s = s.trim();
    if s == "true" {
        return Some(Value::Bool(true));
    }
    if s == "false" {
        return Some(Value::Bool(false));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Some(Value::Int(i));
    }
    if s.starts_with('"') && s.ends_with('"') && s.len() >= 2 {
        return Some(Value::Str(unescape(&s[1..s.len() - 1])));
    }
    if let Some(body) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_array_items(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part.starts_with('"') && part.ends_with('"') && part.len() >= 2 {
                items.push(unescape(&part[1..part.len() - 1]));
            } else {
                return None;
            }
        }
        return Some(Value::List(items));
    }
    None
}

fn split_array_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        escaped = false;
    }
    if !cur.trim().is_empty() {
        items.push(cur);
    }
    items
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_values() {
        let p = Policy::parse(
            r#"
# top comment
[atomics]
check = ["Relaxed", "SeqCst"]  # inline comment
strict = true
limit = 42

[atomics.blanket]
"crates/engine/src/paths.rs" = "lossy cost EWMAs"

[locks]
hierarchy = [
  "catalog.tables",
  "table.open",
]
"#,
        )
        .unwrap();
        assert_eq!(p.list_of("atomics", "check"), vec!["Relaxed", "SeqCst"]);
        assert!(p.bool_of("atomics", "strict", false));
        assert_eq!(p.get("atomics", "limit"), Some(&Value::Int(42)));
        assert_eq!(
            p.str_of("atomics.blanket", "crates/engine/src/paths.rs"),
            Some("lossy cost EWMAs")
        );
        assert_eq!(p.list_of("locks", "hierarchy"), vec!["catalog.tables", "table.open"]);
        assert_eq!(p.keys("atomics.blanket"), vec!["crates/engine/src/paths.rs"]);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let p = Policy::parse("[t]\nk = \"a # b\"").unwrap();
        assert_eq!(p.str_of("t", "k"), Some("a # b"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Policy::parse("[t\n").is_err());
        assert!(Policy::parse("[t]\nkey value\n").is_err());
        assert!(Policy::parse("[t]\nk = [1, 2]\n").is_err());
    }
}
