//! Structural views over the flat token stream: brace depth, `#[cfg(test)]`
//! regions, function bodies, and enclosing-block classification. These are
//! deliberately lexical approximations — sound enough for the invariants
//! the rules check, and honest about their limits (documented per rule in
//! DESIGN.md).

use crate::lexer::{Lexed, Tok};

/// Returns `tokens[i]` as an identifier string, if it is one.
pub fn ident(lexed: &Lexed, i: usize) -> Option<&str> {
    match lexed.tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

/// Whether `tokens[i]` is the punctuation `c`.
pub fn punct(lexed: &Lexed, i: usize) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.kind), Some(Tok::Punct(_)))
}

/// Whether `tokens[i]` is exactly the punctuation character `c`.
pub fn is_punct(lexed: &Lexed, i: usize, c: char) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

/// Rust keywords that can precede `[` without it being an index
/// expression (`let [a, b] = …`, `return [x]`, `in [..]`, …).
pub fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "as" | "async"
            | "await"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Brace depth at each token index (depth *before* consuming the token,
/// so an opening `{` carries the depth outside it).
pub fn brace_depth(lexed: &Lexed) -> Vec<u32> {
    let mut depth = 0u32;
    let mut out = Vec::with_capacity(lexed.tokens.len());
    for t in &lexed.tokens {
        match t.kind {
            Tok::Punct('{') => {
                out.push(depth);
                depth += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                out.push(depth);
            }
            _ => out.push(depth),
        }
    }
    out
}

/// Token index of the `}` matching the `{` at `open` (or the end of the
/// stream if unbalanced).
pub fn matching_brace(lexed: &Lexed, open: usize) -> usize {
    let mut depth = 0i64;
    for i in open..lexed.tokens.len() {
        match lexed.tokens[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    lexed.tokens.len().saturating_sub(1)
}

/// Per-token mask: `true` where the token sits inside a `#[cfg(test)]`
/// item (canonically `mod tests { … }`). Such regions are exempt from the
/// rules that police production paths.
pub fn test_mask(lexed: &Lexed) -> Vec<bool> {
    let n = lexed.tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        // `#` `[` cfg `(` test … `]`
        if is_punct(lexed, i, '#') && is_punct(lexed, i + 1, '[') {
            let mut j = i + 2;
            let mut saw_cfg_test = false;
            let mut saw_cfg = false;
            while j < n && !is_punct(lexed, j, ']') {
                match ident(lexed, j) {
                    Some("cfg") => saw_cfg = true,
                    Some("test") if saw_cfg => saw_cfg_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg_test {
                // Skip any further attributes, then mark the next item's
                // braced body.
                let mut k = j + 1;
                while is_punct(lexed, k, '#') && is_punct(lexed, k + 1, '[') {
                    while k < n && !is_punct(lexed, k, ']') {
                        k += 1;
                    }
                    k += 1;
                }
                // Find the body: first `{` before a `;` at this level.
                let mut open = None;
                let mut m = k;
                while m < n {
                    match lexed.tokens[m].kind {
                        Tok::Punct('{') => {
                            open = Some(m);
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => m += 1,
                    }
                }
                if let Some(open) = open {
                    let close = matching_brace(lexed, open);
                    for slot in mask.iter_mut().take(close + 1).skip(i) {
                        *slot = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// One `fn` item: its name and the token range of its body (inclusive of
/// the braces).
#[derive(Debug)]
pub struct FnBody {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{`.
    pub open: usize,
    /// Token index of the body's `}`.
    pub close: usize,
}

/// Extracts every `fn` item with a braced body. Trait method declarations
/// (ending in `;`) and `fn` *types* (`fn(…)`) are skipped.
pub fn fn_bodies(lexed: &Lexed) -> Vec<FnBody> {
    let n = lexed.tokens.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if ident(lexed, i) == Some("fn") {
            let Some(name) = ident(lexed, i + 1) else {
                i += 1; // `fn(…)` pointer type
                continue;
            };
            let name = name.to_string();
            let line = lexed.tokens[i].line;
            // Find the parameter list and match its parens.
            let mut j = i + 2;
            while j < n && !is_punct(lexed, j, '(') {
                j += 1;
            }
            let mut pdepth = 0i64;
            while j < n {
                match lexed.tokens[j].kind {
                    Tok::Punct('(') => pdepth += 1,
                    Tok::Punct(')') => {
                        pdepth -= 1;
                        if pdepth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Body `{` or declaration `;`.
            let mut k = j + 1;
            let mut open = None;
            while k < n {
                match lexed.tokens[k].kind {
                    Tok::Punct('{') => {
                        open = Some(k);
                        break;
                    }
                    Tok::Punct(';') => break,
                    _ => k += 1,
                }
            }
            if let Some(open) = open {
                let close = matching_brace(lexed, open);
                out.push(FnBody { name, line, open, close });
                // Functions nest (closures, inner fns); keep scanning from
                // inside so inner `fn` items are found too.
                i = open + 1;
                continue;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// What kind of block encloses a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `while … {` or `loop {` — a predicate-loop candidate.
    Loop,
    /// A function body boundary (search stops here).
    Fn,
    /// Anything else (`if`, `match` arm, plain block, struct literal, …).
    Other,
}

/// Classifies the chain of blocks enclosing `tok`, innermost first,
/// stopping at (and including) the first function boundary.
///
/// Used by the condvar rule: a `Condvar::wait` is acceptable only if some
/// enclosing block between it and its function is a `while`/`loop`.
pub fn enclosing_blocks(lexed: &Lexed, tok: usize) -> Vec<BlockKind> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut i = tok;
    while i > 0 {
        i -= 1;
        match lexed.tokens[i].kind {
            Tok::Punct('}') => depth += 1,
            Tok::Punct('{') => {
                if depth > 0 {
                    depth -= 1;
                    continue;
                }
                let kind = classify_opener(lexed, i);
                out.push(kind);
                if kind == BlockKind::Fn {
                    return out;
                }
            }
            _ => {}
        }
    }
    out
}

/// Determines what introduced the block opening at token `open` by
/// scanning the header span back to the previous statement boundary.
fn classify_opener(lexed: &Lexed, open: usize) -> BlockKind {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut i = open;
    let mut kind = BlockKind::Other;
    while i > 0 {
        i -= 1;
        match lexed.tokens[i].kind {
            Tok::Punct(')') => paren += 1,
            Tok::Punct('(') => paren -= 1,
            Tok::Punct(']') => bracket += 1,
            Tok::Punct('[') => bracket -= 1,
            Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';') if paren == 0 && bracket == 0 => {
                break;
            }
            Tok::Ident(ref w) if paren == 0 && bracket == 0 => match w.as_str() {
                "while" | "loop" => kind = BlockKind::Loop,
                "fn" => return BlockKind::Fn,
                _ => {}
            },
            _ => {}
        }
    }
    kind
}

/// Walks back from `at` to the start of the enclosing statement (the
/// token after the previous `;`, `{` or `}` at the same bracket level).
pub fn statement_start(lexed: &Lexed, at: usize) -> usize {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut i = at;
    while i > 0 {
        i -= 1;
        match lexed.tokens[i].kind {
            Tok::Punct(')') => paren += 1,
            Tok::Punct('(') => paren -= 1,
            Tok::Punct(']') => bracket += 1,
            Tok::Punct('[') => bracket -= 1,
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if paren == 0 && bracket == 0 => {
                return i + 1;
            }
            _ => {}
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}";
        let l = lex(src);
        let mask = test_mask(&l);
        let unwrap_at =
            l.tokens.iter().position(|t| t.kind == Tok::Ident("unwrap".into())).unwrap();
        assert!(mask[unwrap_at]);
        let c_at = l.tokens.iter().rposition(|t| t.kind == Tok::Ident("c".into())).unwrap();
        assert!(!mask[c_at]);
    }

    #[test]
    fn fn_bodies_finds_nested_functions() {
        let src = "impl X { fn outer(&self) { fn inner() {} } }\ntrait T { fn decl(&self); }";
        let l = lex(src);
        let fns = fn_bodies(&l);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn enclosing_blocks_sees_predicate_loops() {
        let src = "fn f() { while x { g = cv.wait(g); } }";
        let l = lex(src);
        let wait_at = l.tokens.iter().position(|t| t.kind == Tok::Ident("wait".into())).unwrap();
        let blocks = enclosing_blocks(&l, wait_at);
        assert!(blocks.contains(&BlockKind::Loop));

        let src2 = "fn f() { if x { g = cv.wait(g); } }";
        let l2 = lex(src2);
        let wait_at2 = l2.tokens.iter().position(|t| t.kind == Tok::Ident("wait".into())).unwrap();
        let blocks2 = enclosing_blocks(&l2, wait_at2);
        assert!(!blocks2.contains(&BlockKind::Loop));
        assert_eq!(blocks2.last(), Some(&BlockKind::Fn));
    }

    #[test]
    fn while_condition_closures_do_not_confuse_classification() {
        let src = "fn f() { while xs.iter().any(|v| { v > 0 }) { g = cv.wait(g); } }";
        let l = lex(src);
        let wait_at = l.tokens.iter().position(|t| t.kind == Tok::Ident("wait".into())).unwrap();
        assert!(enclosing_blocks(&l, wait_at).contains(&BlockKind::Loop));
    }
}
