//! Rule 4: condvar hygiene.
//!
//! A `Condvar::wait` / `wait_timeout` wake is a *hint*, not a guarantee:
//! spurious wakeups and lost races against competing consumers both
//! deliver a woken thread whose predicate is false. Every bare
//! `.wait(…)` / `.wait_timeout(…)` call must therefore sit inside a
//! `while`/`loop` that re-checks the predicate before acting
//! (`admission.rs`'s drain loop is the motivating site). The
//! `*_while` variants carry their predicate by construction and pass.
//!
//! Detection is lexical: the chain of blocks enclosing the call, up to
//! the nearest `fn` boundary, must contain a `while` or `loop` block.
//! This conservatively accepts a wait inside an `if` nested in a loop —
//! the re-check may be outside the `if` — and that is fine: the rule's
//! target is the wait at straight-line function scope whose author
//! assumed one wake == one item.

use crate::lexer::Lexed;
use crate::model::{enclosing_blocks, ident, is_punct, BlockKind};
use crate::rules::Violation;

/// Runs the rule over one file.
pub fn check(file: &str, lexed: &Lexed) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..lexed.tokens.len() {
        let Some(w) = ident(lexed, i) else { continue };
        if w != "wait" && w != "wait_timeout" {
            continue;
        }
        // Method call shape: `.wait(` — not `wait_timeout_while` (distinct
        // token) and not a free function.
        if i == 0 || !is_punct(lexed, i - 1, '.') || !is_punct(lexed, i + 1, '(') {
            continue;
        }
        // Zero-argument waits are not condvar waits: `Condvar::wait` always
        // takes the guard, while `Barrier::wait()` / `Child::wait()` take
        // nothing and have no predicate to loop on.
        if is_punct(lexed, i + 2, ')') {
            continue;
        }
        let blocks = enclosing_blocks(lexed, i);
        if blocks.contains(&BlockKind::Loop) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: lexed.tokens[i].line,
            rule: "condvar",
            msg: format!(
                ".{w}() outside a predicate loop: wrap it in `while !predicate {{ … }}` \
                 (spurious wakeups and drain races deliver false wakes) or use the \
                 `_while` variant"
            ),
        });
    }
    out
}
