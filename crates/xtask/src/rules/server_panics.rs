//! Rule 3: panic-free server paths.
//!
//! Inside the crates listed in `[server_panics] paths` (the request-serving
//! front end), non-test code must not contain `unwrap()`, `expect(…)`,
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!`, or ad-hoc slice
//! indexing `x[…]`. A malformed or hostile client must get an `ERR` line
//! (or a clean connection teardown) — never kill a worker or reader
//! thread.
//!
//! Escape hatch: a site whose panic-freedom argument genuinely cannot be
//! expressed structurally may carry an adjacent `// panic-ok:` comment
//! stating why the panic is unreachable; the fixture suite exercises the
//! mechanism. (The real server currently needs none.)
//!
//! `assert!`/`debug_assert!` are deliberately out of scope: they guard
//! constructor misuse on the operator's side of the trust boundary, not
//! the client's. Slice indexing detection is lexical — `ident[…]`,
//! `)[…]`, `][…]` — which also means `split_at`/`get`/iterator rewrites
//! are the sanctioned alternatives, making bounds explicit where the
//! linter can't see them.

use crate::lexer::{Lexed, Tok};
use crate::model::{is_keyword, test_mask};
use crate::policy::Policy;
use crate::rules::Violation;

/// The allowlist comment marker.
pub const MARKER: &str = "panic-ok:";

/// Whether this rule applies to `file` at all, per policy.
pub fn applies(file: &str, policy: &Policy) -> bool {
    let mut paths = policy.list_of("server_panics", "paths");
    if paths.is_empty() {
        paths = vec!["crates/server/src".to_string()];
    }
    paths.iter().any(|p| file.starts_with(p.as_str()))
}

/// Runs the rule over one file (callers gate on [`applies`], or pass
/// `force` fixtures straight in).
pub fn check(file: &str, lexed: &Lexed) -> Vec<Violation> {
    let mask = test_mask(lexed);
    let mut out = Vec::new();
    let mut flag = |i: usize, what: &str| {
        let line = lexed.tokens[i].line;
        if lexed.has_adjacent_comment(line, MARKER) {
            return;
        }
        out.push(Violation {
            file: file.to_string(),
            line,
            rule: "server-panic",
            msg: format!(
                "{what} on a server path: a malformed client must get ERR or a clean \
                 teardown, never a panicked thread (rewrite, or justify with `// {MARKER}`)"
            ),
        });
    };
    for i in 0..lexed.tokens.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match &lexed.tokens[i].kind {
            // Method call: `.unwrap()` / `.expect(…)`.
            Tok::Ident(w)
                if (w == "unwrap" || w == "expect")
                    && i > 0
                    && matches!(lexed.tokens[i - 1].kind, Tok::Punct('.'))
                    && matches!(
                        lexed.tokens.get(i + 1).map(|t| &t.kind),
                        Some(Tok::Punct('('))
                    ) =>
            {
                flag(i, &format!(".{w}()"));
            }
            Tok::Ident(w)
                if matches!(w.as_str(), "panic" | "unreachable" | "todo" | "unimplemented") =>
            {
                if matches!(lexed.tokens.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('!'))) {
                    flag(i, &format!("{w}!"));
                }
            }
            Tok::Punct('[') if i > 0 => {
                // An index expression follows a value: `xs[i]`, `f()[i]`,
                // `xs[0][1]`. Array literals/types/patterns/attributes all
                // follow punctuation or a keyword instead.
                let indexing = match &lexed.tokens[i - 1].kind {
                    Tok::Ident(prev) => !is_keyword(prev),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if indexing {
                    flag(i, "slice indexing");
                }
            }
            _ => {}
        }
    }
    out
}
