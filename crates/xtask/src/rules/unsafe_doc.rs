//! Rule 2: no undocumented `unsafe`.
//!
//! Every `unsafe` block, `unsafe impl`, `unsafe trait` and `unsafe fn`
//! must carry an adjacent `// SAFETY:` comment (same line or the
//! contiguous comment block directly above); `unsafe fn` may instead
//! document its contract with a `# Safety` doc section. This rule applies
//! everywhere, including test code — an unexplained `unsafe` is equally
//! suspect in a test.
//!
//! The in-repo rule intentionally duplicates what
//! `clippy::undocumented_unsafe_blocks` enforces in CI: clippy skips
//! macro-expanded blocks and needs a full compilation, while this pass is
//! instant, runs pre-build, and sees macro *definitions* too.

use crate::lexer::Lexed;
use crate::model::ident;
use crate::rules::Violation;

/// The comment marker a safety argument must contain.
pub const MARKER: &str = "SAFETY:";

/// Runs the rule over one file.
pub fn check(file: &str, lexed: &Lexed) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..lexed.tokens.len() {
        if ident(lexed, i) != Some("unsafe") {
            continue;
        }
        let next = ident(lexed, i + 1);
        let site = match next {
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            Some("fn") => "unsafe fn",
            _ => "unsafe block",
        };
        let line = lexed.tokens[i].line;
        if lexed.has_adjacent_comment(line, MARKER) {
            continue;
        }
        if site == "unsafe fn" && lexed.has_adjacent_comment(line, "# Safety") {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line,
            rule: "unsafe",
            msg: format!("{site} without an adjacent `// {MARKER}` comment"),
        });
    }
    out
}
