//! The five invariant rule families. Each rule is a pure function from a
//! lexed file (plus policy) to violations, so the fixture tests can drive
//! them directly.

pub mod atomics;
pub mod condvar;
pub mod locks;
pub mod server_panics;
pub mod unsafe_doc;

use std::fmt;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule family identifier (`atomics`, `unsafe`, `server-panic`,
    /// `condvar`, `locks`).
    pub rule: &'static str,
    /// Human-readable description with the expected remedy.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}
