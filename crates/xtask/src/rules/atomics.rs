//! Rule 1: atomic-ordering discipline.
//!
//! Every `Ordering::Relaxed` / `Ordering::SeqCst` site (the two extremes,
//! and the two easiest to cargo-cult) must carry an adjacent
//! `// ordering:` comment justifying the choice — same line or the
//! contiguous comment block above. `Acquire`/`Release`/`AcqRel` sites are
//! exempt by default: a paired ordering is already a statement of intent.
//!
//! Per-file policy lives in `lint_policy.toml`:
//!
//! * `[atomics] check = ["Relaxed", "SeqCst"]` — which orderings demand a
//!   justification.
//! * `[atomics.blanket] "<path>" = "<why>"` — files whose **Relaxed**
//!   sites are all of one shape (typically monotonic statistics counters
//!   read without synchronization) and are justified once, in the policy
//!   file, instead of at each of dozens of sites. Blanket entries never
//!   cover `SeqCst` — an extreme that strong always warrants a per-site
//!   sentence.
//!
//! `#[cfg(test)]` regions are exempt: a test asserting a counter value
//! carries no ordering obligation the production site doesn't already
//! document.

use crate::lexer::Lexed;
use crate::model::{ident, is_punct, test_mask};
use crate::policy::Policy;
use crate::rules::Violation;

/// The comment marker a justification must contain.
pub const MARKER: &str = "ordering:";

/// Runs the rule over one file.
pub fn check(file: &str, lexed: &Lexed, policy: &Policy) -> Vec<Violation> {
    let mut checked = policy.list_of("atomics", "check");
    if checked.is_empty() {
        checked = vec!["Relaxed".to_string(), "SeqCst".to_string()];
    }
    let blanket = policy.str_of("atomics.blanket", file);
    let mask = test_mask(lexed);
    let mut out = Vec::new();
    for i in 0..lexed.tokens.len() {
        if ident(lexed, i) != Some("Ordering") {
            continue;
        }
        if !(is_punct(lexed, i + 1, ':') && is_punct(lexed, i + 2, ':')) {
            continue;
        }
        let Some(ord) = ident(lexed, i + 3) else { continue };
        if !checked.iter().any(|c| c == ord) {
            continue;
        }
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if ord == "Relaxed" && blanket.is_some() {
            continue;
        }
        let line = lexed.tokens[i].line;
        if lexed.has_adjacent_comment(line, MARKER) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line,
            rule: "atomics",
            msg: format!(
                "Ordering::{ord} without an adjacent `// {MARKER}` justification \
                 (or a [atomics.blanket] entry for this file in lint_policy.toml)"
            ),
        });
    }
    out
}
