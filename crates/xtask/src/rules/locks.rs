//! Rule 5: lock-nesting order.
//!
//! Deadlock freedom by construction: every lock the workspace nests is
//! assigned a *class* (policy `[locks.classes]`, receiver field name →
//! class), and the policy declares one total acquisition order over the
//! classes (`[locks] hierarchy`, outermost first). Within one function,
//! every acquisition made while an earlier guard is still live must move
//! strictly *forward* in that order; the union of observed edges across
//! the workspace is also checked for cycles, so two functions nesting the
//! same pair in opposite orders are caught even when each declares its
//! own order consistent.
//!
//! The model is lexical and deliberately conservative:
//!
//! * an acquisition is a no-argument `.lock()` / `.read()` / `.write()`
//!   call (io's `read(&mut buf)` / `write(buf)` take arguments and never
//!   match);
//! * a `let`-bound guard lives to the end of its enclosing block, or to
//!   an explicit `drop(guard)`;
//! * a temporary guard (no `let`) lives to the next `;` at its own brace
//!   depth — which correctly spans a `for` head's guard across the loop
//!   body;
//! * cross-function nesting (a method called while a guard is held) is
//!   out of lexical reach; the declared hierarchy plus the cycle check
//!   over the whole workspace is the mitigation.
//!
//! Over-approximation errs toward flagging: a forward-consistent total
//! order makes false positives harmless (they are, by definition, already
//! in order).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Tok};
use crate::model::{brace_depth, fn_bodies, ident, is_punct, statement_start, test_mask};
use crate::policy::Policy;
use crate::rules::Violation;

/// The lock policy: receiver classes and the declared total order.
#[derive(Debug, Default)]
pub struct LockPolicy {
    /// Receiver field name → lock class.
    pub classes: BTreeMap<String, String>,
    /// Lock classes, outermost first.
    pub hierarchy: Vec<String>,
    /// Whether a nested acquisition through an *unclassified* receiver is
    /// itself a violation (keeps the class map total over nesting sites).
    pub require_known: bool,
}

impl LockPolicy {
    /// Loads `[locks]` / `[locks.classes]`, validating that every class
    /// maps into the hierarchy.
    pub fn from_policy(policy: &Policy) -> (LockPolicy, Vec<Violation>) {
        let hierarchy = policy.list_of("locks", "hierarchy");
        let mut classes = BTreeMap::new();
        let mut errs = Vec::new();
        for key in policy.keys("locks.classes") {
            if let Some(class) = policy.str_of("locks.classes", key) {
                if !hierarchy.iter().any(|h| h == class) {
                    errs.push(Violation {
                        file: "lint_policy.toml".to_string(),
                        line: 0,
                        rule: "locks",
                        msg: format!(
                            "[locks.classes] maps {key:?} to {class:?}, which is not in \
                             [locks] hierarchy"
                        ),
                    });
                }
                classes.insert(key.to_string(), class.to_string());
            }
        }
        let require_known = policy.bool_of("locks", "require_known", true);
        (LockPolicy { classes, hierarchy, require_known }, errs)
    }

    fn pos(&self, class: &str) -> Option<usize> {
        self.hierarchy.iter().position(|h| h == class)
    }
}

/// One observed nesting edge (`from` held while `to` was acquired).
#[derive(Debug, Clone)]
pub struct Edge {
    /// Class held.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
}

#[derive(Debug)]
struct Acq {
    site: usize,
    line: u32,
    receiver: Option<String>,
    live_end: usize,
}

/// Runs the per-function pass over one file, returning violations plus
/// the nesting edges observed (for the workspace-wide cycle check).
pub fn check(file: &str, lexed: &Lexed, lp: &LockPolicy) -> (Vec<Violation>, Vec<Edge>) {
    let mask = test_mask(lexed);
    let depth = brace_depth(lexed);
    let mut out = Vec::new();
    let mut edges = Vec::new();
    for f in fn_bodies(lexed) {
        if mask.get(f.open).copied().unwrap_or(false) {
            continue; // test-only function
        }
        let acqs = acquisitions(lexed, &depth, f.open, f.close);
        for (i, a) in acqs.iter().enumerate() {
            for b in acqs.iter().skip(i + 1) {
                if b.site >= a.live_end {
                    break;
                }
                nested_pair(file, lp, a, b, &mut out, &mut edges);
            }
        }
    }
    (out, edges)
}

/// Collects lock acquisitions within one function body, with liveness.
fn acquisitions(lexed: &Lexed, depth: &[u32], open: usize, close: usize) -> Vec<Acq> {
    let mut out = Vec::new();
    for i in open + 1..close {
        let Some(w) = ident(lexed, i) else { continue };
        if !matches!(w, "lock" | "read" | "write") {
            continue;
        }
        // `.lock()` with an empty argument list.
        if i == 0
            || !is_punct(lexed, i - 1, '.')
            || !is_punct(lexed, i + 1, '(')
            || !is_punct(lexed, i + 2, ')')
        {
            continue;
        }
        let receiver = match i.checked_sub(2).map(|r| &lexed.tokens[r].kind) {
            Some(Tok::Ident(s)) => Some(s.clone()),
            _ => None,
        };
        let d = depth[i];
        let stmt = statement_start(lexed, i);
        let binding = let_binding(lexed, stmt, i);
        let live_end = match &binding {
            Some(name) => {
                // To end of enclosing block, or an explicit drop(name).
                let mut end = close;
                for (k, dk) in depth.iter().enumerate().take(close + 1).skip(i + 1) {
                    if *dk < d {
                        end = k;
                        break;
                    }
                }
                drop_site(lexed, i + 1, end, name).unwrap_or(end)
            }
            None => {
                // Temporary: next `;` at this depth or shallower.
                (i + 1..close)
                    .find(|&k| is_punct(lexed, k, ';') && depth.get(k).is_some_and(|dk| *dk <= d))
                    .unwrap_or(close)
            }
        };
        out.push(Acq { site: i, line: lexed.tokens[i].line, receiver, live_end });
    }
    out
}

/// The `let` binding name of the statement spanning `[stmt, at)`, if any.
fn let_binding(lexed: &Lexed, stmt: usize, at: usize) -> Option<String> {
    let mut i = stmt;
    while i < at {
        if ident(lexed, i) == Some("let") {
            let mut j = i + 1;
            while ident(lexed, j) == Some("mut") {
                j += 1;
            }
            return ident(lexed, j).map(str::to_string);
        }
        i += 1;
    }
    None
}

/// Finds `drop ( name )` in `[from, to)`.
fn drop_site(lexed: &Lexed, from: usize, to: usize, name: &str) -> Option<usize> {
    (from..to).find(|&k| {
        ident(lexed, k) == Some("drop")
            && is_punct(lexed, k + 1, '(')
            && ident(lexed, k + 2) == Some(name)
            && is_punct(lexed, k + 3, ')')
    })
}

fn nested_pair(
    file: &str,
    lp: &LockPolicy,
    a: &Acq,
    b: &Acq,
    out: &mut Vec<Violation>,
    edges: &mut Vec<Edge>,
) {
    let class_a = a.receiver.as_ref().and_then(|r| lp.classes.get(r));
    let class_b = b.receiver.as_ref().and_then(|r| lp.classes.get(r));
    match (class_a, class_b) {
        (Some(ca), Some(cb)) => {
            if ca == cb {
                out.push(Violation {
                    file: file.to_string(),
                    line: b.line,
                    rule: "locks",
                    msg: format!(
                        "re-entrant acquisition of lock class {ca:?} (first taken on line {}) — \
                         self-deadlock risk",
                        a.line
                    ),
                });
                return;
            }
            if let (Some(pa), Some(pb)) = (lp.pos(ca), lp.pos(cb)) {
                if pa > pb {
                    out.push(Violation {
                        file: file.to_string(),
                        line: b.line,
                        rule: "locks",
                        msg: format!(
                            "lock order inversion: {cb:?} acquired while {ca:?} (line {}) is \
                             held, but the declared hierarchy orders {cb:?} before {ca:?}",
                            a.line
                        ),
                    });
                }
            }
            edges.push(Edge {
                from: ca.clone(),
                to: cb.clone(),
                file: file.to_string(),
                line: b.line,
            });
        }
        _ if lp.require_known => {
            let unknown = if class_a.is_none() { a } else { b };
            let recv = unknown.receiver.clone().unwrap_or_else(|| "<expr>".to_string());
            out.push(Violation {
                file: file.to_string(),
                line: unknown.line,
                rule: "locks",
                msg: format!(
                    "nested lock acquisition through unclassified receiver {recv:?} \
                     (line {} vs line {}): add it to [locks.classes] in lint_policy.toml",
                    a.line, b.line
                ),
            });
        }
        _ => {}
    }
}

/// Workspace-wide cycle detection over the union of observed edges.
pub fn cycle_check(edges: &[Edge]) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut provenance: BTreeMap<(&str, &str), (&str, u32)> = BTreeMap::new();
    for e in edges {
        if e.from != e.to {
            adj.entry(&e.from).or_default().insert(&e.to);
            provenance.entry((&e.from, &e.to)).or_insert((&e.file, e.line));
        }
    }
    // Iterative DFS with colors; report the first cycle found.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &root in &nodes {
        if color.get(root).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> =
            vec![(root, adj.get(root).map(|s| s.iter().copied().collect()).unwrap_or_default())];
        color.insert(root, 1);
        let mut path = vec![root];
        while let Some((node, succs)) = stack.last_mut() {
            if let Some(next) = succs.pop() {
                match color.get(next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        path.push(next);
                        let nsuccs =
                            adj.get(next).map(|s| s.iter().copied().collect()).unwrap_or_default();
                        stack.push((next, nsuccs));
                    }
                    1 => {
                        // Grey successor: cycle. Reconstruct it from path.
                        let start = path.iter().position(|n| *n == next).unwrap_or(0);
                        let mut cyc: Vec<&str> = path[start..].to_vec();
                        cyc.push(next);
                        let (file, line) = provenance
                            .get(&(*node, next))
                            .copied()
                            .unwrap_or(("lint_policy.toml", 0));
                        return vec![Violation {
                            file: file.to_string(),
                            line,
                            rule: "locks",
                            msg: format!(
                                "cyclic lock acquisition order across the workspace: {}",
                                cyc.join(" -> ")
                            ),
                        }];
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                path.pop();
                stack.pop();
            }
        }
    }
    Vec::new()
}
