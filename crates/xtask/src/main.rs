//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the invariant analyzer (see the crate docs / DESIGN.md).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "lint".to_string());
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument {other:?}");
                return usage();
            }
        }
    }
    match cmd.as_str() {
        "lint" => lint(root),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown subcommand {other:?}");
            usage()
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--root <workspace-root>]");
    eprintln!();
    eprintln!("Checks the workspace against the invariant policy in lint_policy.toml:");
    eprintln!("  atomics       Ordering::Relaxed/SeqCst sites need `// ordering:` rationales");
    eprintln!("  unsafe        unsafe blocks/impls/fns need `// SAFETY:` comments");
    eprintln!("  server-panic  no unwrap/expect/panic!/indexing on server request paths");
    eprintln!("  condvar       Condvar waits must sit in predicate loops");
    eprintln!("  locks         nested lock acquisitions must follow the declared hierarchy");
    ExitCode::from(2)
}

fn lint(root: Option<PathBuf>) -> ExitCode {
    let root = match root.map(Ok).unwrap_or_else(xtask::workspace_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    match xtask::run_lint(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}
