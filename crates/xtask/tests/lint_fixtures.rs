//! The analyzer against a corpus of known-bad and known-good snippets:
//! every rule family must flag each planted violation in the `bad_*`
//! fixtures and stay silent on the `good_*` ones, and the policy's
//! allowlist mechanisms (blanket entries, `panic-ok:`, scan excludes)
//! must work as documented.

use std::path::PathBuf;

use xtask::policy::Policy;
use xtask::rules::Violation;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The policy the fixtures are written against (mirrors the real
/// `lint_policy.toml` shapes, scaled down to the fixture lock classes).
const FIXTURE_POLICY: &str = r#"
[atomics]
check = ["Relaxed", "SeqCst"]

[server_panics]
paths = ["bad_server_panic.rs", "good_server_panic.rs"]

[locks]
require_known = true
hierarchy = ["outer", "inner"]

[locks.classes]
a = "outer"
b = "inner"
"#;

fn lint(files: &[&str], policy_text: &str) -> Vec<Violation> {
    let policy = Policy::parse(policy_text).expect("fixture policy parses");
    let files: Vec<String> = files.iter().map(|f| f.to_string()).collect();
    xtask::lint_files(&fixtures_root(), &policy, &files).expect("fixtures lint")
}

fn rules_hit(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn bad_atomics_flags_both_extremes_and_exempts_tests() {
    let v = lint(&["bad_atomics.rs"], FIXTURE_POLICY);
    assert_eq!(rules_hit(&v), ["atomics"]);
    assert_eq!(v.len(), 2, "one Relaxed + one SeqCst, test mod exempt: {v:?}");
    assert!(v.iter().any(|x| x.msg.contains("Relaxed")), "{v:?}");
    assert!(v.iter().any(|x| x.msg.contains("SeqCst")), "{v:?}");
}

#[test]
fn blanket_entry_covers_relaxed_but_never_seqcst() {
    let blanket =
        format!("{FIXTURE_POLICY}\n[atomics.blanket]\n\"bad_atomics.rs\" = \"fixture counters\"\n");
    let v = lint(&["bad_atomics.rs"], &blanket);
    assert_eq!(v.len(), 1, "the blanket absorbs Relaxed only: {v:?}");
    assert!(v.iter().all(|x| x.msg.contains("SeqCst")), "{v:?}");
}

#[test]
fn bad_unsafe_flags_block_impl_and_fn() {
    let v = lint(&["bad_unsafe.rs"], FIXTURE_POLICY);
    assert_eq!(rules_hit(&v), ["unsafe"]);
    let msgs: Vec<&str> = v.iter().map(|x| x.msg.as_str()).collect();
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(msgs.iter().any(|m| m.contains("unsafe block")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unsafe impl")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unsafe fn")), "{msgs:?}");
}

#[test]
fn bad_server_panic_flags_every_banned_shape() {
    let v = lint(&["bad_server_panic.rs"], FIXTURE_POLICY);
    assert_eq!(rules_hit(&v), ["server-panic"]);
    let msgs: Vec<&str> = v.iter().map(|x| x.msg.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains(".unwrap()")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains(".expect()")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("panic")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("indexing")), "{msgs:?}");
    // parts[0], unwrap, expect + parts[1], panic! — and nothing from the
    // test module.
    assert_eq!(v.len(), 5, "{v:?}");
}

#[test]
fn server_panic_rule_is_scoped_to_policy_paths() {
    // The same shapes outside [server_panics] paths are not this rule's
    // business (bad_unsafe.rs has none; bad_condvar.rs has ok()? chains).
    let v = lint(&["bad_condvar.rs"], FIXTURE_POLICY);
    assert!(
        v.iter().all(|x| x.rule != "server-panic"),
        "paths outside [server_panics] must not be checked: {v:?}"
    );
}

#[test]
fn bad_condvar_flags_wait_and_wait_timeout_outside_loops() {
    let v = lint(&["bad_condvar.rs"], FIXTURE_POLICY);
    assert_eq!(rules_hit(&v), ["condvar"]);
    assert_eq!(v.len(), 2, "one `if`-guarded wait, one straight-line wait_timeout: {v:?}");
}

#[test]
fn bad_locks_flags_inversion_reentrancy_unknown_receiver_and_cycle() {
    let v = lint(&["bad_locks.rs"], FIXTURE_POLICY);
    assert_eq!(rules_hit(&v), ["locks"]);
    let msgs: Vec<&str> = v.iter().map(|x| x.msg.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("inversion")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("re-entrant")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unclassified receiver \"mystery\"")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("cyclic lock acquisition")),
        "ordered() and inverted() together close outer -> inner -> outer: {msgs:?}"
    );
}

#[test]
fn good_fixtures_lint_clean() {
    for good in [
        "good_atomics.rs",
        "good_unsafe.rs",
        "good_server_panic.rs",
        "good_condvar.rs",
        "good_locks.rs",
    ] {
        let v = lint(&[good], FIXTURE_POLICY);
        assert!(v.is_empty(), "{good} must lint clean, got {v:?}");
    }
}

#[test]
fn scan_excludes_drop_matching_prefixes() {
    let policy = Policy::parse("[scan]\nexclude = [\"crates/\"]\n").expect("parses");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = xtask::scan_files(&root, &policy).expect("scan");
    assert!(
        files.iter().all(|f| !f.starts_with("crates/")),
        "excluded prefix still present: {files:?}"
    );
    assert!(
        files.iter().any(|f| f.starts_with("src/")),
        "the facade crate must still be scanned: {files:?}"
    );
}
