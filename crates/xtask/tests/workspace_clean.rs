//! The real workspace must lint clean: this is the same check CI runs as
//! `cargo xtask lint`, wired into the normal test suite so a violation
//! fails `cargo test` even before CI.

#[test]
fn the_workspace_lints_clean() {
    let root = xtask::workspace_root().expect("workspace root");
    let violations = xtask::run_lint(&root).expect("lint infrastructure");
    assert!(
        violations.is_empty(),
        "`cargo xtask lint` must pass on the workspace; fix these or amend \
         lint_policy.toml with a justification:\n{}",
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}
