//! Fixture: the compliant rewrites of rule 3's banned shapes, plus the
//! `panic-ok:` escape hatch.

use std::collections::HashMap;

pub fn handle(line: &str, routes: &HashMap<String, u32>) -> Result<u32, String> {
    let mut parts = line.split(' ');
    let verb = parts.next().ok_or("empty request")?;
    let route = routes.get(verb).ok_or("unknown verb")?;
    let n: u32 = parts
        .next()
        .ok_or("missing argument")?
        .parse()
        .map_err(|e| format!("bad argument: {e}"))?;
    if n > 1000 {
        return Err("argument too large".to_string());
    }
    Ok(route + n)
}

pub fn checked(first_two: &[u8]) -> u8 {
    if first_two.len() < 2 {
        return 0;
    }
    // panic-ok: length checked on the line above; kept as the justified
    // escape-hatch example for the fixture suite.
    first_two[1]
}
