//! Fixture: every checked Ordering extreme used without a rationale.
//! Not compiled — consumed by the lexical analyzer in lint_fixtures.rs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static STOP: AtomicBool = AtomicBool::new(false);

pub fn bump() {
    HITS.fetch_add(1, Ordering::Relaxed); // line 10: Relaxed, no rationale
}

pub fn should_stop() -> bool {
    STOP.load(Ordering::SeqCst) // line 14: SeqCst, no rationale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        HITS.store(0, Ordering::Relaxed); // exempt: inside #[cfg(test)]
    }
}
