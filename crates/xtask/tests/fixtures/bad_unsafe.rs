//! Fixture: undocumented unsafe in each syntactic position.

pub fn first_byte(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() } // line 4: unsafe block, no SAFETY comment
}

pub struct Raw(*mut u8);

unsafe impl Send for Raw {} // line 9: unsafe impl, no SAFETY comment

pub unsafe fn poke(p: *mut u8) {
    // line 11: unsafe fn without a `# Safety` doc section
    *p = 0;
}
