//! Fixture: condvar waits whose wake is treated as a guarantee.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

pub fn take_once(m: &Mutex<Vec<u32>>, cv: &Condvar) -> Option<u32> {
    let mut g = m.lock().ok()?;
    if g.is_empty() {
        g = cv.wait(g).ok()?; // wait under `if`: one wake assumed == one item
    }
    g.pop()
}

pub fn take_straightline(m: &Mutex<Vec<u32>>, cv: &Condvar) -> Option<u32> {
    let g = m.lock().ok()?;
    let (mut g, _timeout) = cv.wait_timeout(g, Duration::from_millis(5)).ok()?;
    g.pop()
}
