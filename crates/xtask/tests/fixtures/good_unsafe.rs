//! Fixture: documented unsafe in each syntactic position.

pub fn first_byte(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees the pointer reads into the
    // slice's first element.
    unsafe { *v.as_ptr() }
}

pub struct Raw(*mut u8);

// SAFETY: Raw's pointer is only dereferenced behind &mut self, so moving
// the handle across threads is sound.
unsafe impl Send for Raw {}

/// Writes a zero through `p`.
///
/// # Safety
///
/// `p` must be valid for writes and properly aligned.
pub unsafe fn poke(p: *mut u8) {
    *p = 0;
}
