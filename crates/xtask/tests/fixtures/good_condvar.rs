//! Fixture: compliant condvar shapes — predicate loops, the `_while`
//! variants, and non-condvar zero-argument waits.

use std::sync::{Barrier, Condvar, Mutex};
use std::time::Duration;

pub fn take(m: &Mutex<Vec<u32>>, cv: &Condvar) -> Option<u32> {
    let mut g = m.lock().ok()?;
    while g.is_empty() {
        g = cv.wait(g).ok()?; // inside a predicate loop: re-checked
    }
    g.pop()
}

pub fn take_with_builtin_predicate(m: &Mutex<Vec<u32>>, cv: &Condvar) -> Option<u32> {
    let g = m.lock().ok()?;
    let (mut g, _timeout) =
        cv.wait_timeout_while(g, Duration::from_millis(5), |v| v.is_empty()).ok()?;
    g.pop()
}

pub fn rendezvous(b: &Barrier) {
    b.wait(); // zero-argument wait: a barrier, not a condvar
}
