//! Fixture: compliant lock usage — forward-order nesting, sequential
//! (non-overlapping) acquisitions, an explicit `drop` ending a guard's
//! life before the next acquisition, and argument-taking `read`/`write`
//! calls that are I/O, not locks.

use std::io::{Read, Write};
use std::sync::Mutex;

pub struct S {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn forward(s: &S) -> u32 {
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gb
}

pub fn sequential(s: &S) -> u32 {
    let x = {
        let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
        *gb
    };
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    x + *ga
}

pub fn dropped_before(s: &S) -> u32 {
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    let x = *gb;
    drop(gb);
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    x + *ga
}

pub fn io_not_locks(mut sock: impl Read + Write, buf: &mut [u8]) -> std::io::Result<usize> {
    let n = sock.read(buf)?;
    sock.write(buf)
}
