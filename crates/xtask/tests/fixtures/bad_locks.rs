//! Fixture: lock-nesting violations — an order inversion (which also
//! closes a workspace-wide cycle against `ordered`), a re-entrant
//! acquisition, and a nested acquisition through an unclassified receiver.

use std::sync::Mutex;

pub struct S {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
    pub mystery: Mutex<u32>,
}

pub fn ordered(s: &S) -> u32 {
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gb
}

pub fn inverted(s: &S) -> u32 {
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gb
}

pub fn reentrant(s: &S) -> u32 {
    let g1 = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let g2 = s.a.lock().unwrap_or_else(|e| e.into_inner());
    *g1 + *g2
}

pub fn unclassified(s: &S) -> u32 {
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let gm = s.mystery.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gm
}
