//! Fixture: every panic shape rule 3 bans on server paths.

use std::collections::HashMap;

pub fn handle(line: &str, routes: &HashMap<String, u32>) -> u32 {
    let parts: Vec<&str> = line.split(' ').collect();
    let verb = parts[0]; // indexing a client-controlled split
    let route = routes.get(verb).unwrap(); // unwrap on lookup
    let n: u32 = parts[1].parse().expect("numeric argument"); // expect + indexing
    if n > 1000 {
        panic!("argument too large"); // panic! on a request path
    }
    route + n
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], "1".parse::<i32>().unwrap()); // exempt: test code
    }
}
