//! Fixture: the compliant shapes of rule 1 — adjacent rationales on the
//! checked extremes, and a paired ordering that is exempt by default.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static READY: AtomicBool = AtomicBool::new(false);

pub fn bump() {
    // ordering: Relaxed — monotonic counter, readers tolerate staleness.
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn snapshot() -> u64 {
    HITS.load(Ordering::Relaxed) // ordering: same counter, same argument
}

pub fn publish() {
    READY.store(true, Ordering::Release); // paired orderings are exempt
}

pub fn observe() -> bool {
    READY.load(Ordering::Acquire)
}
