//! Bounded, per-client-fair admission queue.
//!
//! Connections *offer* requests; the dispatcher *drains* them in batches.
//! The queue enforces two policies the raw socket buffers cannot:
//!
//! * **Shed on overload** — the total queued count is bounded by
//!   [`ServiceConfig::queue_depth`](imprints_engine::ServiceConfig). An
//!   offer past the bound fails immediately and the connection replies
//!   `BUSY`; overload degrades into explicit rejections, never into hangs
//!   or unbounded memory growth.
//! * **Per-client fairness** — each client gets its own FIFO and the
//!   drain round-robins across clients, so one connection pipelining
//!   thousands of requests cannot starve a neighbor that sent one.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// A bounded multi-producer queue with round-robin drain. `T` is the
/// queued request type; clients are identified by an opaque `u64`.
pub struct Admission<T> {
    depth: usize,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
}

struct Inner<T> {
    /// Per-client FIFOs; a client is present iff its FIFO is non-empty.
    queues: HashMap<u64, VecDeque<T>>,
    /// Round-robin order over the clients present in `queues`.
    rr: VecDeque<u64>,
    /// Total queued items across all clients.
    len: usize,
    closed: bool,
}

impl<T> Admission<T> {
    /// Locks the queue state, recovering from poison: the guarded data is
    /// a plain bookkeeping structure whose invariants are restored by
    /// [`pop_round_robin`](Self::pop_round_robin) defensively, so a panic
    /// elsewhere must not take the whole dispatch plane down with it.
    fn state(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty queue bounded at `depth` total queued items.
    pub fn new(depth: usize) -> Admission<T> {
        assert!(depth > 0, "queue depth must be positive");
        Admission {
            depth,
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                rr: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Offers one item on behalf of `client`. Returns `false` — and counts
    /// a shed — when the queue is full or closed; the caller must reply
    /// `BUSY` and drop the item. Never blocks.
    pub fn offer(&self, client: u64, item: T) -> bool {
        let mut inner = self.state();
        if inner.closed || inner.len >= self.depth {
            drop(inner);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let q = inner.queues.entry(client).or_default();
        let was_empty = q.is_empty();
        q.push_back(item);
        if was_empty {
            inner.rr.push_back(client);
        }
        inner.len += 1;
        drop(inner);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        true
    }

    /// Blocks until at least one item is queued, then lingers up to `tick`
    /// (or until `max` items are available) letting concurrent arrivals
    /// join the batch, and drains up to `max` items round-robin across
    /// clients. Returns an empty vec only when the queue is closed and
    /// empty — the dispatcher's signal to exit.
    pub fn drain(&self, max: usize, tick: Duration) -> Vec<T> {
        let mut inner = self.state();
        // Outer predicate loop: a wake (or an elapsed linger) is a *hint*,
        // not a claim ticket. Between our waits a competing drainer may
        // take every queued item — `wait`/`wait_timeout` release the lock —
        // so an empty pop with the queue still open must loop back to
        // waiting, never return. An empty return is reserved for
        // closed-and-drained, which the dispatcher reads as "exit".
        loop {
            while inner.len == 0 {
                if inner.closed {
                    return Vec::new();
                }
                inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
            if !tick.is_zero() {
                let deadline = Instant::now() + tick;
                while inner.len < max && !inner.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = self
                        .cv
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let batch = Self::pop_round_robin(&mut inner, max);
            if !batch.is_empty() || inner.closed {
                return batch;
            }
        }
    }

    /// Closes the queue and returns everything still queued (round-robin
    /// order), so the caller can reply `BUSY` to each. Later offers fail;
    /// a blocked [`drain`](Self::drain) wakes and returns empty once the
    /// queue is empty.
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.state();
        inner.closed = true;
        let leftover = Self::pop_round_robin(&mut inner, usize::MAX);
        drop(inner);
        self.cv.notify_all();
        leftover
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.state().closed
    }

    /// Currently queued items.
    pub fn queued(&self) -> usize {
        self.state().len
    }

    /// Items admitted over the queue's lifetime.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Items shed (offers rejected) over the queue's lifetime.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Pops up to `max` items round-robin. The invariant is that `rr`
    /// lists exactly the clients with non-empty FIFOs and `len` is their
    /// total; this walks off `rr` so a (theoretically impossible) stale
    /// entry is dropped and resynchronized instead of panicking a
    /// dispatcher that other connections depend on.
    fn pop_round_robin(inner: &mut Inner<T>, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max.min(inner.len));
        while out.len() < max {
            let Some(client) = inner.rr.pop_front() else {
                break;
            };
            let Some(q) = inner.queues.get_mut(&client) else {
                continue;
            };
            let Some(item) = q.pop_front() else {
                inner.queues.remove(&client);
                continue;
            };
            out.push(item);
            inner.len = inner.len.saturating_sub(1);
            if q.is_empty() {
                inner.queues.remove(&client);
            } else {
                inner.rr.push_back(client);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_past_depth_and_counts() {
        let q = Admission::new(3);
        assert!(q.offer(1, "a"));
        assert!(q.offer(1, "b"));
        assert!(q.offer(2, "c"));
        assert!(!q.offer(3, "d"), "fourth offer must shed");
        assert_eq!((q.admitted(), q.shed(), q.queued()), (3, 1, 3));
        // Draining frees capacity again.
        assert_eq!(q.drain(8, Duration::ZERO).len(), 3);
        assert!(q.offer(3, "d"));
    }

    #[test]
    fn drain_is_round_robin_fair_across_clients() {
        let q = Admission::new(64);
        for i in 0..10 {
            assert!(q.offer(1, format!("hog-{i}")));
        }
        assert!(q.offer(2, "small-0".to_string()));
        assert!(q.offer(2, "small-1".to_string()));
        let batch = q.drain(4, Duration::ZERO);
        // Client 2's two requests ride in the first four slots despite the
        // 10-deep pipeline from client 1.
        assert_eq!(batch, vec!["hog-0", "small-0", "hog-1", "small-1"]);
        assert_eq!(q.queued(), 8);
    }

    #[test]
    fn drain_lingers_for_the_tick_to_batch_arrivals() {
        let q = Arc::new(Admission::new(64));
        let q2 = Arc::clone(&q);
        let late = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            q2.offer(2, "late")
        });
        assert!(q.offer(1, "early"));
        let batch = q.drain(8, Duration::from_millis(200));
        late.join().unwrap();
        assert_eq!(batch.len(), 2, "the lingering drain must pick up the late arrival");
    }

    #[test]
    fn close_returns_leftovers_and_wakes_drainers() {
        let q = Arc::new(Admission::<u32>::new(8));
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.drain(4, Duration::from_millis(20)));
        thread::sleep(Duration::from_millis(10));
        assert!(q.offer(1, 7));
        assert_eq!(waiter.join().unwrap(), vec![7]);
        assert!(q.offer(1, 8));
        assert_eq!(q.close(), vec![8]);
        assert!(!q.offer(1, 9), "offers after close must shed");
        assert!(q.drain(4, Duration::from_secs(10)).is_empty(), "drain after close returns empty");
    }

    /// Spurious-wakeup shape: two drainers race for one item. The loser's
    /// wake finds the queue empty and must go back to waiting — not return
    /// a phantom empty batch, which the dispatcher would misread as
    /// "closed, exit". Before the outer predicate loop in `drain`, the
    /// loser of the linger-phase race could return empty with the queue
    /// still open.
    #[test]
    fn racing_drainers_never_return_phantom_empty() {
        for _ in 0..50 {
            let q = Arc::new(Admission::<u32>::new(8));
            let drainers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    // A non-zero tick forces the linger phase, where the
                    // lock is released between wakes and the race lives.
                    thread::spawn(move || q.drain(4, Duration::from_millis(1)))
                })
                .collect();
            thread::sleep(Duration::from_millis(2));
            assert!(q.offer(1, 42));
            thread::sleep(Duration::from_millis(10));
            // Exactly one drainer owns the item; the other must still be
            // blocked. Closing releases it with the empty "exit" batch.
            let leftover = q.close();
            let batches: Vec<Vec<u32>> = drainers.into_iter().map(|d| d.join().unwrap()).collect();
            let got: Vec<u32> = batches.iter().flatten().copied().collect();
            assert!(leftover.is_empty(), "the item was drained, not left behind");
            assert_eq!(got, vec![42], "one drainer gets the item exactly once: {batches:?}");
            assert!(
                batches.iter().any(|b| b.is_empty()),
                "the losing drainer exits empty only after close"
            );
        }
    }

    /// Conservation under contention: every offered item is drained exactly
    /// once across competing drainers, and no drainer observes an empty
    /// batch while the queue is open.
    #[test]
    fn competing_drainers_conserve_items() {
        let q = Arc::new(Admission::<u64>::new(1024));
        let total: u64 = 400;
        let drainers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        let batch = q.drain(7, Duration::from_micros(200));
                        if batch.is_empty() {
                            assert!(q.is_closed(), "empty batch from an open queue");
                            return seen;
                        }
                        seen.extend(batch);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..total / 4 {
                        while !q.offer(p, p * total + i) {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Let the drainers finish the backlog, then close to release them.
        while q.queued() > 0 {
            thread::yield_now();
        }
        assert!(q.close().is_empty());
        let mut all: Vec<u64> = drainers.into_iter().flat_map(|d| d.join().unwrap()).collect();
        all.sort_unstable();
        let expected: Vec<u64> =
            (0..4u64).flat_map(|p| (0..total / 4).map(move |i| p * total + i)).collect();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(all, expected, "every admitted item drained exactly once");
    }
}
