//! Bounded, per-client-fair admission queue.
//!
//! Connections *offer* requests; the dispatcher *drains* them in batches.
//! The queue enforces two policies the raw socket buffers cannot:
//!
//! * **Shed on overload** — the total queued count is bounded by
//!   [`ServiceConfig::queue_depth`](imprints_engine::ServiceConfig). An
//!   offer past the bound fails immediately and the connection replies
//!   `BUSY`; overload degrades into explicit rejections, never into hangs
//!   or unbounded memory growth.
//! * **Per-client fairness** — each client gets its own FIFO and the
//!   drain round-robins across clients, so one connection pipelining
//!   thousands of requests cannot starve a neighbor that sent one.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A bounded multi-producer queue with round-robin drain. `T` is the
/// queued request type; clients are identified by an opaque `u64`.
pub struct Admission<T> {
    depth: usize,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
}

struct Inner<T> {
    /// Per-client FIFOs; a client is present iff its FIFO is non-empty.
    queues: HashMap<u64, VecDeque<T>>,
    /// Round-robin order over the clients present in `queues`.
    rr: VecDeque<u64>,
    /// Total queued items across all clients.
    len: usize,
    closed: bool,
}

impl<T> Admission<T> {
    /// An empty queue bounded at `depth` total queued items.
    pub fn new(depth: usize) -> Admission<T> {
        assert!(depth > 0, "queue depth must be positive");
        Admission {
            depth,
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                rr: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Offers one item on behalf of `client`. Returns `false` — and counts
    /// a shed — when the queue is full or closed; the caller must reply
    /// `BUSY` and drop the item. Never blocks.
    pub fn offer(&self, client: u64, item: T) -> bool {
        let mut inner = self.inner.lock().expect("admission lock");
        if inner.closed || inner.len >= self.depth {
            drop(inner);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let q = inner.queues.entry(client).or_default();
        let was_empty = q.is_empty();
        q.push_back(item);
        if was_empty {
            inner.rr.push_back(client);
        }
        inner.len += 1;
        drop(inner);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        true
    }

    /// Blocks until at least one item is queued, then lingers up to `tick`
    /// (or until `max` items are available) letting concurrent arrivals
    /// join the batch, and drains up to `max` items round-robin across
    /// clients. Returns an empty vec only when the queue is closed and
    /// empty — the dispatcher's signal to exit.
    pub fn drain(&self, max: usize, tick: Duration) -> Vec<T> {
        let mut inner = self.inner.lock().expect("admission lock");
        while inner.len == 0 {
            if inner.closed {
                return Vec::new();
            }
            inner = self.cv.wait(inner).expect("admission lock");
        }
        if !tick.is_zero() {
            let deadline = Instant::now() + tick;
            while inner.len < max && !inner.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) =
                    self.cv.wait_timeout(inner, deadline - now).expect("admission lock");
                inner = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        Self::pop_round_robin(&mut inner, max)
    }

    /// Closes the queue and returns everything still queued (round-robin
    /// order), so the caller can reply `BUSY` to each. Later offers fail;
    /// a blocked [`drain`](Self::drain) wakes and returns empty once the
    /// queue is empty.
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("admission lock");
        inner.closed = true;
        let leftover = Self::pop_round_robin(&mut inner, usize::MAX);
        drop(inner);
        self.cv.notify_all();
        leftover
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("admission lock").closed
    }

    /// Currently queued items.
    pub fn queued(&self) -> usize {
        self.inner.lock().expect("admission lock").len
    }

    /// Items admitted over the queue's lifetime.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Items shed (offers rejected) over the queue's lifetime.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    fn pop_round_robin(inner: &mut Inner<T>, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max.min(inner.len));
        while out.len() < max && inner.len > 0 {
            let client = inner.rr.pop_front().expect("rr tracks non-empty queues");
            let q = inner.queues.get_mut(&client).expect("rr tracks non-empty queues");
            out.push(q.pop_front().expect("rr tracks non-empty queues"));
            inner.len -= 1;
            if q.is_empty() {
                inner.queues.remove(&client);
            } else {
                inner.rr.push_back(client);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_past_depth_and_counts() {
        let q = Admission::new(3);
        assert!(q.offer(1, "a"));
        assert!(q.offer(1, "b"));
        assert!(q.offer(2, "c"));
        assert!(!q.offer(3, "d"), "fourth offer must shed");
        assert_eq!((q.admitted(), q.shed(), q.queued()), (3, 1, 3));
        // Draining frees capacity again.
        assert_eq!(q.drain(8, Duration::ZERO).len(), 3);
        assert!(q.offer(3, "d"));
    }

    #[test]
    fn drain_is_round_robin_fair_across_clients() {
        let q = Admission::new(64);
        for i in 0..10 {
            assert!(q.offer(1, format!("hog-{i}")));
        }
        assert!(q.offer(2, "small-0".to_string()));
        assert!(q.offer(2, "small-1".to_string()));
        let batch = q.drain(4, Duration::ZERO);
        // Client 2's two requests ride in the first four slots despite the
        // 10-deep pipeline from client 1.
        assert_eq!(batch, vec!["hog-0", "small-0", "hog-1", "small-1"]);
        assert_eq!(q.queued(), 8);
    }

    #[test]
    fn drain_lingers_for_the_tick_to_batch_arrivals() {
        let q = Arc::new(Admission::new(64));
        let q2 = Arc::clone(&q);
        let late = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            q2.offer(2, "late")
        });
        assert!(q.offer(1, "early"));
        let batch = q.drain(8, Duration::from_millis(200));
        late.join().unwrap();
        assert_eq!(batch.len(), 2, "the lingering drain must pick up the late arrival");
    }

    #[test]
    fn close_returns_leftovers_and_wakes_drainers() {
        let q = Arc::new(Admission::<u32>::new(8));
        let q2 = Arc::clone(&q);
        let waiter = thread::spawn(move || q2.drain(4, Duration::from_millis(20)));
        thread::sleep(Duration::from_millis(10));
        assert!(q.offer(1, 7));
        assert_eq!(waiter.join().unwrap(), vec![7]);
        assert!(q.offer(1, 8));
        assert_eq!(q.close(), vec![8]);
        assert!(!q.offer(1, 9), "offers after close must shed");
        assert!(q.drain(4, Duration::from_secs(10)).is_empty(), "drain after close returns empty");
    }
}
