//! Per-connection reader: parses request lines, answers cheap verbs
//! inline, and offers QUERY/COUNT to the admission queue.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

use crate::protocol::{self, RawPred, Request};
use crate::server::{Shared, Ticket};

/// The write half of one client connection. Shared between the reader
/// thread (inline replies) and the dispatcher (batched replies); the mutex
/// keeps response lines from interleaving.
pub(crate) struct Conn {
    pub id: u64,
    writer: Mutex<TcpStream>,
}

impl Conn {
    pub fn new(id: u64, writer: TcpStream) -> Conn {
        Conn { id, writer: Mutex::new(writer) }
    }

    /// Sends one response line. Write errors are swallowed: a client that
    /// vanished mid-flight only affects itself, and its reader thread will
    /// see the hangup and clean up.
    pub fn send(&self, line: &str) {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        // Poison recovery: the guarded value is a raw socket handle with no
        // invariants a panic could break; at worst the peer sees a torn
        // line and hangs up, which only affects that one client.
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.write_all(buf.as_bytes());
    }
}

/// Outcome of one bounded line read (see [`read_line_capped`]).
enum LineOutcome {
    /// A complete line, newline stripped.
    Line(String),
    /// The line exceeded the cap; its remainder (through the newline) was
    /// discarded, so the reader is still line-synchronized.
    Oversized,
    /// The line's bytes were not valid UTF-8; the line was consumed.
    NotUtf8,
    /// EOF (including mid-line) or an I/O error: tear the connection down.
    Closed,
}

/// Reads one `\n`-terminated line of at most `max` bytes (terminator
/// excluded). Unlike `read_line`, an abusive peer streaming an endless
/// line costs bounded memory: past the cap the bytes are discarded
/// chunk-by-chunk until the newline, and the caller answers `ERR`.
fn read_line_capped(reader: &mut impl BufRead, max: usize) -> LineOutcome {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return LineOutcome::Closed,
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return LineOutcome::Closed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if buf.len() + nl > max {
                    reader.consume(nl + 1);
                    return LineOutcome::Oversized;
                }
                match chunk.get(..nl) {
                    Some(head) => buf.extend_from_slice(head),
                    None => return LineOutcome::Closed,
                }
                reader.consume(nl + 1);
                return match String::from_utf8(buf) {
                    Ok(s) => LineOutcome::Line(s),
                    Err(_) => LineOutcome::NotUtf8,
                };
            }
            None => {
                let n = chunk.len();
                if buf.len() + n > max {
                    reader.consume(n);
                    return skip_to_newline(reader);
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
}

/// Discards bytes through the next newline after an over-cap prefix.
fn skip_to_newline(reader: &mut impl BufRead) -> LineOutcome {
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return LineOutcome::Closed,
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return LineOutcome::Closed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                reader.consume(nl + 1);
                return LineOutcome::Oversized;
            }
            None => {
                let n = chunk.len();
                reader.consume(n);
            }
        }
    }
}

/// Reader loop of one connection: one request per line until EOF/error.
pub(crate) fn serve(shared: Arc<Shared>, conn: Arc<Conn>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let max = shared.cfg.max_line_bytes;
    loop {
        let line = match read_line_capped(&mut reader, max) {
            LineOutcome::Line(l) => l,
            LineOutcome::Oversized => {
                // The offending line was never buffered, so its tag (if
                // any) is unknown — the ERR goes back untagged.
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                conn.send(&protocol::fmt_err(None, &format!("request line exceeds {max} bytes")));
                continue;
            }
            LineOutcome::NotUtf8 => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                conn.send(&protocol::fmt_err(None, "request line is not valid UTF-8"));
                continue;
            }
            LineOutcome::Closed => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (tag, body) = protocol::split_tag(trimmed);
        if shared.stopping() {
            // Draining: nothing new is admitted, but every request still
            // gets an explicit answer instead of silence.
            conn.send(&protocol::fmt_busy(tag));
            continue;
        }
        match protocol::parse_request(body) {
            Err(msg) => conn.send(&protocol::fmt_err(tag, &msg)),
            Ok(Request::Ping) => conn.send(&protocol::fmt_ok_list(tag, &[])),
            Ok(Request::Tables) => {
                conn.send(&protocol::fmt_ok_list(tag, &shared.engine.catalog().table_names()))
            }
            Ok(Request::Stats(table)) => conn.send(&stats_line(&shared, tag, table.as_deref())),
            Ok(Request::Query { table, preds, any }) => {
                enqueue(&shared, &conn, tag, table, preds, any, false)
            }
            Ok(Request::Count { table, preds, any }) => {
                enqueue(&shared, &conn, tag, table, preds, any, true)
            }
        }
    }
    shared.forget_conn(conn.id);
}

/// Offers a QUERY/COUNT to admission; a full (or closed) queue sheds the
/// request with an immediate `BUSY` — never a hang.
fn enqueue(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    tag: Option<&str>,
    table: String,
    preds: Vec<RawPred>,
    any: bool,
    count_only: bool,
) {
    let ticket = Ticket {
        conn: Arc::clone(conn),
        tag: tag.map(str::to_string),
        table,
        preds,
        any,
        count_only,
    };
    if !shared.admission.offer(conn.id, ticket) {
        conn.send(&protocol::fmt_busy(tag));
    }
}

fn stats_line(shared: &Shared, tag: Option<&str>, table: Option<&str>) -> String {
    match table {
        Some(name) => match shared.engine.catalog().table(name) {
            Err(e) => protocol::fmt_err(tag, &e.to_string()),
            Ok(t) => {
                let s = t.stats();
                let items = [
                    format!("rows={}", t.row_count()),
                    format!("queries={}", s.queries.load(Ordering::Relaxed)),
                    format!("rows_appended={}", s.rows_appended.load(Ordering::Relaxed)),
                    format!("segments_sealed={}", s.segments_sealed.load(Ordering::Relaxed)),
                    format!("rebuilds={}", s.rebuilds.load(Ordering::Relaxed)),
                    format!("compactions={}", s.compactions.load(Ordering::Relaxed)),
                ];
                protocol::fmt_ok_list(tag, &items)
            }
        },
        None => {
            let storage = shared.engine.catalog().storage_stats();
            let st = shared.stats();
            let items = [
                format!("tables={}", storage.tables),
                format!("rows={}", storage.rows),
                format!("sealed_segments={}", storage.sealed_segments),
                format!("index_bytes={}", storage.index_bytes),
                format!("data_bytes_resident={}", storage.data_bytes_resident),
                format!("data_bytes_evicted={}", storage.data_bytes_evicted),
                format!("evicted_segments={}", storage.evicted_segments),
                format!("faulted_bytes={}", storage.faulted_bytes),
                format!("persist_errors={}", storage.persist_errors),
                format!("connections={}", st.connections),
                format!("requests={}", st.requests),
                format!("admitted={}", st.admitted),
                format!("shed={}", st.shed),
                format!("queued={}", st.queued),
                format!("batches={}", st.batches),
                format!("batched_requests={}", st.batched_requests),
            ];
            protocol::fmt_ok_list(tag, &items)
        }
    }
}
