//! The batching dispatcher: drains admitted tickets in ticks, groups them
//! by table, and evaluates each group as one shared morsel pass.
//!
//! Requests admitted within one [`drain`](crate::admission::Admission::drain)
//! tick become one batch. The batch is grouped by table (arrival order
//! preserved within each group) and every group goes through
//! [`Table::query_batch`], which pins **one** consistent snapshot for the
//! whole group and answers all its predicates from one sweep per segment —
//! the amortization that makes concurrent point-lookups cheap at serving
//! scale. Per-request failures (bad column, bad bound, panicked task) are
//! answered per request and never poison batch neighbors.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use imprints_engine::{BatchAnswer, BatchQuery, Table, ValueSet};

use crate::protocol::{fmt_err, fmt_ok_count, fmt_ok_ids};
use crate::server::{Shared, Ticket};

/// Dispatcher thread body: drain → group → evaluate, until the admission
/// queue is closed and empty.
pub(crate) fn run(shared: &Shared) {
    loop {
        let batch = shared.admission.drain(shared.cfg.batch_max, shared.cfg.batch_tick);
        if batch.is_empty() {
            // Only returned once the queue is closed and fully drained.
            return;
        }
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        shared.counters.batched_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
        dispatch(shared, batch);
    }
}

/// Groups one drained batch by table and evaluates each group.
fn dispatch(shared: &Shared, batch: Vec<Ticket>) {
    let mut groups: Vec<(String, Vec<Ticket>)> = Vec::new();
    for t in batch {
        match groups.iter_mut().find(|(name, _)| *name == t.table) {
            Some((_, g)) => g.push(t),
            None => groups.push((t.table.clone(), vec![t])),
        }
    }
    for (name, tickets) in groups {
        // Resolving the table pins an `Arc<Table>`: even if the table is
        // dropped from the catalog mid-batch, this group's snapshot stays
        // valid until the last answer is written.
        match shared.engine.catalog().table(&name) {
            Ok(table) => run_group(shared, &table, tickets),
            Err(e) => {
                let msg = e.to_string();
                for t in tickets {
                    t.conn.send(&fmt_err(t.tag.as_deref(), &msg));
                }
            }
        }
    }
}

/// Evaluates one same-table group as a single `query_batch` call.
fn run_group(shared: &Shared, table: &Arc<Table>, tickets: Vec<Ticket>) {
    // Tickets that fail typing are answered immediately; the rest ride in
    // `owners`, index-aligned with `queries`, so answers pair back to their
    // connections by zip — no positional bookkeeping to get wrong.
    let mut queries = Vec::with_capacity(tickets.len());
    let mut owners = Vec::with_capacity(tickets.len());
    for t in tickets {
        match typed_query(table, &t) {
            Ok(q) => {
                queries.push(q);
                owners.push(t);
            }
            Err(msg) => t.conn.send(&fmt_err(t.tag.as_deref(), &msg)),
        }
    }
    if queries.is_empty() {
        return;
    }
    let answers = table.query_batch(&queries, Some(shared.engine.pool()));
    for (t, answer) in owners.iter().zip(answers) {
        let tag = t.tag.as_deref();
        match answer {
            Ok((BatchAnswer::Ids(ids), _)) => t.conn.send(&fmt_ok_ids(tag, ids.as_slice())),
            Ok((BatchAnswer::Count(n), _)) => t.conn.send(&fmt_ok_count(tag, n)),
            Err(e) => t.conn.send(&fmt_err(tag, &e.to_string())),
        }
    }
}

/// Types a ticket's wire predicates against the table schema.
fn typed_query(table: &Table, t: &Ticket) -> Result<BatchQuery, String> {
    let mut preds: Vec<(String, ValueSet)> = Vec::with_capacity(t.preds.len());
    for p in &t.preds {
        let def = table
            .schema()
            .iter()
            .find(|c| c.name == p.column)
            .ok_or_else(|| format!("no column {:?} in table {:?}", p.column, table.name()))?;
        preds.push((p.column.clone(), p.to_set(def.ty)?));
    }
    Ok(BatchQuery { preds, any: t.any, count_only: t.count_only })
}
