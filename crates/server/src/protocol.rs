//! The wire protocol: newline-delimited text, one request per line.
//!
//! Grammar (tokens separated by ASCII whitespace):
//!
//! ```text
//! request   := [tag] verb
//! tag       := '#' token            -- echoed verbatim on the response line
//! verb      := "QUERY" table body   -- matching row ids
//!            | "COUNT" table body   -- matching row count
//!            | "TABLES"             -- registered table names
//!            | "STATS" [table]      -- server or per-table counters
//!            | "PING"               -- liveness probe
//! body      := pred*                -- conjunction (AND of the predicates)
//!            | "OR" pred pred*      -- disjunction (union of the predicates)
//! pred      := col "=" value        -- equality
//!            | col "<=" value       -- at most
//!            | col ">=" value       -- at least
//!            | col "=" lo ".." hi   -- inclusive range
//!            | col "=" v ("," v)+   -- IN-list (any of the listed values)
//! ```
//!
//! `QUERY t a>=3 b=1..9 c=5,7,9` selects rows satisfying *all three*
//! predicates; `QUERY t OR a=1 b>=100` selects rows satisfying *either*.
//! IN-list items are plain values — a `..` range inside a list is an
//! error, as is an empty item (`c=5,,9`). An `OR` group needs at least one
//! predicate: the empty disjunction would select nothing, which a client
//! can only mean by mistake.
//!
//! All bounds are inclusive, mirroring the engine's
//! [`ValueRange`](imprints_engine::ValueRange); strict comparisons are not
//! expressible on the wire because the index cannot answer them exactly.
//! Verbs and the `OR` keyword are case-insensitive; column names and tags
//! are case-sensitive.
//!
//! Responses are a single line each, prefixed with the request tag when one
//! was given:
//!
//! ```text
//! [tag] "OK" payload…      -- QUERY: count then ids; COUNT: count;
//!                          -- TABLES: names; STATS: key=value pairs
//! [tag] "ERR" message…     -- malformed request or evaluation error
//! [tag] "BUSY"             -- shed by admission control; retry later
//! ```
//!
//! Because every response carries its request tag, clients may pipeline:
//! responses to *admitted* requests come back in dispatch order, which under
//! batching is not necessarily arrival order.

use colstore::{ColumnType, Value};
use imprints_engine::{ValueRange, ValueSet};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `QUERY table body` — materialize matching row ids.
    Query {
        /// Target table name.
        table: String,
        /// The predicates (possibly empty: select all — unless `any`).
        preds: Vec<RawPred>,
        /// `true` for an `OR` group (union of the predicates), `false`
        /// for the default conjunction.
        any: bool,
    },
    /// `COUNT table body` — count matching rows.
    Count {
        /// Target table name.
        table: String,
        /// The predicates (possibly empty: count all — unless `any`).
        preds: Vec<RawPred>,
        /// `true` for an `OR` group, `false` for the conjunction.
        any: bool,
    },
    /// `TABLES` — list registered tables.
    Tables,
    /// `STATS [table]` — server-wide or per-table counters.
    Stats(Option<String>),
    /// `PING` — liveness probe.
    Ping,
}

/// One inclusive interval of a wire predicate, still as strings. Bounds
/// are typed against the table schema at dispatch time (the parser does
/// not know the schema).
#[derive(Debug, Clone, PartialEq)]
pub struct RawRange {
    /// Inclusive lower bound, if any.
    pub low: Option<String>,
    /// Inclusive upper bound, if any.
    pub high: Option<String>,
}

impl RawRange {
    /// Types the string bounds against `ty`, producing the engine range.
    pub fn to_range(&self, ty: ColumnType) -> Result<ValueRange, String> {
        let parse = |s: &String| parse_value(ty, s);
        let low = self.low.as_ref().map(parse).transpose()?;
        let high = self.high.as_ref().map(parse).transpose()?;
        Ok(ValueRange { low, high })
    }
}

/// A predicate as written on the wire: column name plus one interval per
/// term — a single term for `=`/`<=`/`>=`/`lo..hi`, one point term per
/// item for an IN-list.
#[derive(Debug, Clone, PartialEq)]
pub struct RawPred {
    /// Column name.
    pub column: String,
    /// The predicate's intervals (a row matches when *any* term does).
    pub terms: Vec<RawRange>,
}

impl RawPred {
    /// One-term constructor — the shape every pre-IN-list predicate has.
    fn single(column: &str, low: Option<String>, high: Option<String>) -> RawPred {
        RawPred { column: column.into(), terms: vec![RawRange { low, high }] }
    }

    /// Types every term against `ty`, producing the engine value set.
    pub fn to_set(&self, ty: ColumnType) -> Result<ValueSet, String> {
        let mut terms = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            terms.push(t.to_range(ty)?);
        }
        Ok(ValueSet { terms })
    }
}

/// Parses one wire value of type `ty`.
pub fn parse_value(ty: ColumnType, s: &str) -> Result<Value, String> {
    fn err<E: std::fmt::Display>(ty: ColumnType, s: &str, e: E) -> String {
        format!("bad {ty:?} value {s:?}: {e}")
    }
    match ty {
        ColumnType::I8 => s.parse().map(Value::I8).map_err(|e| err(ty, s, e)),
        ColumnType::U8 => s.parse().map(Value::U8).map_err(|e| err(ty, s, e)),
        ColumnType::I16 => s.parse().map(Value::I16).map_err(|e| err(ty, s, e)),
        ColumnType::U16 => s.parse().map(Value::U16).map_err(|e| err(ty, s, e)),
        ColumnType::I32 => s.parse().map(Value::I32).map_err(|e| err(ty, s, e)),
        ColumnType::U32 => s.parse().map(Value::U32).map_err(|e| err(ty, s, e)),
        ColumnType::I64 => s.parse().map(Value::I64).map_err(|e| err(ty, s, e)),
        ColumnType::U64 => s.parse().map(Value::U64).map_err(|e| err(ty, s, e)),
        ColumnType::F32 => s.parse().map(Value::F32).map_err(|e| err(ty, s, e)),
        ColumnType::F64 => s.parse().map(Value::F64).map_err(|e| err(ty, s, e)),
    }
}

/// Splits a request line into its optional tag and the rest.
pub fn split_tag(line: &str) -> (Option<&str>, &str) {
    let trimmed = line.trim_start();
    match trimmed.split_once(char::is_whitespace) {
        Some((first, rest)) => match first.strip_prefix('#') {
            Some(tag) if !tag.is_empty() => (Some(tag), rest),
            _ => (None, trimmed),
        },
        None => (None, trimmed),
    }
}

/// Parses one request line (tag already stripped by [`split_tag`]).
pub fn parse_request(body: &str) -> Result<Request, String> {
    let mut tokens = body.split_whitespace();
    let verb = tokens.next().ok_or_else(|| "empty request".to_string())?;
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" | "COUNT" => {
            let table = tokens.next().ok_or_else(|| format!("{verb}: missing table name"))?;
            let mut tokens = tokens.peekable();
            // An `OR` keyword right after the table turns the predicate
            // list into a disjunction. A predicate token always contains
            // an operator, so the bare keyword cannot be mistaken for one.
            let any = tokens.peek().is_some_and(|t| t.eq_ignore_ascii_case("OR"));
            if any {
                tokens.next();
            }
            let preds = tokens.map(parse_pred).collect::<Result<Vec<_>, _>>()?;
            if any && preds.is_empty() {
                return Err(format!("{verb}: OR group needs at least one predicate"));
            }
            if verb.eq_ignore_ascii_case("QUERY") {
                Ok(Request::Query { table: table.to_string(), preds, any })
            } else {
                Ok(Request::Count { table: table.to_string(), preds, any })
            }
        }
        "TABLES" => match tokens.next() {
            None => Ok(Request::Tables),
            Some(t) => Err(format!("TABLES takes no arguments, got {t:?}")),
        },
        "STATS" => {
            let table = tokens.next().map(str::to_string);
            match tokens.next() {
                None => Ok(Request::Stats(table)),
                Some(t) => Err(format!("STATS takes at most one table, got {t:?}")),
            }
        }
        "PING" => match tokens.next() {
            None => Ok(Request::Ping),
            Some(t) => Err(format!("PING takes no arguments, got {t:?}")),
        },
        _ => Err(format!("unknown verb {verb:?} (expected QUERY/COUNT/TABLES/STATS/PING)")),
    }
}

/// Parses one `col<op>value` predicate token.
fn parse_pred(token: &str) -> Result<RawPred, String> {
    // `<=` / `>=` are checked before bare `=` so `v<=3` does not split at
    // its `=`; `split_once` keeps the scan free of manual offsets.
    let (column, op, value) = if let Some((c, v)) = token.split_once("<=") {
        (c, "<=", v)
    } else if let Some((c, v)) = token.split_once(">=") {
        (c, ">=", v)
    } else if let Some((c, v)) = token.split_once('=') {
        (c, "=", v)
    } else {
        return Err(format!("predicate {token:?} has no operator (use = / <= / >= / =lo..hi)"));
    };
    if column.is_empty() {
        return Err(format!("predicate {token:?} has an empty column name"));
    }
    if value.is_empty() {
        return Err(format!("predicate {token:?} has an empty value"));
    }
    match op {
        "<=" => Ok(RawPred::single(column, None, Some(value.into()))),
        ">=" => Ok(RawPred::single(column, Some(value.into()), None)),
        _ if value.contains(',') => {
            // IN-list: one point term per item. Items are plain values —
            // a `..` range inside a list reads ambiguously (which comma
            // binds to which range?), so it is rejected outright.
            let mut terms = Vec::new();
            for item in value.split(',') {
                if item.is_empty() {
                    return Err(format!("IN-list predicate {token:?} has an empty item"));
                }
                if item.contains("..") {
                    return Err(format!(
                        "IN-list predicate {token:?} mixes a range into the list (use separate predicates)"
                    ));
                }
                terms.push(RawRange { low: Some(item.into()), high: Some(item.into()) });
            }
            Ok(RawPred { column: column.into(), terms })
        }
        _ => match value.split_once("..") {
            Some((lo, hi)) => {
                if lo.is_empty() || hi.is_empty() {
                    return Err(format!("range predicate {token:?} needs both bounds"));
                }
                Ok(RawPred::single(column, Some(lo.into()), Some(hi.into())))
            }
            None => Ok(RawPred::single(column, Some(value.into()), Some(value.into()))),
        },
    }
}

fn with_tag(tag: Option<&str>, body: String) -> String {
    match tag {
        Some(t) => format!("#{t} {body}"),
        None => body,
    }
}

/// Formats a QUERY success: `OK <count> <id>…`.
pub fn fmt_ok_ids(tag: Option<&str>, ids: &[u64]) -> String {
    let mut body = format!("OK {}", ids.len());
    for id in ids {
        body.push(' ');
        body.push_str(&id.to_string());
    }
    with_tag(tag, body)
}

/// Formats a COUNT success: `OK <count>`.
pub fn fmt_ok_count(tag: Option<&str>, count: u64) -> String {
    with_tag(tag, format!("OK {count}"))
}

/// Formats a list success (TABLES, STATS): `OK <item>…`.
pub fn fmt_ok_list(tag: Option<&str>, items: &[String]) -> String {
    let mut body = String::from("OK");
    for item in items {
        body.push(' ');
        body.push_str(item);
    }
    with_tag(tag, body)
}

/// Formats an error reply.
pub fn fmt_err(tag: Option<&str>, msg: &str) -> String {
    // Errors must stay one line; collapse any embedded newlines.
    with_tag(tag, format!("ERR {}", msg.replace(['\n', '\r'], " ")))
}

/// Formats a shed reply.
pub fn fmt_busy(tag: Option<&str>) -> String {
    with_tag(tag, "BUSY".to_string())
}

/// One parsed response line (client side).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `OK` with its whitespace-separated payload fields.
    Ok(Vec<String>),
    /// `BUSY` — the request was shed by admission control.
    Busy,
    /// `ERR` with its message.
    Err(String),
}

impl Reply {
    /// Decodes a QUERY payload: the ids after the leading count. `None`
    /// for `BUSY`/`ERR` or a payload that is not `count ids…`.
    pub fn ids(&self) -> Option<Vec<u64>> {
        match self {
            Reply::Ok(fields) => {
                let (count, ids) = fields.split_first()?;
                let n: usize = count.parse().ok()?;
                if ids.len() != n {
                    return None;
                }
                ids.iter().map(|f| f.parse().ok()).collect()
            }
            _ => None,
        }
    }

    /// Decodes a COUNT payload. `None` for `BUSY`/`ERR` or a payload that
    /// is not a single integer.
    pub fn count(&self) -> Option<u64> {
        match self {
            Reply::Ok(fields) => match fields.as_slice() {
                [one] => one.parse().ok(),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Parses one response line into its tag and reply.
pub fn parse_reply(line: &str) -> Result<(Option<String>, Reply), String> {
    let (tag, body) = split_tag(line);
    let tag = tag.map(str::to_string);
    let (status, rest) = match body.split_once(char::is_whitespace) {
        Some((s, r)) => (s, r.trim()),
        None => (body.trim(), ""),
    };
    match status {
        "OK" => Ok((tag, Reply::Ok(rest.split_whitespace().map(str::to_string).collect()))),
        "BUSY" => Ok((tag, Reply::Busy)),
        "ERR" => Ok((tag, Reply::Err(rest.to_string()))),
        _ => Err(format!("malformed response line {line:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(low: Option<&str>, high: Option<&str>) -> RawRange {
        RawRange { low: low.map(str::to_string), high: high.map(str::to_string) }
    }

    #[test]
    fn parses_tagged_query_with_all_predicate_forms() {
        let (tag, body) = split_tag("#q1 QUERY readings sensor=3 value<=10 ts>=5 v=1..9 c=5,7,9");
        assert_eq!(tag, Some("q1"));
        let req = parse_request(body).unwrap();
        match req {
            Request::Query { table, preds, any } => {
                assert_eq!(table, "readings");
                assert!(!any, "a plain predicate list is a conjunction");
                assert_eq!(
                    preds[0],
                    RawPred { column: "sensor".into(), terms: vec![term(Some("3"), Some("3"))] }
                );
                assert_eq!(
                    preds[1],
                    RawPred { column: "value".into(), terms: vec![term(None, Some("10"))] }
                );
                assert_eq!(
                    preds[2],
                    RawPred { column: "ts".into(), terms: vec![term(Some("5"), None)] }
                );
                assert_eq!(
                    preds[3],
                    RawPred { column: "v".into(), terms: vec![term(Some("1"), Some("9"))] }
                );
                assert_eq!(
                    preds[4],
                    RawPred {
                        column: "c".into(),
                        terms: vec![
                            term(Some("5"), Some("5")),
                            term(Some("7"), Some("7")),
                            term(Some("9"), Some("9")),
                        ]
                    }
                );
            }
            other => panic!("expected Query, got {other:?}"),
        }
    }

    #[test]
    fn parses_or_groups() {
        match parse_request("QUERY t OR a=1 b>=100").unwrap() {
            Request::Query { preds, any, .. } => {
                assert!(any);
                assert_eq!(preds.len(), 2);
            }
            other => panic!("expected Query, got {other:?}"),
        }
        // The keyword is case-insensitive, and COUNT takes it too.
        match parse_request("COUNT t or a=1").unwrap() {
            Request::Count { any, .. } => assert!(any),
            other => panic!("expected Count, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FLY readings").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("COUNT t sensor").is_err());
        assert!(parse_request("COUNT t =3").is_err());
        assert!(parse_request("COUNT t sensor=").is_err());
        assert!(parse_request("COUNT t sensor=1..").is_err());
        assert!(parse_request("TABLES extra").is_err());
        // IN-list and OR-group misuse.
        assert!(parse_request("QUERY t c=5,,9").is_err(), "empty IN-list item");
        assert!(parse_request("QUERY t c=5,").is_err(), "trailing comma");
        assert!(parse_request("QUERY t c=1..3,9").is_err(), "range inside IN-list");
        assert!(parse_request("QUERY t OR").is_err(), "empty OR group");
        assert!(parse_request("COUNT t OR").is_err(), "empty OR group");
    }

    #[test]
    fn untyped_bounds_type_against_schema() {
        let p = RawPred::single("v", Some("2".into()), Some("7".into()));
        let s = p.to_set(ColumnType::U16).unwrap();
        assert_eq!(
            s.terms,
            vec![ValueRange { low: Some(Value::U16(2)), high: Some(Value::U16(7)) }]
        );
        assert!(p.to_set(ColumnType::I8).is_ok());
        let bad = RawPred::single("v", Some("300".into()), None);
        assert!(bad.to_set(ColumnType::U8).is_err());
        let list = RawPred {
            column: "v".into(),
            terms: vec![term(Some("5"), Some("5")), term(Some("7"), Some("7"))],
        };
        assert_eq!(list.to_set(ColumnType::I64).unwrap().terms.len(), 2);
    }

    #[test]
    fn replies_round_trip() {
        let line = fmt_ok_ids(Some("a"), &[3, 5, 8]);
        assert_eq!(line, "#a OK 3 3 5 8");
        let (tag, reply) = parse_reply(&line).unwrap();
        assert_eq!(tag.as_deref(), Some("a"));
        assert_eq!(reply, Reply::Ok(vec!["3".into(), "3".into(), "5".into(), "8".into()]));
        assert_eq!(parse_reply(&fmt_busy(None)).unwrap(), (None, Reply::Busy));
        let (_, e) = parse_reply(&fmt_err(None, "no such\ntable")).unwrap();
        assert_eq!(e, Reply::Err("no such table".into()));
    }
}
