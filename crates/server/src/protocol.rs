//! The wire protocol: newline-delimited text, one request per line.
//!
//! Grammar (tokens separated by ASCII whitespace):
//!
//! ```text
//! request   := [tag] verb
//! tag       := '#' token            -- echoed verbatim on the response line
//! verb      := "QUERY" table pred*  -- matching row ids
//!            | "COUNT" table pred*  -- matching row count
//!            | "TABLES"             -- registered table names
//!            | "STATS" [table]      -- server or per-table counters
//!            | "PING"               -- liveness probe
//! pred      := col "=" value        -- equality
//!            | col "<=" value       -- at most
//!            | col ">=" value       -- at least
//!            | col "=" lo ".." hi   -- inclusive range
//! ```
//!
//! All bounds are inclusive, mirroring the engine's
//! [`ValueRange`](imprints_engine::ValueRange); strict comparisons are not
//! expressible on the wire because the index cannot answer them exactly.
//! Verbs are case-insensitive; column names and tags are case-sensitive.
//!
//! Responses are a single line each, prefixed with the request tag when one
//! was given:
//!
//! ```text
//! [tag] "OK" payload…      -- QUERY: count then ids; COUNT: count;
//!                          -- TABLES: names; STATS: key=value pairs
//! [tag] "ERR" message…     -- malformed request or evaluation error
//! [tag] "BUSY"             -- shed by admission control; retry later
//! ```
//!
//! Because every response carries its request tag, clients may pipeline:
//! responses to *admitted* requests come back in dispatch order, which under
//! batching is not necessarily arrival order.

use colstore::{ColumnType, Value};
use imprints_engine::ValueRange;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `QUERY table pred*` — materialize matching row ids.
    Query {
        /// Target table name.
        table: String,
        /// Conjunctive predicates (possibly empty: select all).
        preds: Vec<RawPred>,
    },
    /// `COUNT table pred*` — count matching rows.
    Count {
        /// Target table name.
        table: String,
        /// Conjunctive predicates (possibly empty: count all).
        preds: Vec<RawPred>,
    },
    /// `TABLES` — list registered tables.
    Tables,
    /// `STATS [table]` — server-wide or per-table counters.
    Stats(Option<String>),
    /// `PING` — liveness probe.
    Ping,
}

/// A predicate as written on the wire: column name plus optional inclusive
/// string bounds. Bounds are typed against the table schema at dispatch
/// time (the parser does not know the schema).
#[derive(Debug, Clone, PartialEq)]
pub struct RawPred {
    /// Column name.
    pub column: String,
    /// Inclusive lower bound, if any.
    pub low: Option<String>,
    /// Inclusive upper bound, if any.
    pub high: Option<String>,
}

impl RawPred {
    /// Types the string bounds against `ty`, producing the engine range.
    pub fn to_range(&self, ty: ColumnType) -> Result<ValueRange, String> {
        let parse = |s: &String| parse_value(ty, s);
        let low = self.low.as_ref().map(parse).transpose()?;
        let high = self.high.as_ref().map(parse).transpose()?;
        Ok(ValueRange { low, high })
    }
}

/// Parses one wire value of type `ty`.
pub fn parse_value(ty: ColumnType, s: &str) -> Result<Value, String> {
    fn err<E: std::fmt::Display>(ty: ColumnType, s: &str, e: E) -> String {
        format!("bad {ty:?} value {s:?}: {e}")
    }
    match ty {
        ColumnType::I8 => s.parse().map(Value::I8).map_err(|e| err(ty, s, e)),
        ColumnType::U8 => s.parse().map(Value::U8).map_err(|e| err(ty, s, e)),
        ColumnType::I16 => s.parse().map(Value::I16).map_err(|e| err(ty, s, e)),
        ColumnType::U16 => s.parse().map(Value::U16).map_err(|e| err(ty, s, e)),
        ColumnType::I32 => s.parse().map(Value::I32).map_err(|e| err(ty, s, e)),
        ColumnType::U32 => s.parse().map(Value::U32).map_err(|e| err(ty, s, e)),
        ColumnType::I64 => s.parse().map(Value::I64).map_err(|e| err(ty, s, e)),
        ColumnType::U64 => s.parse().map(Value::U64).map_err(|e| err(ty, s, e)),
        ColumnType::F32 => s.parse().map(Value::F32).map_err(|e| err(ty, s, e)),
        ColumnType::F64 => s.parse().map(Value::F64).map_err(|e| err(ty, s, e)),
    }
}

/// Splits a request line into its optional tag and the rest.
pub fn split_tag(line: &str) -> (Option<&str>, &str) {
    let trimmed = line.trim_start();
    match trimmed.split_once(char::is_whitespace) {
        Some((first, rest)) => match first.strip_prefix('#') {
            Some(tag) if !tag.is_empty() => (Some(tag), rest),
            _ => (None, trimmed),
        },
        None => (None, trimmed),
    }
}

/// Parses one request line (tag already stripped by [`split_tag`]).
pub fn parse_request(body: &str) -> Result<Request, String> {
    let mut tokens = body.split_whitespace();
    let verb = tokens.next().ok_or_else(|| "empty request".to_string())?;
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" | "COUNT" => {
            let table = tokens.next().ok_or_else(|| format!("{verb}: missing table name"))?;
            let preds = tokens.map(parse_pred).collect::<Result<Vec<_>, _>>()?;
            if verb.eq_ignore_ascii_case("QUERY") {
                Ok(Request::Query { table: table.to_string(), preds })
            } else {
                Ok(Request::Count { table: table.to_string(), preds })
            }
        }
        "TABLES" => match tokens.next() {
            None => Ok(Request::Tables),
            Some(t) => Err(format!("TABLES takes no arguments, got {t:?}")),
        },
        "STATS" => {
            let table = tokens.next().map(str::to_string);
            match tokens.next() {
                None => Ok(Request::Stats(table)),
                Some(t) => Err(format!("STATS takes at most one table, got {t:?}")),
            }
        }
        "PING" => match tokens.next() {
            None => Ok(Request::Ping),
            Some(t) => Err(format!("PING takes no arguments, got {t:?}")),
        },
        _ => Err(format!("unknown verb {verb:?} (expected QUERY/COUNT/TABLES/STATS/PING)")),
    }
}

/// Parses one `col<op>value` predicate token.
fn parse_pred(token: &str) -> Result<RawPred, String> {
    // `<=` / `>=` are checked before bare `=` so `v<=3` does not split at
    // its `=`; `split_once` keeps the scan free of manual offsets.
    let (column, op, value) = if let Some((c, v)) = token.split_once("<=") {
        (c, "<=", v)
    } else if let Some((c, v)) = token.split_once(">=") {
        (c, ">=", v)
    } else if let Some((c, v)) = token.split_once('=') {
        (c, "=", v)
    } else {
        return Err(format!("predicate {token:?} has no operator (use = / <= / >= / =lo..hi)"));
    };
    if column.is_empty() {
        return Err(format!("predicate {token:?} has an empty column name"));
    }
    if value.is_empty() {
        return Err(format!("predicate {token:?} has an empty value"));
    }
    match op {
        "<=" => Ok(RawPred { column: column.into(), low: None, high: Some(value.into()) }),
        ">=" => Ok(RawPred { column: column.into(), low: Some(value.into()), high: None }),
        _ => match value.split_once("..") {
            Some((lo, hi)) => {
                if lo.is_empty() || hi.is_empty() {
                    return Err(format!("range predicate {token:?} needs both bounds"));
                }
                Ok(RawPred { column: column.into(), low: Some(lo.into()), high: Some(hi.into()) })
            }
            None => Ok(RawPred {
                column: column.into(),
                low: Some(value.into()),
                high: Some(value.into()),
            }),
        },
    }
}

fn with_tag(tag: Option<&str>, body: String) -> String {
    match tag {
        Some(t) => format!("#{t} {body}"),
        None => body,
    }
}

/// Formats a QUERY success: `OK <count> <id>…`.
pub fn fmt_ok_ids(tag: Option<&str>, ids: &[u64]) -> String {
    let mut body = format!("OK {}", ids.len());
    for id in ids {
        body.push(' ');
        body.push_str(&id.to_string());
    }
    with_tag(tag, body)
}

/// Formats a COUNT success: `OK <count>`.
pub fn fmt_ok_count(tag: Option<&str>, count: u64) -> String {
    with_tag(tag, format!("OK {count}"))
}

/// Formats a list success (TABLES, STATS): `OK <item>…`.
pub fn fmt_ok_list(tag: Option<&str>, items: &[String]) -> String {
    let mut body = String::from("OK");
    for item in items {
        body.push(' ');
        body.push_str(item);
    }
    with_tag(tag, body)
}

/// Formats an error reply.
pub fn fmt_err(tag: Option<&str>, msg: &str) -> String {
    // Errors must stay one line; collapse any embedded newlines.
    with_tag(tag, format!("ERR {}", msg.replace(['\n', '\r'], " ")))
}

/// Formats a shed reply.
pub fn fmt_busy(tag: Option<&str>) -> String {
    with_tag(tag, "BUSY".to_string())
}

/// One parsed response line (client side).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `OK` with its whitespace-separated payload fields.
    Ok(Vec<String>),
    /// `BUSY` — the request was shed by admission control.
    Busy,
    /// `ERR` with its message.
    Err(String),
}

impl Reply {
    /// Decodes a QUERY payload: the ids after the leading count. `None`
    /// for `BUSY`/`ERR` or a payload that is not `count ids…`.
    pub fn ids(&self) -> Option<Vec<u64>> {
        match self {
            Reply::Ok(fields) => {
                let (count, ids) = fields.split_first()?;
                let n: usize = count.parse().ok()?;
                if ids.len() != n {
                    return None;
                }
                ids.iter().map(|f| f.parse().ok()).collect()
            }
            _ => None,
        }
    }

    /// Decodes a COUNT payload. `None` for `BUSY`/`ERR` or a payload that
    /// is not a single integer.
    pub fn count(&self) -> Option<u64> {
        match self {
            Reply::Ok(fields) => match fields.as_slice() {
                [one] => one.parse().ok(),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Parses one response line into its tag and reply.
pub fn parse_reply(line: &str) -> Result<(Option<String>, Reply), String> {
    let (tag, body) = split_tag(line);
    let tag = tag.map(str::to_string);
    let (status, rest) = match body.split_once(char::is_whitespace) {
        Some((s, r)) => (s, r.trim()),
        None => (body.trim(), ""),
    };
    match status {
        "OK" => Ok((tag, Reply::Ok(rest.split_whitespace().map(str::to_string).collect()))),
        "BUSY" => Ok((tag, Reply::Busy)),
        "ERR" => Ok((tag, Reply::Err(rest.to_string()))),
        _ => Err(format!("malformed response line {line:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tagged_query_with_all_predicate_forms() {
        let (tag, body) = split_tag("#q1 QUERY readings sensor=3 value<=10 ts>=5 v=1..9");
        assert_eq!(tag, Some("q1"));
        let req = parse_request(body).unwrap();
        match req {
            Request::Query { table, preds } => {
                assert_eq!(table, "readings");
                assert_eq!(
                    preds[0],
                    RawPred {
                        column: "sensor".into(),
                        low: Some("3".into()),
                        high: Some("3".into())
                    }
                );
                assert_eq!(
                    preds[1],
                    RawPred { column: "value".into(), low: None, high: Some("10".into()) }
                );
                assert_eq!(
                    preds[2],
                    RawPred { column: "ts".into(), low: Some("5".into()), high: None }
                );
                assert_eq!(
                    preds[3],
                    RawPred { column: "v".into(), low: Some("1".into()), high: Some("9".into()) }
                );
            }
            other => panic!("expected Query, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FLY readings").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("COUNT t sensor").is_err());
        assert!(parse_request("COUNT t =3").is_err());
        assert!(parse_request("COUNT t sensor=").is_err());
        assert!(parse_request("COUNT t sensor=1..").is_err());
        assert!(parse_request("TABLES extra").is_err());
    }

    #[test]
    fn untyped_bounds_type_against_schema() {
        let p = RawPred { column: "v".into(), low: Some("2".into()), high: Some("7".into()) };
        let r = p.to_range(ColumnType::U16).unwrap();
        assert_eq!(r, ValueRange { low: Some(Value::U16(2)), high: Some(Value::U16(7)) });
        assert!(p.to_range(ColumnType::I8).is_ok());
        let bad = RawPred { column: "v".into(), low: Some("300".into()), high: None };
        assert!(bad.to_range(ColumnType::U8).is_err());
    }

    #[test]
    fn replies_round_trip() {
        let line = fmt_ok_ids(Some("a"), &[3, 5, 8]);
        assert_eq!(line, "#a OK 3 3 5 8");
        let (tag, reply) = parse_reply(&line).unwrap();
        assert_eq!(tag.as_deref(), Some("a"));
        assert_eq!(reply, Reply::Ok(vec!["3".into(), "3".into(), "5".into(), "8".into()]));
        assert_eq!(parse_reply(&fmt_busy(None)).unwrap(), (None, Reply::Busy));
        let (_, e) = parse_reply(&fmt_err(None, "no such\ntable")).unwrap();
        assert_eq!(e, Reply::Err("no such table".into()));
    }
}
