//! # imprints-server — the network front-end of the imprints engine
//!
//! Turns [`imprints_engine`] from a library into a service: a
//! thread-per-connection TCP server on `std::net` speaking a newline-
//! delimited text protocol ([`protocol`]: `QUERY`/`COUNT`/`TABLES`/
//! `STATS`/`PING`, tagged responses so clients can pipeline), with two
//! layers between the socket and the engine's worker pool:
//!
//! * **Admission control** ([`admission`]): a bounded queue with
//!   shed-on-overload — an offer past the configured depth gets an
//!   immediate `BUSY` reply, never a hang — and per-client round-robin
//!   dequeue, so a pipelining hog cannot starve its neighbors.
//! * **Batched dispatch** ([`Server`]'s dispatcher thread): requests
//!   admitted in the same tick are grouped by table and evaluated as one
//!   shared morsel pass ([`imprints_engine::Table::query_batch`]) — one
//!   pinned snapshot and one sweep per segment answer the whole group,
//!   which is where the paper's cacheline-granular index pays off under
//!   concurrent load.
//!
//! Shutdown ([`Server::shutdown`], also run on `Drop`) drains gracefully:
//! stop accepting, `BUSY` to everything queued, finish the in-flight
//! batch, hang up, and only then stop the engine's maintenance daemon.
//!
//! ```
//! use std::sync::Arc;
//! use colstore::{ColumnType, Value};
//! use imprints_engine::{Engine, EngineConfig};
//! use imprints_server::{Client, Server, ServerConfig};
//!
//! let engine = Arc::new(Engine::new(EngineConfig::default()));
//! let t = engine.create_table("readings", &[("sensor", ColumnType::U16)]).unwrap();
//! for i in 0..100u64 {
//!     t.append_row(&[Value::U16((i % 8) as u16)]).unwrap();
//! }
//! let server = Server::start(engine, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.count("readings", &["sensor=3"]).unwrap();
//! assert_eq!(reply.count(), Some(13));
//! ```

#![warn(missing_docs)]

pub mod admission;
mod batcher;
pub mod client;
mod conn;
pub mod protocol;
pub mod server;

pub use admission::Admission;
pub use client::{request_line, Client};
pub use protocol::{parse_reply, RawPred, Reply, Request};
pub use server::{Server, ServerConfig, ServerStats};
