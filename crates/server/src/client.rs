//! A small blocking client for the line protocol, used by the example, the
//! `qps` bench experiment and the loopback tests. One `Client` owns one
//! connection; [`send`](Client::send)/[`recv_reply`](Client::recv_reply)
//! expose the raw halves so callers can pipeline tagged requests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{self, Reply};

/// A blocking connection to an [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, no timeouts).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sets the socket read timeout (both halves share the socket).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request line (the newline is appended here).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Receives one raw response line, without its newline.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Receives and parses one response line into `(tag, reply)`.
    pub fn recv_reply(&mut self) -> io::Result<(Option<String>, Reply)> {
        let line = self.recv()?;
        protocol::parse_reply(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One synchronous request/response round trip.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<Reply> {
        self.send(line)?;
        Ok(self.recv_reply()?.1)
    }

    /// `QUERY table preds…` round trip.
    pub fn query(&mut self, table: &str, preds: &[&str]) -> io::Result<Reply> {
        self.roundtrip(&request_line("QUERY", table, preds))
    }

    /// `COUNT table preds…` round trip.
    pub fn count(&mut self, table: &str, preds: &[&str]) -> io::Result<Reply> {
        self.roundtrip(&request_line("COUNT", table, preds))
    }

    /// `PING` round trip (liveness).
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.roundtrip("PING")
    }
}

/// Builds a `VERB table pred…` request line from wire-format predicate
/// tokens (e.g. `"sensor=3"`, `"value<=10"`, `"ts=5..9"`).
pub fn request_line(verb: &str, table: &str, preds: &[&str]) -> String {
    let mut line = format!("{verb} {table}");
    for p in preds {
        line.push(' ');
        line.push_str(p);
    }
    line
}
