//! Server assembly: listener, accept loop, shared state and the graceful
//! shutdown sequence.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use imprints_engine::{Engine, EngineConfig};

use crate::admission::Admission;
use crate::batcher;
use crate::conn::{self, Conn};
use crate::protocol::{fmt_busy, RawPred};

/// Server tuning. The admission/batching knobs default from
/// [`ServiceConfig`](imprints_engine::ServiceConfig), so a deployment
/// normally builds this with [`ServerConfig::from_engine`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port `0` picks an ephemeral port; read it back with
    /// [`Server::local_addr`].
    pub addr: String,
    /// Admission queue depth (see
    /// [`ServiceConfig::queue_depth`](imprints_engine::ServiceConfig::queue_depth)).
    pub queue_depth: usize,
    /// Maximum requests per dispatched batch (see
    /// [`ServiceConfig::batch_max`](imprints_engine::ServiceConfig::batch_max)).
    pub batch_max: usize,
    /// Batching tick: how long the dispatcher lingers after the first
    /// admitted request so concurrent arrivals share its morsel pass.
    pub batch_tick: Duration,
    /// Hard cap on one request line's length in bytes (newline excluded).
    /// A longer line is discarded as it streams in — bounded memory per
    /// connection — and answered with an untagged `ERR`.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::from_engine(&EngineConfig::default())
    }
}

impl ServerConfig {
    /// Loopback config on an ephemeral port, taking the admission and
    /// batching knobs from `cfg.service`.
    pub fn from_engine(cfg: &EngineConfig) -> ServerConfig {
        let s = &cfg.service;
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: s.queue_depth,
            batch_max: s.batch_max,
            batch_tick: s.batch_tick(),
            // Generous for QUERY lines with many predicates, small enough
            // that a hostile pipeline cannot balloon reader memory.
            max_line_bytes: 64 * 1024,
        }
    }
}

/// A snapshot of the server's counters (also served as `STATS` on the
/// wire).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request lines received (including inline verbs and shed requests).
    pub requests: u64,
    /// QUERY/COUNT requests admitted to the dispatch queue.
    pub admitted: u64,
    /// QUERY/COUNT requests shed with `BUSY`.
    pub shed: u64,
    /// Requests queued right now.
    pub queued: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests dispatched inside those batches.
    pub batched_requests: u64,
}

/// One queued QUERY/COUNT request, bound to its connection's write half.
pub(crate) struct Ticket {
    pub conn: Arc<Conn>,
    pub tag: Option<String>,
    pub table: String,
    pub preds: Vec<RawPred>,
    /// `true` for an `OR` group (union of the predicates).
    pub any: bool,
    pub count_only: bool,
}

impl Ticket {
    /// Answers the ticket with `BUSY` (shed after admission, at drain).
    pub fn reject(self) {
        let line = fmt_busy(self.tag.as_deref());
        self.conn.send(&line);
    }
}

/// Cumulative server counters (lock-free; read by `STATS`).
#[derive(Default)]
pub(crate) struct Counters {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
}

/// State shared by the accept loop, connection readers and the dispatcher.
pub(crate) struct Shared {
    pub engine: Arc<Engine>,
    pub cfg: ServerConfig,
    pub admission: Admission<Ticket>,
    pub counters: Counters,
    stopping: AtomicBool,
    /// Socket clones of live connections, used to hang them up at
    /// shutdown; readers deregister themselves on natural disconnect.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    pub fn stopping(&self) -> bool {
        // ordering: SeqCst pairs with the store in `shutdown`; the flag
        // gates BUSY-draining against the listener poke and queue close,
        // and the handful of loads per request make the strongest order
        // free in practice — not worth a weaker-order proof.
        self.stopping.load(Ordering::SeqCst)
    }

    pub fn forget_conn(&self, id: u64) {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
    }

    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            admitted: self.admission.admitted(),
            shed: self.admission.shed(),
            queued: self.admission.queued() as u64,
            batches: self.counters.batches.load(Ordering::Relaxed),
            batched_requests: self.counters.batched_requests.load(Ordering::Relaxed),
        }
    }
}

/// The running server: accept thread + per-connection readers + one
/// batching dispatcher in front of the engine's worker pool.
///
/// Dropping the server runs the full graceful [`shutdown`](Server::shutdown).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
    dispatcher: Option<thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    down: bool,
}

impl Server {
    /// Binds `cfg.addr` and starts serving `engine`.
    pub fn start(engine: Arc<Engine>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.queue_depth),
            engine,
            cfg,
            counters: Counters::default(),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
        });
        let dispatcher = {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("imprints-dispatch".to_string())
                .spawn(move || batcher::run(&s))?
        };
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let s = Arc::clone(&shared);
            let threads = Arc::clone(&conn_threads);
            thread::Builder::new()
                .name("imprints-accept".to_string())
                .spawn(move || accept_loop(listener, s, threads))?
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            conn_threads,
            down: false,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful drain, in order:
    ///
    /// 1. stop accepting connections;
    /// 2. close the admission queue — everything still queued is answered
    ///    `BUSY`, requests arriving during the drain are answered `BUSY`
    ///    by their readers, and the dispatcher finishes its in-flight
    ///    batch before exiting (a half-dispatched batch is never aborted);
    /// 3. hang up the remaining connections and join their readers;
    /// 4. only then stop the engine's maintenance daemon.
    ///
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        // ordering: SeqCst pairs with the load in `Shared::stopping`; the
        // self-connect poke below must observe the flag already set, and a
        // once-per-shutdown store has no cost to optimize.
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Poke the listener awake so the accept loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for ticket in self.shared.admission.close() {
            ticket.reject();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        for (_, sock) in self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner).drain() {
            let _ = sock.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> =
            self.conn_threads.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.shared.engine.stop_maintenance();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_nodelay(true);
        let (writer, registered) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(w), Ok(r)) => (w, r),
            _ => continue,
        };
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        shared.conns.lock().unwrap_or_else(PoisonError::into_inner).insert(id, registered);
        let conn = Arc::new(Conn::new(id, writer));
        let s = Arc::clone(&shared);
        if let Ok(handle) = thread::Builder::new()
            .name(format!("imprints-conn-{id}"))
            .spawn(move || conn::serve(s, conn, stream))
        {
            threads.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        }
    }
}
