//! Range-query evaluation over the imprints index (Algorithm 3).
//!
//! The evaluator walks the cacheline dictionary. For a *distinct* run it
//! probes `cnt` imprint vectors, one cacheline each; for a *repeat* run one
//! probe decides the fate of all `cnt` cachelines at once. Each probed
//! vector falls into one of three cases:
//!
//! 1. `imprint & mask == 0` — no value can match, the cacheline(s) are
//!    skipped without being read;
//! 2. `imprint & !innermask == 0` — every set bit is an inner bin, so every
//!    value matches: ids are emitted without reading the data;
//! 3. otherwise the cacheline is fetched and each value is compared against
//!    the predicate to weed out false positives.
//!
//! Besides materialized evaluation the module offers the
//! late-materialization path of §3: [`candidates`] returns the qualifying
//! cachelines as a [`CachelineSet`] (to be merge-joined across attributes)
//! and [`refine`] applies the false-positive check afterwards.
//!
//! The false-positive check itself — case 3's per-value compare — routes
//! through the [`crate::simd`] refinement kernels: the predicate is
//! compiled once per evaluation into a [`PredicateKernel`] and each
//! fetched cacheline is weeded either by the `u64`-word SWAR kernel or by
//! the scalar oracle loop, per the ambient [`RefineKernel`] selection (or
//! the explicit `*_with_kernel` entry points). The `value_comparisons`
//! statistic counts values the kernel actually examined, identically
//! under both kernels — a predicate that can match nothing examines none.

use colstore::{AccessStats, CachelineSet, Column, IdList, RangePredicate, Scalar};

use crate::index::ColumnImprints;
use crate::masks;
use crate::simd::{PredicateKernel, RefineKernel};

/// Evaluation statistics: the generic [`AccessStats`] plus imprint-specific
/// breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImprintStats {
    /// The implementation-independent counters (Fig. 11).
    pub access: AccessStats,
    /// Cachelines emitted wholesale through the `innermask` fast path — no
    /// value of these lines was ever compared.
    pub lines_full: u64,
    /// Row ids emitted through that fast path, counted exactly. A partial
    /// tail cacheline emitted wholesale contributes fewer than
    /// `values_per_block` ids, so `lines_full * values_per_block` would
    /// overestimate — consumers reconstructing "ids that went through the
    /// value check" must subtract this counter, not a product.
    pub ids_via_full_lines: u64,
    /// Cachelines fetched and checked value-by-value.
    pub lines_checked: u64,
}

#[inline]
fn emit_ids(res: &mut Vec<u64>, range: std::ops::Range<u64>) {
    res.extend(range);
}

/// The false-positive weeding step of Algorithm 3, routed through the
/// compiled refinement kernel (see [`crate::simd`]): appends matching ids
/// of `values[range]` and bumps `comparisons` by the values the kernel
/// actually examined (zero when the predicate can match nothing).
#[inline]
fn check_values<T: Scalar>(
    res: &mut Vec<u64>,
    values: &[T],
    kernel: &PredicateKernel<T>,
    range: std::ops::Range<u64>,
    comparisons: &mut u64,
) {
    kernel.append_matches(values, range, res, comparisons);
}

/// Evaluates `pred` over `col` through the index: Algorithm 3, returning
/// the materialized ordered id list plus statistics.
///
/// # Panics
/// Panics if `col` is not the column the index was built on (length
/// mismatch).
pub fn evaluate<T: Scalar>(
    idx: &ColumnImprints<T>,
    col: &Column<T>,
    pred: &RangePredicate<T>,
) -> (IdList, ImprintStats) {
    evaluate_with_kernel(idx, col, pred, crate::simd::ambient_kernel())
}

/// [`evaluate`] under an explicit refinement kernel — the differential
/// harness races the SWAR kernel against the scalar oracle through this.
pub fn evaluate_with_kernel<T: Scalar>(
    idx: &ColumnImprints<T>,
    col: &Column<T>,
    pred: &RangePredicate<T>,
    kernel: RefineKernel,
) -> (IdList, ImprintStats) {
    let masks = masks::make_masks(idx.binning(), pred);
    evaluate_with_masks(idx, col, &PredicateKernel::with_kernel(pred, kernel), masks)
}

/// [`evaluate`] with the `innermask` fast path disabled: every matching
/// cacheline takes the value-check route. Exists for the ablation
/// benchmark quantifying what the fast path buys (design choice 4 of
/// DESIGN.md §7). Results are identical, only costs differ.
pub fn evaluate_no_innermask<T: Scalar>(
    idx: &ColumnImprints<T>,
    col: &Column<T>,
    pred: &RangePredicate<T>,
) -> (IdList, ImprintStats) {
    let mut masks = masks::make_masks(idx.binning(), pred);
    masks.innermask = 0;
    evaluate_with_masks(idx, col, &PredicateKernel::new(pred), masks)
}

fn evaluate_with_masks<T: Scalar>(
    idx: &ColumnImprints<T>,
    col: &Column<T>,
    kernel: &PredicateKernel<T>,
    masks: crate::masks::QueryMasks,
) -> (IdList, ImprintStats) {
    assert_eq!(col.len(), idx.rows(), "index does not cover this column");
    let mut stats = ImprintStats::default();
    let mut res: Vec<u64> = Vec::new();
    if masks.mask == 0 {
        stats.access.lines_skipped = idx.line_count();
        return (IdList::from_sorted(res), stats);
    }
    let values = col.values();
    let vpb = idx.values_per_block() as u64;
    let rows = idx.rows() as u64;
    let (imprints, dict) = idx.parts();
    let not_inner = !masks.innermask;

    let mut i_cnt = 0usize; // position in the imprint array
    let mut line = 0u64; // current cacheline number
    for e in dict {
        let cnt = e.cnt() as u64;
        if !e.repeat() {
            // cnt distinct imprints, one cacheline each.
            for j in 0..cnt {
                let imp = imprints[i_cnt + j as usize];
                stats.access.index_probes += 1;
                if imp & masks.mask != 0 {
                    let ids = line * vpb..((line + 1) * vpb).min(rows);
                    if imp & not_inner == 0 {
                        stats.lines_full += 1;
                        stats.ids_via_full_lines += ids.end - ids.start;
                        emit_ids(&mut res, ids);
                    } else {
                        stats.lines_checked += 1;
                        stats.access.lines_fetched += 1;
                        check_values(
                            &mut res,
                            values,
                            kernel,
                            ids,
                            &mut stats.access.value_comparisons,
                        );
                    }
                } else {
                    stats.access.lines_skipped += 1;
                }
                line += 1;
            }
            i_cnt += cnt as usize;
        } else {
            // One imprint vector describing cnt consecutive cachelines.
            let imp = imprints[i_cnt];
            stats.access.index_probes += 1;
            if imp & masks.mask != 0 {
                let ids = line * vpb..((line + cnt) * vpb).min(rows);
                if imp & not_inner == 0 {
                    stats.lines_full += cnt;
                    stats.ids_via_full_lines += ids.end - ids.start;
                    emit_ids(&mut res, ids);
                } else {
                    stats.lines_checked += cnt;
                    stats.access.lines_fetched += cnt;
                    check_values(
                        &mut res,
                        values,
                        kernel,
                        ids,
                        &mut stats.access.value_comparisons,
                    );
                }
            } else {
                stats.access.lines_skipped += cnt;
            }
            i_cnt += 1;
            line += cnt;
        }
    }
    // The un-finalized partial tail line, if any.
    if let Some((tail_imp, _)) = idx.tail() {
        stats.access.index_probes += 1;
        if tail_imp & masks.mask != 0 {
            let ids = line * vpb..rows;
            if tail_imp & not_inner == 0 {
                stats.lines_full += 1;
                stats.ids_via_full_lines += ids.end - ids.start;
                emit_ids(&mut res, ids);
            } else {
                stats.lines_checked += 1;
                stats.access.lines_fetched += 1;
                check_values(&mut res, values, kernel, ids, &mut stats.access.value_comparisons);
            }
        } else {
            stats.access.lines_skipped += 1;
        }
    }
    (IdList::from_sorted(res), stats)
}

/// Counts qualifying rows without materializing ids. Same traversal as
/// [`evaluate`]; fully-covered lines contribute their cardinality directly.
pub fn count<T: Scalar>(
    idx: &ColumnImprints<T>,
    col: &Column<T>,
    pred: &RangePredicate<T>,
) -> (u64, ImprintStats) {
    count_with_kernel(idx, col, pred, crate::simd::ambient_kernel())
}

/// [`count`] under an explicit refinement kernel (differential testing).
pub fn count_with_kernel<T: Scalar>(
    idx: &ColumnImprints<T>,
    col: &Column<T>,
    pred: &RangePredicate<T>,
    kernel: RefineKernel,
) -> (u64, ImprintStats) {
    assert_eq!(col.len(), idx.rows(), "index does not cover this column");
    let mut stats = ImprintStats::default();
    let masks = masks::make_masks(idx.binning(), pred);
    if masks.mask == 0 {
        stats.access.lines_skipped = idx.line_count();
        return (0, stats);
    }
    let kernel = PredicateKernel::with_kernel(pred, kernel);
    let values = col.values();
    let vpb = idx.values_per_block() as u64;
    let rows = idx.rows() as u64;
    let not_inner = !masks.innermask;
    let mut total = 0u64;
    for run in idx.runs() {
        stats.access.index_probes += 1;
        if run.imprint & masks.mask == 0 {
            stats.access.lines_skipped += run.line_count;
            continue;
        }
        let start = run.first_line * vpb;
        let end = ((run.first_line + run.line_count) * vpb).min(rows);
        if run.imprint & not_inner == 0 {
            stats.lines_full += run.line_count;
            stats.ids_via_full_lines += end - start;
            total += end - start;
        } else {
            stats.lines_checked += run.line_count;
            stats.access.lines_fetched += run.line_count;
            total += kernel.count_matches(values, start..end, &mut stats.access.value_comparisons);
        }
    }
    (total, stats)
}

/// Late materialization, step 1 (§3): the cachelines that *may* contain
/// matches, as a coalesced [`CachelineSet`] in cacheline space.
pub fn candidates<T: Scalar>(
    idx: &ColumnImprints<T>,
    pred: &RangePredicate<T>,
) -> (CachelineSet, ImprintStats) {
    let mut stats = ImprintStats::default();
    let masks = masks::make_masks(idx.binning(), pred);
    let mut set = CachelineSet::new();
    if masks.mask == 0 {
        stats.access.lines_skipped = idx.line_count();
        return (set, stats);
    }
    for run in idx.runs() {
        stats.access.index_probes += 1;
        if run.imprint & masks.mask != 0 {
            set.push_run(run.first_line, run.first_line + run.line_count);
        } else {
            stats.access.lines_skipped += run.line_count;
        }
    }
    (set, stats)
}

/// Like [`candidates`], but expressed as *row-id* ranges, so candidate sets
/// of columns with different value widths (hence different cacheline
/// geometry) can be merge-joined with [`CachelineSet::intersect`].
pub fn candidate_id_ranges<T: Scalar>(
    idx: &ColumnImprints<T>,
    pred: &RangePredicate<T>,
) -> (CachelineSet, ImprintStats) {
    let (lines, stats) = candidates(idx, pred);
    let vpb = idx.values_per_block() as u64;
    let rows = idx.rows() as u64;
    let mut ids = CachelineSet::new();
    for r in lines.runs() {
        let start = r.start * vpb;
        let end = (r.end * vpb).min(rows);
        if start < end {
            ids.push_run(start, end);
        }
    }
    (ids, stats)
}

/// Sets row bits `start..end` in a row-space bitvec (`words[i]` covers rows
/// `64*i..64*i+64`, row `r` = bit `r % 64` of word `r / 64`).
fn set_row_bits(words: &mut [u64], start: u64, end: u64) {
    if start >= end {
        return;
    }
    let (sw, sb) = ((start / 64) as usize, start % 64);
    let (ew, eb) = ((end / 64) as usize, end % 64);
    if sw == ew {
        words[sw] |= ((1u64 << (end - start)) - 1) << sb;
        return;
    }
    words[sw] |= u64::MAX << sb;
    for w in &mut words[sw + 1..ew] {
        *w = u64::MAX;
    }
    if eb > 0 {
        words[ew] |= (1u64 << eb) - 1;
    }
}

/// Classifies every row of the column into the three outcomes of
/// Algorithm 3, expressed as **row-space bitvecs** so classifications of
/// columns with different value widths (hence different cacheline
/// geometry) can be ANDed word-wise by a multi-predicate plan:
///
/// * bit set in `cand` — the row's cacheline imprint overlaps `masks.mask`
///   (the row may match);
/// * bit set in `full` — additionally every set imprint bit is an inner
///   bin (the row *does* match, no value check needed). `full ⊆ cand`.
///
/// Rows in neither vector are guaranteed non-matching. Both slices must
/// hold `rows.div_ceil(64)` words and arrive zeroed (bits are only ever
/// set). The partial tail line, when present, is classified like any other
/// run ([`ColumnImprints::runs`] yields it). Returns the index-side costs:
/// one probe per imprint run, skips counted in cachelines.
///
/// # Panics
/// Panics if the slices are shorter than the column's row count requires.
pub fn classify_rows<T: Scalar>(
    idx: &ColumnImprints<T>,
    masks: &crate::masks::QueryMasks,
    cand: &mut [u64],
    full: &mut [u64],
) -> ImprintStats {
    let mut stats = ImprintStats::default();
    if masks.mask == 0 {
        stats.access.lines_skipped = idx.line_count();
        return stats;
    }
    let vpb = idx.values_per_block() as u64;
    let rows = idx.rows() as u64;
    let words = rows.div_ceil(64) as usize;
    assert!(cand.len() >= words && full.len() >= words, "bitvecs shorter than the column");
    let not_inner = !masks.innermask;
    for run in idx.runs() {
        stats.access.index_probes += 1;
        if run.imprint & masks.mask == 0 {
            stats.access.lines_skipped += run.line_count;
            continue;
        }
        let start = run.first_line * vpb;
        let end = ((run.first_line + run.line_count) * vpb).min(rows);
        set_row_bits(cand, start, end);
        if run.imprint & not_inner == 0 {
            // Whether the line is *emitted* wholesale is the plan's call
            // (another predicate may still need a check), so lines_full /
            // fetch costs are billed by the consumer, not here.
            set_row_bits(full, start, end);
        }
    }
    stats
}

/// Late materialization, step 2: weeds out false positives from an
/// *id-space* candidate set (as produced by [`candidate_id_ranges`],
/// possibly intersected across attributes) and materializes the final ids.
pub fn refine<T: Scalar>(
    col: &Column<T>,
    pred: &RangePredicate<T>,
    id_candidates: &CachelineSet,
    stats: &mut ImprintStats,
) -> IdList {
    refine_with_kernel(col, pred, id_candidates, stats, crate::simd::ambient_kernel())
}

/// [`refine`] under an explicit refinement kernel — what the `refine`
/// bench experiment times scalar-vs-SWAR and the differential harness
/// cross-checks.
pub fn refine_with_kernel<T: Scalar>(
    col: &Column<T>,
    pred: &RangePredicate<T>,
    id_candidates: &CachelineSet,
    stats: &mut ImprintStats,
    kernel: RefineKernel,
) -> IdList {
    let kernel = PredicateKernel::with_kernel(pred, kernel);
    let values = col.values();
    let mut res = Vec::new();
    for r in id_candidates.runs() {
        check_values(&mut res, values, &kernel, r, &mut stats.access.value_comparisons);
    }
    IdList::from_sorted(res)
}

/// Full multi-attribute conjunction over two columns of possibly different
/// types: per-column candidate generation, id-space merge-join, then one
/// refinement pass per column — the query plan sketched at the end of §3.
pub fn conjunction2<A: Scalar, B: Scalar>(
    (idx_a, col_a, pred_a): (&ColumnImprints<A>, &Column<A>, &RangePredicate<A>),
    (idx_b, col_b, pred_b): (&ColumnImprints<B>, &Column<B>, &RangePredicate<B>),
) -> (IdList, ImprintStats) {
    assert_eq!(col_a.len(), col_b.len(), "conjunction requires one relation");
    let mut stats = ImprintStats::default();
    let (ca, sa) = candidate_id_ranges(idx_a, pred_a);
    let (cb, sb) = candidate_id_ranges(idx_b, pred_b);
    stats.access.merge(&sa.access);
    stats.access.merge(&sb.access);
    let joint = ca.intersect(&cb);
    let a_ids = refine(col_a, pred_a, &joint, &mut stats);
    // Refine B only on ids that survived A (the increasing-selectivity
    // expectation of §3). Survivors are scattered ids, so the per-value
    // kernel check applies, not the chunked one.
    let values_b = col_b.values();
    let kernel_b = PredicateKernel::new(pred_b);
    let mut out = Vec::with_capacity(a_ids.len());
    for id in a_ids.iter() {
        stats.access.value_comparisons += 1;
        if kernel_b.matches(&values_b[id as usize]) {
            out.push(id);
        }
    }
    (IdList::from_sorted(out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildOptions;

    /// Oracle: brute-force scan.
    fn oracle<T: Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> Vec<u64> {
        col.values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    fn check<T: Scalar>(col: &Column<T>, idx: &ColumnImprints<T>, pred: &RangePredicate<T>) {
        let (ids, _) = evaluate(idx, col, pred);
        assert_eq!(ids.as_slice(), oracle(col, pred), "predicate {pred}");
        let (n, _) = count(idx, col, pred);
        assert_eq!(n as usize, ids.len());
    }

    #[test]
    fn clustered_int_column_all_selectivities() {
        let col: Column<i32> = (0..20_000).map(|i| i / 20).collect();
        let idx = ColumnImprints::build(&col);
        for (lo, hi) in [(0, 0), (0, 100), (100, 900), (500, 501), (999, 2000), (-10, -1)] {
            check(&col, &idx, &RangePredicate::between(lo, hi));
            check(&col, &idx, &RangePredicate::half_open(lo, hi));
        }
        check(&col, &idx, &RangePredicate::all());
        check(&col, &idx, &RangePredicate::less_than(250));
        check(&col, &idx, &RangePredicate::at_least(750));
    }

    #[test]
    fn random_column_matches_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let col: Column<i64> = (0..30_000).map(|_| rng.gen_range(-1000..1000)).collect();
        let idx = ColumnImprints::build(&col);
        idx.verify(&col).unwrap();
        for _ in 0..30 {
            let a = rng.gen_range(-1100..1100);
            let b = rng.gen_range(-1100..1100);
            check(&col, &idx, &RangePredicate::between(a.min(b), a.max(b)));
        }
    }

    #[test]
    fn float_column_with_nan() {
        let mut vals: Vec<f64> = (0..5000).map(|i| (i as f64) / 10.0).collect();
        vals[1234] = f64::NAN;
        vals[77] = f64::NEG_INFINITY;
        let col: Column<f64> = Column::from(vals);
        let idx = ColumnImprints::build(&col);
        idx.verify(&col).unwrap();
        for pred in [
            RangePredicate::between(10.0, 20.0),
            RangePredicate::less_than(1.0),
            RangePredicate::at_least(400.0),
            RangePredicate::all(),
        ] {
            check(&col, &idx, &pred);
        }
    }

    #[test]
    fn innermask_fast_path_emits_without_comparisons() {
        // A sorted column: mid-range queries fully cover interior lines.
        let col: Column<i32> = (0..64_000).collect();
        let idx = ColumnImprints::build(&col);
        let pred = RangePredicate::between(10_000, 50_000);
        let (ids, stats) = evaluate(&idx, &col, &pred);
        assert_eq!(ids.as_slice(), oracle(&col, &pred));
        assert!(stats.lines_full > 0, "expected innermask fast path to fire");
        // Only border lines need value checks: comparisons ≪ result size.
        assert!(
            stats.access.value_comparisons < ids.len() as u64 / 10,
            "comparisons {} too high for {} results",
            stats.access.value_comparisons,
            ids.len()
        );
    }

    #[test]
    fn skipping_works_on_clustered_data() {
        let col: Column<i32> = (0..64_000).map(|i| i / 1000).collect();
        let idx = ColumnImprints::build(&col);
        let (_, stats) = evaluate(&idx, &col, &RangePredicate::between(10, 11));
        assert!(
            stats.access.lines_skipped > idx.line_count() * 8 / 10,
            "most lines should be skipped, skipped {} of {}",
            stats.access.lines_skipped,
            idx.line_count()
        );
    }

    #[test]
    fn empty_predicate_skips_everything() {
        let col: Column<i32> = (0..1000).collect();
        let idx = ColumnImprints::build(&col);
        let (ids, stats) = evaluate(&idx, &col, &RangePredicate::between(10, 5));
        assert!(ids.is_empty());
        assert_eq!(stats.access.index_probes, 0);
        assert_eq!(stats.access.lines_skipped, idx.line_count());
    }

    #[test]
    fn partial_tail_line_included() {
        // 1003 values: 62 full lines + 11-value tail; query the tail.
        let col: Column<i32> = (0..1003).collect();
        let idx = ColumnImprints::build(&col);
        let pred = RangePredicate::at_least(1000);
        let (ids, _) = evaluate(&idx, &col, &pred);
        assert_eq!(ids.as_slice(), &[1000, 1001, 1002]);
    }

    #[test]
    fn repeat_runs_probed_once() {
        // Constant column: one repeat run; matching query probes once.
        let col: Column<u8> = std::iter::repeat_n(5u8, 6400).collect();
        let idx = ColumnImprints::build(&col);
        assert_eq!(idx.dict_len(), 1);
        let (ids, stats) = evaluate(&idx, &col, &RangePredicate::equals(5));
        assert_eq!(ids.len(), 6400);
        assert_eq!(stats.access.index_probes, 1);
        // A value below every border maps to bin 0, which the constant
        // column's imprint never sets: all 100 lines skip on one probe.
        let (ids, stats) = evaluate(&idx, &col, &RangePredicate::equals(3));
        assert!(ids.is_empty());
        assert_eq!(stats.access.index_probes, 1);
        assert_eq!(stats.access.lines_skipped, 100);
    }

    #[test]
    fn candidates_cover_all_matches() {
        let col: Column<i32> = (0..10_000).map(|i| (i * 17) % 500).collect();
        let idx = ColumnImprints::build(&col);
        let pred = RangePredicate::between(100, 120);
        let (cands, _) = candidates(&idx, &pred);
        let vpb = idx.values_per_block() as u64;
        for id in oracle(&col, &pred) {
            assert!(cands.contains(id / vpb), "matching id {id} not in candidate lines");
        }
    }

    #[test]
    fn refine_after_candidates_equals_evaluate() {
        let col: Column<i32> = (0..10_000).map(|i| (i * 13) % 700).collect();
        let idx = ColumnImprints::build(&col);
        let pred = RangePredicate::between(50, 200);
        let (idr, mut stats) = candidate_id_ranges(&idx, &pred);
        let refined = refine(&col, &pred, &idr, &mut stats);
        let (direct, _) = evaluate(&idx, &col, &pred);
        assert_eq!(refined, direct);
    }

    #[test]
    fn conjunction_two_attributes() {
        // Same relation, different widths: i32 and f64.
        let n = 8000usize;
        let a: Column<i32> = (0..n as i32).map(|i| i % 100).collect();
        let b: Column<f64> = (0..n).map(|i| (i % 37) as f64).collect();
        let ia = ColumnImprints::build(&a);
        let ib = ColumnImprints::build(&b);
        let pa = RangePredicate::between(10, 20);
        let pb = RangePredicate::between(5.0, 9.0);
        let (ids, _) = conjunction2((&ia, &a, &pa), (&ib, &b, &pb));
        let expect: Vec<u64> = (0..n as u64)
            .filter(|&i| {
                let va = a.get(i as usize).unwrap();
                let vb = b.get(i as usize).unwrap();
                (10..=20).contains(&va) && (5.0..=9.0).contains(&vb)
            })
            .collect();
        assert_eq!(ids.as_slice(), expect.as_slice());
    }

    #[test]
    fn non_default_block_size_correctness() {
        let col: Column<i32> = (0..9999).map(|i| (i * 31) % 444).collect();
        for block in [64usize, 128, 256, 512] {
            let idx = ColumnImprints::build_with(
                &col,
                BuildOptions { block_bytes: block, ..Default::default() },
            );
            let pred = RangePredicate::between(100, 200);
            let (ids, _) = evaluate(&idx, &col, &pred);
            assert_eq!(ids.as_slice(), oracle(&col, &pred), "block={block}");
        }
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn wrong_column_length_panics() {
        let col: Column<i32> = (0..100).collect();
        let idx = ColumnImprints::build(&col);
        let other: Column<i32> = (0..50).collect();
        let _ = evaluate(&idx, &other, &RangePredicate::all());
    }

    #[test]
    fn no_innermask_same_results_more_comparisons() {
        let col: Column<i32> = (0..64_000).collect();
        let idx = ColumnImprints::build(&col);
        let pred = RangePredicate::between(10_000, 50_000);
        let (fast, s_fast) = evaluate(&idx, &col, &pred);
        let (slow, s_slow) = evaluate_no_innermask(&idx, &col, &pred);
        assert_eq!(fast, slow, "ablation must not change answers");
        assert!(s_slow.access.value_comparisons > s_fast.access.value_comparisons * 10);
        assert_eq!(s_slow.lines_full, 0);
    }

    /// Satellite regression: `check_values` used to bump `comparisons` by
    /// the full range even when the kernel early-outs without examining a
    /// value — an empty predicate refining a candidate set must report
    /// zero comparisons (phantom comparisons with zero matches read as a
    /// 100% false-positive rate upstream and trigger spurious rebuilds).
    #[test]
    fn refine_with_empty_predicate_reports_zero_comparisons() {
        let col: Column<i32> = (0..4096).collect();
        let mut cands = CachelineSet::new();
        cands.push_run(0, 4096);
        for kernel in [RefineKernel::Scalar, RefineKernel::Swar] {
            let pred = RangePredicate::between(10, 5);
            let mut stats = ImprintStats::default();
            let ids = refine_with_kernel(&col, &pred, &cands, &mut stats, kernel);
            assert!(ids.is_empty());
            assert_eq!(
                stats.access.value_comparisons, 0,
                "{kernel:?}: an empty predicate examines no values"
            );
            // A non-empty predicate over the same candidates is billed in
            // full — the counter reflects values actually compared.
            let pred = RangePredicate::between(5, 10);
            let mut stats = ImprintStats::default();
            let ids = refine_with_kernel(&col, &pred, &cands, &mut stats, kernel);
            assert_eq!(ids.len(), 6);
            assert_eq!(stats.access.value_comparisons, 4096);
        }
    }

    /// Both refinement kernels must agree byte-for-byte — ids *and*
    /// statistics — on every entry point (the module-level differential
    /// harness in `tests/kernel_differential.rs` proptests this broadly;
    /// this is the fast in-crate smoke version).
    #[test]
    fn swar_and_scalar_kernels_agree_end_to_end() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        // 30013 rows: not a multiple of any values_per_block.
        let col: Column<i64> = (0..30_013).map(|_| rng.gen_range(-1000..1000)).collect();
        let idx = ColumnImprints::build(&col);
        for _ in 0..20 {
            let a = rng.gen_range(-1100..1100);
            let b = rng.gen_range(-1100..1100);
            let pred = RangePredicate::between(a.min(b), a.max(b));
            let (ids_s, st_s) = evaluate_with_kernel(&idx, &col, &pred, RefineKernel::Scalar);
            let (ids_v, st_v) = evaluate_with_kernel(&idx, &col, &pred, RefineKernel::Swar);
            assert_eq!(ids_s, ids_v, "{pred}");
            assert_eq!(st_s, st_v, "stats must not depend on the kernel: {pred}");
            let (n_s, cst_s) = count_with_kernel(&idx, &col, &pred, RefineKernel::Scalar);
            let (n_v, cst_v) = count_with_kernel(&idx, &col, &pred, RefineKernel::Swar);
            assert_eq!((n_s, cst_s), (n_v, cst_v), "{pred}");
            assert_eq!(n_s as usize, ids_s.len(), "{pred}");
        }
    }

    #[test]
    fn set_row_bits_spans_word_boundaries() {
        let mut w = vec![0u64; 4];
        set_row_bits(&mut w, 3, 3); // empty span is a no-op
        assert_eq!(w, [0, 0, 0, 0]);
        set_row_bits(&mut w, 2, 5);
        assert_eq!(w[0], 0b11100);
        set_row_bits(&mut w, 60, 130);
        assert_eq!(w[0], 0b11100 | (0b1111 << 60));
        assert_eq!(w[1], u64::MAX);
        assert_eq!(w[2], 0b11);
        let mut w = vec![0u64; 2];
        set_row_bits(&mut w, 0, 128); // exact word multiples: no partial tail word
        assert_eq!(w, [u64::MAX, u64::MAX]);
    }

    #[test]
    fn classify_rows_brackets_evaluate() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        // 10_007 rows: forces a partial tail line and a ragged last word.
        let col: Column<i64> = (0..10_007).map(|_| rng.gen_range(-500..500)).collect();
        let idx = ColumnImprints::build(&col);
        let words = col.len().div_ceil(64);
        for pred in [
            RangePredicate::between(-50, 50),
            RangePredicate::at_least(400),
            RangePredicate::all(),
            RangePredicate::between(10, 5),
        ] {
            let masks = masks::make_masks(idx.binning(), &pred);
            let mut cand = vec![0u64; words];
            let mut full = vec![0u64; words];
            let stats = classify_rows(&idx, &masks, &mut cand, &mut full);
            let bit = |w: &[u64], r: u64| w[(r / 64) as usize] >> (r % 64) & 1 == 1;
            for r in 0..col.len() as u64 {
                assert!(!bit(&full, r) || bit(&cand, r), "full ⊆ cand violated at {r}");
                let matches = pred.matches(&col.values()[r as usize]);
                if matches {
                    assert!(bit(&cand, r), "{pred}: matching row {r} not a candidate");
                }
                if bit(&full, r) {
                    assert!(matches, "{pred}: fully-covered row {r} does not match");
                }
            }
            // No bits beyond the last row.
            let tail_bits = col.len() as u64 % 64;
            if tail_bits > 0 {
                assert_eq!(cand[words - 1] >> tail_bits, 0, "{pred}: ghost rows set");
            }
            // Probe accounting mirrors the other entry points.
            let (_, estats) = evaluate(&idx, &col, &pred);
            assert_eq!(stats.access.index_probes, estats.access.index_probes, "{pred}");
        }
    }

    #[test]
    fn probes_accounting_matches_structure() {
        let col: Column<i32> = (0..16_000).map(|i| i % 4).collect();
        let idx = ColumnImprints::build(&col);
        let (_, stats) = evaluate(&idx, &col, &RangePredicate::all());
        // One probe per stored imprint (plus tail if present).
        assert_eq!(stats.access.index_probes as usize, idx.imprint_count());
    }
}
