//! Column entropy (§6.1).
//!
//! The paper quantifies "how close a column is to being ordered" with
//!
//! ```text
//!         Σ_{i=2..n} d(i, i−1)
//!  E  =  ─────────────────────
//!           2 × Σ_{i=1..n} b(i)
//! ```
//!
//! where `d(i, i−1)` is the edit distance between consecutive per-cacheline
//! imprint vectors — the number of bits to set *and* unset to turn one into
//! the other, i.e. `popcount(v_i XOR v_{i−1})` — and `b(i)` is the number
//! of set bits of vector `i`. `E ∈ [0, 1]`: 0 for perfectly clustered or
//! sorted data (consecutive cachelines map to the same bins), approaching 1
//! for data whose every cacheline differs completely from its neighbour.

use colstore::Scalar;

use crate::index::ColumnImprints;

/// Computes the column entropy `E` of an index (over the *logical*,
/// decompressed per-cacheline imprint sequence).
///
/// Runs in O(runs): within a repeat run the edit distance is 0 and the
/// popcount contribution is `cnt × popcount`, so only run boundaries need
/// an XOR.
pub fn column_entropy<T: Scalar>(idx: &ColumnImprints<T>) -> f64 {
    let mut edit_sum: u64 = 0;
    let mut bits_sum: u64 = 0;
    let mut prev: Option<u64> = None;
    for run in idx.runs() {
        let v = run.imprint;
        bits_sum += v.count_ones() as u64 * run.line_count;
        if let Some(p) = prev {
            edit_sum += (p ^ v).count_ones() as u64;
        }
        prev = Some(v);
    }
    if bits_sum == 0 {
        return 0.0;
    }
    edit_sum as f64 / (2.0 * bits_sum as f64)
}

/// Entropy computed directly from a sequence of imprint vectors (exposed
/// for tests and for callers that synthesize vector sequences).
pub fn entropy_of_vectors(vectors: &[u64]) -> f64 {
    let bits: u64 = vectors.iter().map(|v| v.count_ones() as u64).sum();
    if bits == 0 {
        return 0.0;
    }
    let edits: u64 = vectors.windows(2).map(|w| (w[0] ^ w[1]).count_ones() as u64).sum();
    edits as f64 / (2.0 * bits as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::Column;

    #[test]
    fn identical_vectors_zero_entropy() {
        assert_eq!(entropy_of_vectors(&[0b101, 0b101, 0b101]), 0.0);
    }

    #[test]
    fn empty_and_all_zero() {
        assert_eq!(entropy_of_vectors(&[]), 0.0);
        assert_eq!(entropy_of_vectors(&[0, 0]), 0.0);
    }

    #[test]
    fn disjoint_vectors_reach_one() {
        // Each vector has 1 bit, consecutive vectors disjoint: every step
        // edits 2 bits. E = (n-1)*2 / (2*n) -> 1 as n grows.
        let vectors: Vec<u64> = (0..1000).map(|i| 1u64 << (i % 64)).collect();
        let e = entropy_of_vectors(&vectors);
        assert!(e > 0.99 && e <= 1.0, "E = {e}");
    }

    #[test]
    fn sliding_window_half_entropy() {
        // Two bits per vector, one shared with the predecessor: d = 2,
        // b = 2, E -> 2(n-1) / (2*2n) -> 0.5.
        let vectors: Vec<u64> = (0..1000).map(|i| 0b11u64 << (i % 60)).collect();
        let e = entropy_of_vectors(&vectors);
        assert!((e - 0.5).abs() < 0.01, "E = {e}");
    }

    #[test]
    fn index_entropy_matches_vector_entropy() {
        let col: Column<i32> = (0..50_000).map(|i| (i * 37) % 1000).collect();
        let idx = ColumnImprints::build(&col);
        let vectors: Vec<u64> = idx.line_imprints().collect();
        let a = column_entropy(&idx);
        let b = entropy_of_vectors(&vectors);
        assert!((a - b).abs() < 1e-12, "run-based {a} vs direct {b}");
    }

    #[test]
    fn sorted_column_has_low_entropy() {
        let col: Column<i32> = (0..100_000).collect();
        let idx = ColumnImprints::build(&col);
        let e = column_entropy(&idx);
        assert!(e < 0.1, "sorted data should have near-zero entropy, got {e}");
    }

    #[test]
    fn random_column_has_high_entropy() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let col: Column<f64> = (0..100_000).map(|_| rng.gen::<f64>()).collect();
        let idx = ColumnImprints::build(&col);
        let e = column_entropy(&idx);
        // The paper measures ~0.8 for SkyServer's uniform real columns.
        assert!(e > 0.5, "uniform data should have high entropy, got {e}");
    }

    #[test]
    fn clustered_beats_shuffled() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let clustered: Column<i32> = (0..64_000).map(|i| i / 64).collect();
        let mut shuffled_vals: Vec<i32> = (0..64_000).map(|i| i / 64).collect();
        shuffled_vals.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
        let shuffled: Column<i32> = Column::from(shuffled_vals);
        let e_clustered = column_entropy(&ColumnImprints::build(&clustered));
        let e_shuffled = column_entropy(&ColumnImprints::build(&shuffled));
        assert!(e_clustered < e_shuffled / 2.0, "clustered {e_clustered} vs shuffled {e_shuffled}");
    }

    #[test]
    fn entropy_bounded() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let n = rng.gen_range(1..5000);
            let card = rng.gen_range(1..2000);
            let col: Column<i32> = (0..n).map(|_| rng.gen_range(0..card)).collect();
            let e = column_entropy(&ColumnImprints::build(&col));
            assert!((0.0..=1.0).contains(&e), "E = {e} out of range");
        }
    }
}
