//! Imprint construction and row-wise compression (Algorithm 1).
//!
//! The column is scanned once. For each cacheline a ≤64-bit imprint vector
//! is accumulated by OR-ing `1 << bin(value)` over the cacheline's values.
//! Completed vectors stream into a [`Compressor`], which implements the
//! run-length scheme of §2.3: consecutive *identical* vectors are stored
//! once and accounted by a [`DictEntry`] with the `repeat` flag set, while
//! stretches of pairwise-distinct vectors share a single `repeat = 0` entry
//! counting them.
//!
//! The compressor is exposed because two other paths reuse it verbatim:
//! data appends (§4.1 — "data appends simply cause new imprint vectors to
//! be appended to the end of the existing ones") and the multi-core build
//! of [`crate::parallel`], which stitches per-chunk results through
//! [`Compressor::push_run`].

use colstore::{Column, Scalar};

use crate::binning::{Binning, BinningStrategy};
use crate::dict::{DictEntry, MAX_CNT};

/// Construction parameters. The defaults mirror the paper's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Maximum number of sampled values for binning (default 2048).
    pub sample_size: usize,
    /// RNG seed for sampling, so builds are reproducible (default 2013).
    pub seed: u64,
    /// Bytes of column data covered by one imprint vector (default 64, the
    /// cacheline; §2.3 discusses matching the engine's access granularity,
    /// e.g. vector size in a vectorized engine — the block ablation bench
    /// sweeps this).
    pub block_bytes: usize,
    /// How bin borders are derived (default: the paper's equi-height).
    pub strategy: BinningStrategy,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            sample_size: crate::DEFAULT_SAMPLE_SIZE,
            seed: 2013,
            block_bytes: colstore::CACHELINE_BYTES,
            strategy: BinningStrategy::EquiHeight,
        }
    }
}

impl BuildOptions {
    /// Values per block for scalar type `T` (the paper's `vpc`).
    pub fn values_per_block<T: Scalar>(&self) -> usize {
        let vpb = self.block_bytes / std::mem::size_of::<T>();
        assert!(vpb > 0, "block must hold at least one value");
        vpb
    }
}

/// Streaming run-length compressor for imprint vectors.
///
/// Feed completed per-cacheline vectors with [`Compressor::push_line`] (or
/// whole runs with [`Compressor::push_run`]); read back the compressed form
/// as the parallel arrays [`Compressor::imprints`] / [`Compressor::dict`].
///
/// Invariants maintained (checked by [`Compressor::verify`]):
/// * `Σ entry.line_count() == lines_pushed`
/// * `Σ entry.imprint_count() == imprints.len()`
/// * a `repeat` entry always has `cnt ≥ 2`
/// * consecutive stored imprints inside a `repeat = 0` entry are pairwise
///   distinct at run boundaries (identical neighbours would have been
///   compressed).
#[derive(Debug, Clone, Default)]
pub struct Compressor {
    imprints: Vec<u64>,
    dict: Vec<DictEntry>,
    lines: u64,
}

impl Compressor {
    /// Creates an empty compressor.
    pub fn new() -> Self {
        Compressor::default()
    }

    /// The stored (compressed) imprint vectors.
    pub fn imprints(&self) -> &[u64] {
        &self.imprints
    }

    /// The cacheline dictionary.
    pub fn dict(&self) -> &[DictEntry] {
        &self.dict
    }

    /// Total cachelines accounted for.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consumes the compressor, returning `(imprints, dict)`.
    pub fn into_parts(self) -> (Vec<u64>, Vec<DictEntry>) {
        (self.imprints, self.dict)
    }

    /// Rebuilds a compressor from stored parts (deserialization path).
    pub fn from_parts(imprints: Vec<u64>, dict: Vec<DictEntry>) -> Self {
        let lines = dict.iter().map(|e| e.line_count() as u64).sum();
        Compressor { imprints, dict, lines }
    }

    /// Appends the imprint vector of the next cacheline (Algorithm 1's
    /// per-line bookkeeping).
    pub fn push_line(&mut self, v: u64) {
        self.lines += 1;
        // "Same imprint as the previous stored one, and the counter has
        // room": extend or create a repeat run.
        if let (Some(&last_imp), Some(&last_entry)) = (self.imprints.last(), self.dict.last()) {
            if last_imp == v && last_entry.cnt() < MAX_CNT {
                let d = self.dict.len() - 1;
                if !last_entry.repeat() {
                    if last_entry.cnt() == 1 {
                        // The lone stored imprint becomes a repeat run.
                        self.dict[d] = last_entry.with_repeat(true).with_cnt(2);
                    } else {
                        // Carve the trailing imprint out of the distinct run
                        // and open a fresh repeat run for it.
                        self.dict[d] = last_entry.with_cnt(last_entry.cnt() - 1);
                        self.dict.push(DictEntry::new(2, true));
                    }
                } else {
                    self.dict[d] = last_entry.with_cnt(last_entry.cnt() + 1);
                }
                return;
            }
        }
        // Different imprint (or first line, or counter exhausted): store it.
        self.imprints.push(v);
        match self.dict.last().copied() {
            Some(e) if !e.repeat() && e.cnt() < MAX_CNT => {
                let d = self.dict.len() - 1;
                self.dict[d] = e.with_cnt(e.cnt() + 1);
            }
            _ => self.dict.push(DictEntry::new(1, false)),
        }
    }

    /// Appends `count` consecutive cachelines that all share the imprint
    /// vector `v`. Equivalent to calling [`Compressor::push_line`] `count`
    /// times, but O(1) per dictionary run — the stitching primitive of the
    /// parallel builder.
    pub fn push_run(&mut self, v: u64, count: u64) {
        if count == 0 {
            return;
        }
        let mut remaining = count;
        // First line goes through the scalar path to resolve the
        // interaction with the previous run (merge / carve-out / append).
        self.push_line(v);
        remaining -= 1;
        if remaining == 0 {
            return;
        }
        // Second line likewise (it may convert a distinct-run tail into a
        // repeat run).
        self.push_line(v);
        remaining -= 1;
        // Now the last dictionary entry is a repeat run for `v` (or a full
        // counter); extend it in bulk.
        while remaining > 0 {
            let last = *self.dict.last().expect("non-empty after push_line");
            if last.repeat() && self.imprints.last() == Some(&v) && last.cnt() < MAX_CNT {
                let room = (MAX_CNT - last.cnt()) as u64;
                let take = room.min(remaining);
                let d = self.dict.len() - 1;
                self.dict[d] = last.with_cnt(last.cnt() + take as u32);
                self.lines += take;
                remaining -= take;
            } else {
                // Counter exhausted: start a fresh run via the scalar path.
                self.push_line(v);
                remaining -= 1;
            }
        }
    }

    /// Checks the structural invariants; returns a description of the first
    /// violation, if any. O(dictionary).
    pub fn verify(&self) -> Result<(), String> {
        let mut line_sum = 0u64;
        let mut imp_sum = 0u64;
        for (i, e) in self.dict.iter().enumerate() {
            if e.cnt() == 0 {
                return Err(format!("dict[{i}] has zero count"));
            }
            if e.repeat() && e.cnt() < 2 {
                return Err(format!("dict[{i}] is a repeat run of length {}", e.cnt()));
            }
            line_sum += e.line_count() as u64;
            imp_sum += e.imprint_count() as u64;
        }
        if line_sum != self.lines {
            return Err(format!("dict covers {line_sum} lines, expected {}", self.lines));
        }
        if imp_sum != self.imprints.len() as u64 {
            return Err(format!(
                "dict accounts for {imp_sum} imprints, stored {}",
                self.imprints.len()
            ));
        }
        Ok(())
    }
}

/// Computes the imprint vector of one cacheline of values.
#[inline]
pub fn line_imprint<T: Scalar>(binning: &Binning<T>, values: &[T]) -> u64 {
    let mut v = 0u64;
    for &x in values {
        v |= 1u64 << binning.bin_of(x);
    }
    v
}

/// Scans `col` and produces its compressed imprints: the core of
/// Algorithm 1. The trailing *partial* cacheline (if any) is **not**
/// pushed into the compressor; its in-progress imprint and length are
/// returned separately so appends can keep extending it (§4.1).
///
/// Returns `(compressor, tail_imprint, tail_len)`.
pub fn build_compressed<T: Scalar>(
    col: &Column<T>,
    binning: &Binning<T>,
    opts: &BuildOptions,
) -> (Compressor, u64, usize) {
    let vpb = opts.values_per_block::<T>();
    let values = col.values();
    let mut comp = Compressor::new();
    let full_lines = values.len() / vpb;
    // chunks_exact: the hot loop sees fixed-size slices (no tail checks).
    for line in values.chunks_exact(vpb).take(full_lines) {
        comp.push_line(line_imprint(binning, line));
    }
    let tail = &values[full_lines * vpb..];
    let tail_imprint = line_imprint(binning, tail);
    (comp, tail_imprint, tail.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decompress(c: &Compressor) -> Vec<u64> {
        let mut out = Vec::new();
        let mut i = 0usize;
        for e in c.dict() {
            if e.repeat() {
                out.extend(std::iter::repeat_n(c.imprints()[i], e.cnt() as usize));
                i += 1;
            } else {
                for _ in 0..e.cnt() {
                    out.push(c.imprints()[i]);
                    i += 1;
                }
            }
        }
        assert_eq!(i, c.imprints().len());
        out
    }

    #[test]
    fn single_line() {
        let mut c = Compressor::new();
        c.push_line(0b101);
        assert_eq!(c.imprints(), &[0b101]);
        assert_eq!(c.dict().len(), 1);
        assert_eq!(c.dict()[0].cnt(), 1);
        assert!(!c.dict()[0].repeat());
        c.verify().unwrap();
    }

    #[test]
    fn two_identical_lines_become_repeat() {
        let mut c = Compressor::new();
        c.push_line(7);
        c.push_line(7);
        assert_eq!(c.imprints(), &[7]);
        assert_eq!(c.dict().len(), 1);
        assert!(c.dict()[0].repeat());
        assert_eq!(c.dict()[0].cnt(), 2);
        c.verify().unwrap();
    }

    #[test]
    fn distinct_then_repeat_carves_out() {
        // Lines: a b b b -> dict: {1 distinct}, {3 repeat}; imprints a, b.
        let mut c = Compressor::new();
        for v in [1, 2, 2, 2] {
            c.push_line(v);
        }
        assert_eq!(c.imprints(), &[1, 2]);
        assert_eq!(c.dict().len(), 2);
        assert!(!c.dict()[0].repeat());
        assert_eq!(c.dict()[0].cnt(), 1);
        assert!(c.dict()[1].repeat());
        assert_eq!(c.dict()[1].cnt(), 3);
        c.verify().unwrap();
    }

    #[test]
    fn repeat_then_distinct_run() {
        // Lines: a a b c -> dict: {2 repeat}, {2 distinct}; imprints a, b, c.
        let mut c = Compressor::new();
        for v in [5, 5, 6, 7] {
            c.push_line(v);
        }
        assert_eq!(c.imprints(), &[5, 6, 7]);
        assert_eq!(c.dict().len(), 2);
        assert!(c.dict()[0].repeat());
        assert_eq!(c.dict()[0].cnt(), 2);
        assert!(!c.dict()[1].repeat());
        assert_eq!(c.dict()[1].cnt(), 2);
        c.verify().unwrap();
    }

    #[test]
    fn paper_figure_2_shape() {
        // Figure 2: 23 cachelines = 7 distinct, 13 repeated, 3 distinct;
        // 11 stored imprints, dictionary (7,0), (13,1), (3,0).
        let mut c = Compressor::new();
        for v in 1..=7u64 {
            c.push_line(v);
        }
        for _ in 0..13 {
            c.push_line(100);
        }
        for v in [200u64, 300, 400] {
            c.push_line(v);
        }
        assert_eq!(c.lines(), 23);
        assert_eq!(c.imprints().len(), 11);
        let d = c.dict();
        assert_eq!(d.len(), 3);
        assert_eq!((d[0].cnt(), d[0].repeat()), (7, false));
        assert_eq!((d[1].cnt(), d[1].repeat()), (13, true));
        assert_eq!((d[2].cnt(), d[2].repeat()), (3, false));
        c.verify().unwrap();
    }

    #[test]
    fn alternating_never_compresses() {
        let mut c = Compressor::new();
        for i in 0..100 {
            c.push_line(if i % 2 == 0 { 1 } else { 2 });
        }
        assert_eq!(c.imprints().len(), 100);
        assert_eq!(c.dict().len(), 1);
        assert_eq!(c.dict()[0].cnt(), 100);
        c.verify().unwrap();
    }

    #[test]
    fn decompress_roundtrip_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut c = Compressor::new();
            let mut lines = Vec::new();
            // Random runs of random vectors: exercises every transition.
            for _ in 0..rng.gen_range(1..40) {
                let v = rng.gen_range(0..4u64);
                let run = rng.gen_range(1..10);
                for _ in 0..run {
                    c.push_line(v);
                    lines.push(v);
                }
            }
            assert_eq!(decompress(&c), lines);
            c.verify().unwrap();
        }
    }

    #[test]
    fn push_run_equivalent_to_push_line() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let runs: Vec<(u64, u64)> = (0..rng.gen_range(1..20))
                .map(|_| (rng.gen_range(0..3), rng.gen_range(1..30)))
                .collect();
            let mut a = Compressor::new();
            let mut b = Compressor::new();
            for &(v, n) in &runs {
                a.push_run(v, n);
                for _ in 0..n {
                    b.push_line(v);
                }
            }
            assert_eq!(a.imprints(), b.imprints());
            assert_eq!(
                a.dict().iter().map(|e| e.to_raw()).collect::<Vec<_>>(),
                b.dict().iter().map(|e| e.to_raw()).collect::<Vec<_>>()
            );
            assert_eq!(a.lines(), b.lines());
            a.verify().unwrap();
        }
    }

    #[test]
    fn push_run_zero_is_noop() {
        let mut c = Compressor::new();
        c.push_run(1, 0);
        assert_eq!(c.lines(), 0);
        assert!(c.imprints().is_empty());
    }

    #[test]
    fn counter_saturation_splits_entries() {
        // Exceed the 24-bit counter: a run of MAX_CNT + 10 identical lines
        // must split into two dictionary entries.
        let mut c = Compressor::new();
        c.push_run(9, MAX_CNT as u64 + 10);
        assert_eq!(c.lines(), MAX_CNT as u64 + 10);
        assert!(c.dict().len() >= 2);
        c.verify().unwrap();
        let total: u64 = c.dict().iter().map(|e| e.line_count() as u64).sum();
        assert_eq!(total, MAX_CNT as u64 + 10);
    }

    #[test]
    fn from_parts_restores_lines() {
        let mut c = Compressor::new();
        for v in [1u64, 1, 2, 3, 3, 3] {
            c.push_line(v);
        }
        let (imps, dict) = c.clone().into_parts();
        let back = Compressor::from_parts(imps, dict);
        assert_eq!(back.lines(), 6);
        assert_eq!(decompress(&back), decompress(&c));
    }

    #[test]
    fn build_compressed_with_partial_tail() {
        // 40 i32 values, vpb 16: two full lines + tail of 8.
        let col: Column<i32> = (0..40).collect();
        let binning = Binning::from_column(&col, 2048, 0);
        let (comp, tail_imp, tail_len) = build_compressed(&col, &binning, &BuildOptions::default());
        assert_eq!(comp.lines(), 2);
        assert_eq!(tail_len, 8);
        assert_ne!(tail_imp, 0);
        comp.verify().unwrap();
    }

    #[test]
    fn build_compressed_exact_lines_no_tail() {
        let col: Column<i32> = (0..32).collect();
        let binning = Binning::from_column(&col, 2048, 0);
        let (comp, tail_imp, tail_len) = build_compressed(&col, &binning, &BuildOptions::default());
        assert_eq!(comp.lines(), 2);
        assert_eq!(tail_len, 0);
        assert_eq!(tail_imp, 0);
    }

    #[test]
    fn line_imprint_sets_expected_bits() {
        // Binning over 1..=7 gives value v bin v.
        let sample: Vec<i32> = (1..=7).collect();
        let b = Binning::from_sorted_sample(&sample);
        let imp = line_imprint(&b, &[1, 8, 4]);
        // 1 -> bin 1; 4 -> bin 4; 8 (above max) -> bin 7.
        assert_eq!(imp, (1 << 1) | (1 << 4) | (1 << 7));
    }

    #[test]
    fn sorted_column_compresses_massively() {
        let col: Column<u8> = (0..64_000).map(|i| (i / 8000) as u8).collect();
        let binning = Binning::from_column(&col, 2048, 1);
        let (comp, _, _) = build_compressed(&col, &binning, &BuildOptions::default());
        // 1000 lines, 8 distinct values, long runs: few stored imprints.
        assert_eq!(comp.lines(), 1000);
        assert!(
            comp.imprints().len() <= 16,
            "sorted data must compress to ~one imprint per value, got {}",
            comp.imprints().len()
        );
        comp.verify().unwrap();
    }
}
