//! Cache-conscious binary search over the 64 bin borders (§2.5).
//!
//! The paper's `get_bin()` unfolds the binary search into nested
//! independent `if`-statements with no `else` branches, letting the CPU
//! evaluate comparisons in parallel; the authors report ~3× over a loop.
//! In Rust the equivalent is a fully unrolled, *branchless* lower-bound
//! ([`count_le_unrolled`]): fixed steps over a 64-entry array, each turning
//! a comparison into an arithmetic index advance.
//!
//! **Ablation verdict** (`ablations::get_bin`): on current compilers
//! `slice::partition_point` ([`count_le_portable`]) already emits a
//! branchless 6-probe search and beats the 7-probe unrolled form — the
//! 2013-era hand optimization is obsolete in Rust. `Binning::bin_of`
//! therefore uses the portable form; both implementations stay, fully
//! differential-tested, so the claim remains checkable.

use colstore::Scalar;

use crate::MAX_BINS;

/// Number of entries in `borders` that are `≤ v` under the total order,
/// computed with a fully unrolled branchless binary search.
///
/// Requires `borders` to be sorted by total order (unused tail entries are
/// the `MAX_VALUE` sentinel, which is the total-order maximum, so the
/// invariant holds by construction).
#[inline]
pub fn count_le_unrolled<T: Scalar>(borders: &[T; MAX_BINS], v: T) -> usize {
    // Branchless lower bound (halving lengths 64→32→…→2, then the final
    // single-element probe). Casting the bool comparison to usize turns the
    // control dependency into a data dependency: no branch to mispredict.
    let mut base = 0usize;
    base += (borders[base + 31].le_total(&v) as usize) << 5;
    base += (borders[base + 15].le_total(&v) as usize) << 4;
    base += (borders[base + 7].le_total(&v) as usize) << 3;
    base += (borders[base + 3].le_total(&v) as usize) << 2;
    base += (borders[base + 1].le_total(&v) as usize) << 1;
    base += borders[base].le_total(&v) as usize;
    // `base` can now be 63 at most; the last probe decides whether the
    // count is 64 (every border ≤ v).
    base + borders[base.min(63)].le_total(&v) as usize
}

/// Reference implementation: `partition_point` over the border array.
#[inline]
pub fn count_le_portable<T: Scalar>(borders: &[T; MAX_BINS], v: T) -> usize {
    borders.partition_point(|b| b.le_total(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn borders_from(vals: &[i64]) -> [i64; MAX_BINS] {
        let mut b = [i64::MAX; MAX_BINS];
        b[..vals.len()].copy_from_slice(vals);
        b
    }

    #[test]
    fn matches_portable_on_dense_borders() {
        let b: [i64; 64] = std::array::from_fn(|i| (i as i64) * 10);
        for v in -15..700 {
            assert_eq!(count_le_unrolled(&b, v), count_le_portable(&b, v), "v={v}");
        }
    }

    #[test]
    fn matches_portable_with_sentinel_tail() {
        let b = borders_from(&[1, 5, 9, 12, 100]);
        for v in [-5, 0, 1, 2, 5, 8, 9, 11, 12, 99, 100, 101, i64::MAX - 1, i64::MAX] {
            assert_eq!(count_le_unrolled(&b, v), count_le_portable(&b, v), "v={v}");
        }
    }

    #[test]
    fn extremes() {
        let b: [i64; 64] = std::array::from_fn(|i| i as i64);
        assert_eq!(count_le_unrolled(&b, i64::MIN), 0);
        assert_eq!(count_le_unrolled(&b, -1), 0);
        assert_eq!(count_le_unrolled(&b, 0), 1);
        assert_eq!(count_le_unrolled(&b, 63), 64);
        assert_eq!(count_le_unrolled(&b, i64::MAX), 64);
    }

    #[test]
    fn all_equal_borders() {
        let b = [7i64; MAX_BINS];
        assert_eq!(count_le_unrolled(&b, 6), 0);
        assert_eq!(count_le_unrolled(&b, 7), 64);
        assert_eq!(count_le_unrolled(&b, 8), 64);
    }

    #[test]
    fn duplicated_runs_count_all_duplicates() {
        let b = borders_from(&[1, 3, 3, 3, 5]);
        assert_eq!(count_le_unrolled(&b, 3), 4);
        assert_eq!(count_le_unrolled(&b, 4), 4);
        assert_eq!(count_le_unrolled(&b, 2), 1);
        assert_eq!(count_le_unrolled(&b, 5), 5);
    }

    #[test]
    fn float_borders_with_nan_sentinel() {
        let mut b = [f64::MAX_VALUE; MAX_BINS]; // +NaN sentinel
        for (i, x) in (0..32).enumerate() {
            b[i] = x as f64;
        }
        for v in [-1.0, 0.0, 0.5, 31.0, 31.5, 1e300, f64::INFINITY] {
            assert_eq!(count_le_unrolled(&b, v), count_le_portable(&b, v), "v={v}");
        }
        // A plain +NaN sorts *below* the max-payload +NaN sentinel, so only
        // the 32 real borders count; the bin cap maps it to the top bin.
        assert_eq!(count_le_unrolled(&b, f64::NAN), 32);
        assert_eq!(count_le_portable(&b, f64::NAN), 32);
        // The sentinel itself is ≤ itself: all 64 count.
        assert_eq!(count_le_unrolled(&b, f64::MAX_VALUE), 64);
        // -NaN is the total-order minimum.
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1 << 63));
        assert_eq!(count_le_unrolled(&b, neg_nan), 0);
    }

    #[test]
    fn randomized_differential() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let mut vals: Vec<i64> = (0..64).map(|_| rng.gen_range(-1000..1000)).collect();
            vals.sort_unstable();
            let b: [i64; 64] = vals.try_into().unwrap();
            for _ in 0..100 {
                let v = rng.gen_range(-1100..1100);
                assert_eq!(count_le_unrolled(&b, v), count_le_portable(&b, v));
            }
        }
    }
}
