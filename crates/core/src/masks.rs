//! Query bit masks (§3).
//!
//! A range query is translated into two 64-bit vectors before touching any
//! imprint:
//!
//! * **`mask`** — every bin whose range *overlaps* the query. One common
//!   bit with an imprint vector means the cacheline may hold matches.
//! * **`innermask`** — the bins whose entire range lies *inside* the query
//!   ("if a bin range contains one of the borders of the query range, the
//!   corresponding bit is not set"). If an imprint has no bits outside the
//!   `innermask`, every value of the cacheline qualifies and the
//!   false-positive check is skipped wholesale.

use colstore::{Bound, RangePredicate, Scalar};

use crate::binning::Binning;

/// The `mask` / `innermask` pair of Algorithm 3's `make_masks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMasks {
    /// Bins overlapping the query range.
    pub mask: u64,
    /// Bins fully contained in the query range (`innermask ⊆ mask`).
    pub innermask: u64,
}

impl QueryMasks {
    /// No bin can match (empty predicate range).
    pub const EMPTY: QueryMasks = QueryMasks { mask: 0, innermask: 0 };

    /// Whether an imprint vector intersects the query at all.
    #[inline]
    pub fn may_match(&self, imprint: u64) -> bool {
        imprint & self.mask != 0
    }

    /// Whether an imprint vector is fully covered by inner bins — i.e.
    /// every value in the cacheline is guaranteed to qualify.
    #[inline]
    pub fn fully_covered(&self, imprint: u64) -> bool {
        imprint & !self.innermask == 0
    }
}

/// Sets bits `lo..=hi` of a `u64`.
#[inline]
fn bit_span(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi < 64);
    let width = hi - lo + 1;
    if width == 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << lo
    }
}

/// Builds the masks for `pred` against `binning`.
pub fn make_masks<T: Scalar>(binning: &Binning<T>, pred: &RangePredicate<T>) -> QueryMasks {
    if pred.is_empty_range() {
        return QueryMasks::EMPTY;
    }
    let bins = binning.bins();
    // The lowest bin a matching value can fall into: bin_of is monotone, so
    // any v ≥/> low has bin(v) ≥ bin(low).
    let bin_lo = match pred.low() {
        Bound::Unbounded => 0,
        Bound::Inclusive(l) | Bound::Exclusive(l) => binning.bin_of(*l),
    };
    // Symmetrically for the highest bin.
    let bin_hi = match pred.high() {
        Bound::Unbounded => bins - 1,
        Bound::Inclusive(h) | Bound::Exclusive(h) => binning.bin_of(*h),
    };
    debug_assert!(bin_lo <= bin_hi);
    let mask = bit_span(bin_lo, bin_hi);
    let mut innermask = 0u64;
    for i in bin_lo..=bin_hi {
        if binning.bin_fully_inside(i, pred.low(), pred.high()) {
            innermask |= 1 << i;
        }
    }
    QueryMasks { mask, innermask }
}

/// Builds the masks for a *union* of ranges (an OR of terms, e.g. an
/// IN-list lowered to point intervals) against `binning`.
///
/// `mask` is the union of the per-term masks: a cacheline may hold a match
/// iff some term's bins intersect its imprint. `innermask` is the union of
/// the per-term innermasks, which is sound for wholesale emission: a bin
/// fully inside *some* term means every value falling into that bin
/// matches the union, so an imprint with no bits outside the combined
/// innermask holds only qualifying values.
pub fn make_masks_union<T: Scalar>(
    binning: &Binning<T>,
    terms: &[RangePredicate<T>],
) -> QueryMasks {
    let mut out = QueryMasks::EMPTY;
    for term in terms {
        let m = make_masks(binning, term);
        out.mask |= m.mask;
        out.innermask |= m.innermask;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binning_1_to_7() -> Binning<i32> {
        // Bins: 0:(..1) 1:[1,2) 2:[2,3) ... 7:[7,..)
        let s: Vec<i32> = (1..=7).collect();
        Binning::from_sorted_sample(&s)
    }

    #[test]
    fn bit_span_widths() {
        assert_eq!(bit_span(0, 0), 1);
        assert_eq!(bit_span(0, 63), u64::MAX);
        assert_eq!(bit_span(3, 5), 0b111000);
        assert_eq!(bit_span(63, 63), 1 << 63);
    }

    #[test]
    fn closed_range_masks() {
        let b = binning_1_to_7();
        // 2 <= v <= 4 touches bins 2,3,4 (value 4 is in bin 4 = [4,5)).
        let m = make_masks(&b, &RangePredicate::between(2, 4));
        assert_eq!(m.mask, 0b11100);
        // Bins 2 and 3 are fully inside ([2,3) and [3,4) ⊆ [2,4]); bin 4 =
        // [4,5) is not (holds 4.x conceptually; ints make it exact but the
        // check is conservative on the border-vs-bound comparison).
        assert_eq!(m.innermask & 0b1100, 0b1100);
        assert!(m.innermask & !m.mask == 0, "innermask ⊆ mask");
    }

    #[test]
    fn half_open_range_masks() {
        let b = binning_1_to_7();
        // 2 <= v < 4: bins 2,3 overlap AND are fully inside.
        let m = make_masks(&b, &RangePredicate::half_open(2, 4));
        assert_eq!(m.mask, 0b11100, "bin_of(4) = 4 is still probed (conservative)");
        assert_eq!(m.innermask, 0b01100);
    }

    #[test]
    fn unbounded_predicates() {
        let b = binning_1_to_7();
        let m = make_masks(&b, &RangePredicate::all());
        assert_eq!(m.mask, 0xFF, "all 8 bins");
        assert_eq!(m.innermask, 0xFF, "every bin fully inside an unbounded query");

        let m = make_masks(&b, &RangePredicate::at_least(3));
        assert_eq!(m.mask, 0xF8);
        assert_eq!(m.innermask, 0xF8);

        let m = make_masks(&b, &RangePredicate::less_than(3));
        assert_eq!(m.mask, 0b1111, "bins 0..=3 probed; bin 3 holds the border");
        assert_eq!(m.innermask, 0b0111);
    }

    #[test]
    fn empty_range_is_empty_masks() {
        let b = binning_1_to_7();
        let m = make_masks(&b, &RangePredicate::between(5, 2));
        assert_eq!(m, QueryMasks::EMPTY);
        assert!(!m.may_match(u64::MAX));
    }

    #[test]
    fn point_query_single_bin() {
        let b = binning_1_to_7();
        let m = make_masks(&b, &RangePredicate::equals(5));
        assert_eq!(m.mask, 1 << 5);
        // Bin 5 = [5,6): ints make [5,5] cover it logically, but the bin
        // range extends beyond the point, so it is not "fully inside".
        assert_eq!(m.innermask, 0);
    }

    #[test]
    fn union_masks_or_terms_together() {
        let b = binning_1_to_7();
        // IN (2, 5): two point terms. Mask = both bins; innermask stays
        // empty because a point never fully covers its bin.
        let m = make_masks_union(&b, &[RangePredicate::equals(2), RangePredicate::equals(5)]);
        assert_eq!(m.mask, (1 << 2) | (1 << 5));
        assert_eq!(m.innermask, 0);
        // Union of two wide ranges: inner bins of either term stay inner.
        let m = make_masks_union(&b, &[RangePredicate::between(1, 3), RangePredicate::at_least(5)]);
        let a = make_masks(&b, &RangePredicate::between(1, 3));
        let c = make_masks(&b, &RangePredicate::at_least(5));
        assert_eq!(m.mask, a.mask | c.mask);
        assert_eq!(m.innermask, a.innermask | c.innermask);
        assert!(m.innermask & !m.mask == 0, "innermask ⊆ mask");
        // Empty and no-op terms.
        assert_eq!(make_masks_union::<i32>(&b, &[]), QueryMasks::EMPTY);
        let m = make_masks_union(&b, &[RangePredicate::between(5, 2)]);
        assert_eq!(m, QueryMasks::EMPTY);
    }

    #[test]
    fn covered_and_match_helpers() {
        let m = QueryMasks { mask: 0b1110, innermask: 0b0110 };
        assert!(m.may_match(0b0010));
        assert!(!m.may_match(0b0001));
        assert!(m.fully_covered(0b0110));
        assert!(m.fully_covered(0b0010));
        assert!(!m.fully_covered(0b1010), "bit 3 is in mask but not inner");
        assert!(!m.fully_covered(0b10000), "bit outside mask entirely");
    }

    #[test]
    fn high_cardinality_masks_are_consistent() {
        let s: Vec<i64> = (0..10_000).collect();
        let b = Binning::from_sorted_sample(&s);
        for (lo, hi) in [(0i64, 100), (50, 5000), (9000, 20_000), (-50, 2), (4000, 4000)] {
            let pred = RangePredicate::between(lo, hi);
            let m = make_masks(&b, &pred);
            assert!(m.innermask & !m.mask == 0);
            // Every value inside the range maps to a masked bin.
            for v in [lo, (lo + hi) / 2, hi] {
                if pred.matches(&v) {
                    assert!(m.mask & (1 << b.bin_of(v)) != 0, "v={v} lost by mask");
                }
            }
            // Every bin in the innermask only contains matching values:
            // sample bin borders to spot-check.
            for i in 0..b.bins() {
                if m.innermask & (1 << i) != 0 {
                    let (blo, bhi) = b.bin_range(i);
                    if let Some(x) = blo {
                        assert!(pred.matches(&x), "bin {i} lower border {x} not matching");
                    }
                    if let Some(x) = bhi {
                        // bhi is exclusive: check the value just below via
                        // integer decrement.
                        assert!(pred.matches(&(x - 1)), "bin {i} upper side broken");
                    }
                }
            }
        }
    }
}
