//! Imprint rendering (Figure 3).
//!
//! The paper visualizes imprint indexes by printing each stored imprint
//! vector as a row of `x` (bit set) and `.` (bit unset), one column per
//! histogram bin. The renders make clustering visible at a glance: low
//! entropy shows as slowly-drifting diagonal bands, high entropy as noise.

use std::fmt::Write as _;

use colstore::Scalar;

use crate::entropy::column_entropy;
use crate::index::ColumnImprints;

/// Renders one imprint vector as a `width`-character `x`/`.` row.
pub fn render_vector(v: u64, width: usize) -> String {
    (0..width).map(|i| if v & (1 << i) != 0 { 'x' } else { '.' }).collect()
}

/// Renders up to `max_rows` *stored* (compressed) imprint vectors — the
/// exact presentation of Figure 3, which prints "the actual imprint indexes
/// as constructed". Repeat runs therefore show as a single row.
pub fn render_stored<T: Scalar>(idx: &ColumnImprints<T>, max_rows: usize) -> String {
    let width = idx.bins();
    let mut out = String::new();
    let (imprints, _) = idx.parts();
    for &v in imprints.iter().take(max_rows) {
        let _ = writeln!(out, "{}", render_vector(v, width));
    }
    if imprints.len() < max_rows {
        if let Some((tail, _)) = idx.tail() {
            let _ = writeln!(out, "{}", render_vector(tail, width));
        }
    }
    out
}

/// Renders up to `max_rows` *logical* per-cacheline rows (repeat runs
/// expanded), which shows physical cacheline order.
pub fn render_lines<T: Scalar>(idx: &ColumnImprints<T>, max_rows: usize) -> String {
    let width = idx.bins();
    let mut out = String::new();
    for v in idx.line_imprints().take(max_rows) {
        let _ = writeln!(out, "{}", render_vector(v, width));
    }
    out
}

/// The Figure 3 caption line: a render header with the column's entropy.
pub fn render_with_entropy<T: Scalar>(
    idx: &ColumnImprints<T>,
    name: &str,
    max_rows: usize,
) -> String {
    format!("{name}\nE = {:.6}\n{}", column_entropy(idx), render_stored(idx, max_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::Column;

    #[test]
    fn vector_rendering() {
        assert_eq!(render_vector(0, 8), "........");
        assert_eq!(render_vector(0b1, 8), "x.......");
        assert_eq!(render_vector(0b10000001, 8), "x......x");
        assert_eq!(render_vector(u64::MAX, 16), "xxxxxxxxxxxxxxxx");
    }

    #[test]
    fn stored_rows_have_bin_width() {
        let col: Column<i32> = (0..10_000).map(|i| i % 300).collect();
        let idx = ColumnImprints::build(&col);
        let s = render_stored(&idx, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(!lines.is_empty());
        assert!(lines.len() <= 21);
        assert!(lines.iter().all(|l| l.len() == idx.bins()));
        assert!(lines.iter().all(|l| l.chars().all(|c| c == 'x' || c == '.')));
    }

    #[test]
    fn every_stored_row_has_a_set_bit() {
        let col: Column<i16> = (0..20_000).map(|i| (i % 97) as i16).collect();
        let idx = ColumnImprints::build(&col);
        let s = render_stored(&idx, usize::MAX);
        for l in s.lines() {
            assert!(l.contains('x'), "an imprint vector can never be empty");
        }
    }

    #[test]
    fn logical_render_expands_repeats() {
        let col: Column<u8> = std::iter::repeat_n(3u8, 64 * 10).collect();
        let idx = ColumnImprints::build(&col);
        assert_eq!(render_stored(&idx, 100).lines().count(), 1);
        assert_eq!(render_lines(&idx, 100).lines().count(), 10);
    }

    #[test]
    fn header_includes_entropy() {
        let col: Column<i32> = (0..5000).collect();
        let idx = ColumnImprints::build(&col);
        let s = render_with_entropy(&idx, "sorted.col", 5);
        assert!(s.starts_with("sorted.col\nE = 0."));
    }

    #[test]
    fn empty_index_renders_empty() {
        let col: Column<i32> = Column::new();
        let idx = ColumnImprints::build(&col);
        assert_eq!(render_stored(&idx, 10), "");
        assert_eq!(render_lines(&idx, 10), "");
    }
}
