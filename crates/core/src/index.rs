//! The column imprints index structure (§2).
//!
//! [`ColumnImprints`] bundles everything Algorithm 1 produces: the bin
//! borders ([`Binning`]), the compressed imprint vectors with their
//! cacheline dictionary ([`Compressor`]), and — a deliberate refinement —
//! the imprint of the trailing *partial* cacheline kept un-finalized, so
//! that appends (§4.1) can keep filling it without rewriting compressed
//! state.

use std::ops::Range;

use colstore::{AccessStats, Column, IdList, RangeIndex, RangePredicate, Scalar};

use crate::binning::Binning;
use crate::builder::{self, BuildOptions, Compressor};
use crate::dict::DictEntry;
use crate::query;

/// A column imprints secondary index over a [`Column<T>`].
///
/// The index does not own the column: like any secondary index it
/// references the base data by position. Callers must evaluate queries
/// against the same column (same length, same values) the index was built
/// on; [`ColumnImprints::verify`] checks that correspondence explicitly.
///
/// # Examples
///
/// ```
/// use colstore::{Column, RangePredicate, RangeIndex};
/// use imprints::ColumnImprints;
///
/// let col: Column<f64> = (0..4096).map(|i| ((i * 31) % 977) as f64).collect();
/// let idx = ColumnImprints::build(&col);
/// let ids = idx.evaluate(&col, &RangePredicate::between(10.0, 20.0));
/// assert!(!ids.is_empty());
/// assert!(idx.size_bytes() < col.data_bytes() / 4);
/// ```
#[derive(Debug, Clone)]
pub struct ColumnImprints<T: Scalar> {
    binning: Binning<T>,
    comp: Compressor,
    tail_imprint: u64,
    tail_len: usize,
    rows: usize,
    opts: BuildOptions,
    /// Rows appended since the initial build (update saturation tracking).
    pub(crate) appended_rows: u64,
    /// Appended rows that landed in the overflow bins (0 or bins−1):
    /// a drift signal for the binning (§4.1).
    pub(crate) appended_overflow: u64,
}

/// One run of the compressed index: `line_count` consecutive cachelines
/// described by `imprint`. Produced by [`ColumnImprints::runs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The shared imprint vector of the run (for a distinct-run entry each
    /// line is its own `Run` of length 1).
    pub imprint: u64,
    /// First cacheline number covered.
    pub first_line: u64,
    /// Number of consecutive cachelines covered.
    pub line_count: u64,
}

impl<T: Scalar> ColumnImprints<T> {
    /// Builds the index with default options (2048-value sample, 64-byte
    /// blocks).
    pub fn build(col: &Column<T>) -> Self {
        Self::build_with(col, BuildOptions::default())
    }

    /// Builds the index with explicit [`BuildOptions`].
    pub fn build_with(col: &Column<T>, opts: BuildOptions) -> Self {
        let binning =
            Binning::from_column_with_strategy(col, opts.sample_size, opts.seed, opts.strategy);
        Self::build_with_binning(col, binning, opts)
    }

    /// Builds the index reusing an existing binning (the rebuild path of
    /// §4.2 and the parallel builder both use this).
    pub fn build_with_binning(col: &Column<T>, binning: Binning<T>, opts: BuildOptions) -> Self {
        let (comp, tail_imprint, tail_len) = builder::build_compressed(col, &binning, &opts);
        ColumnImprints {
            binning,
            comp,
            tail_imprint,
            tail_len,
            rows: col.len(),
            opts,
            appended_rows: 0,
            appended_overflow: 0,
        }
    }

    /// (crate) Assembles an index from raw parts; used by the parallel
    /// builder and the storage layer. Invariants are the caller's burden
    /// (checked in debug builds).
    pub(crate) fn from_raw_parts(
        binning: Binning<T>,
        comp: Compressor,
        tail_imprint: u64,
        tail_len: usize,
        rows: usize,
        opts: BuildOptions,
    ) -> Self {
        let idx = ColumnImprints {
            binning,
            comp,
            tail_imprint,
            tail_len,
            rows,
            opts,
            appended_rows: 0,
            appended_overflow: 0,
        };
        debug_assert_eq!(
            idx.comp.lines() * idx.values_per_block() as u64 + idx.tail_len as u64,
            rows as u64
        );
        idx
    }

    /// The histogram binning in use.
    pub fn binning(&self) -> &Binning<T> {
        &self.binning
    }

    /// Number of histogram bins (8, 16, 32 or 64).
    pub fn bins(&self) -> usize {
        self.binning.bins()
    }

    /// Rows covered by the index.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Values per block (`vpc`): how many rows one imprint vector covers.
    pub fn values_per_block(&self) -> usize {
        self.opts.values_per_block::<T>()
    }

    /// The build options this index was constructed with.
    pub fn options(&self) -> &BuildOptions {
        &self.opts
    }

    /// Total cachelines covered, including the partial tail line.
    pub fn line_count(&self) -> u64 {
        self.comp.lines() + (self.tail_len > 0) as u64
    }

    /// Number of *stored* imprint vectors (after compression), including
    /// the tail.
    pub fn imprint_count(&self) -> usize {
        self.comp.imprints().len() + (self.tail_len > 0) as usize
    }

    /// Number of cacheline-dictionary entries.
    pub fn dict_len(&self) -> usize {
        self.comp.dict().len()
    }

    /// Compression ratio: stored imprints / covered cachelines (1.0 means
    /// no run was compressed; lower is better).
    pub fn compression_ratio(&self) -> f64 {
        let lines = self.line_count();
        if lines == 0 {
            return 1.0;
        }
        self.imprint_count() as f64 / lines as f64
    }

    /// Bytes occupied by the index: stored imprint vectors (8 B each),
    /// dictionary entries (4 B each), the 64 bin borders, and the fixed
    /// header fields. This is the storage-overhead metric of Figures 5–7.
    pub fn size_bytes(&self) -> usize {
        self.comp.imprints().len() * 8
            + self.comp.dict().len() * 4
            + self.binning.size_bytes()
            + 8 // tail imprint
            + 2 * std::mem::size_of::<usize>() // tail_len, rows
    }

    /// (crate) The compressed parts: `(imprints, dict)`.
    pub(crate) fn parts(&self) -> (&[u64], &[DictEntry]) {
        (self.comp.imprints(), self.comp.dict())
    }

    /// (crate) Mutable access for the append path.
    pub(crate) fn parts_mut(&mut self) -> (&mut Compressor, &mut u64, &mut usize, &mut usize) {
        (&mut self.comp, &mut self.tail_imprint, &mut self.tail_len, &mut self.rows)
    }

    /// The un-finalized imprint of the trailing partial cacheline, if any.
    pub fn tail(&self) -> Option<(u64, usize)> {
        (self.tail_len > 0).then_some((self.tail_imprint, self.tail_len))
    }

    /// Iterates over the compressed index as [`Run`]s: repeat-runs come out
    /// as one run of `cnt` lines; distinct runs come out as `cnt` runs of
    /// one line each; the tail (if present) is the final 1-line run.
    pub fn runs(&self) -> Runs<'_> {
        Runs {
            imprints: self.comp.imprints(),
            dict: self.comp.dict(),
            tail: self.tail(),
            entry: 0,
            within: 0,
            imp_pos: 0,
            line: 0,
            tail_done: false,
        }
    }

    /// Iterates over the *logical* (decompressed) per-cacheline imprint
    /// vectors — what Figure 3 prints and what the entropy metric reads.
    pub fn line_imprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs().flat_map(|r| std::iter::repeat_n(r.imprint, r.line_count as usize))
    }

    /// The row-id range covered by cacheline `line`, clamped to the column
    /// length.
    pub fn line_id_range(&self, line: u64) -> Range<u64> {
        let vpb = self.values_per_block() as u64;
        let start = line * vpb;
        let end = ((line + 1) * vpb).min(self.rows as u64);
        start..end
    }

    /// Fully recomputes the imprint of every cacheline of `col` and checks
    /// it against the stored (compressed) state, plus all structural
    /// invariants. O(n); meant for tests and post-load validation.
    pub fn verify(&self, col: &Column<T>) -> Result<(), String> {
        if col.len() != self.rows {
            return Err(format!("column has {} rows, index covers {}", col.len(), self.rows));
        }
        self.comp.verify()?;
        let vpb = self.values_per_block();
        let mut lines = self.line_imprints();
        for (lineno, chunk) in col.values().chunks(vpb).enumerate() {
            let expect = builder::line_imprint(&self.binning, chunk);
            match lines.next() {
                Some(got) if got == expect => {}
                Some(got) => {
                    return Err(format!(
                        "line {lineno}: stored imprint {got:#b}, recomputed {expect:#b}"
                    ))
                }
                None => return Err(format!("index ran out of imprints at line {lineno}")),
            }
        }
        if lines.next().is_some() {
            return Err("index has more imprints than the column has cachelines".into());
        }
        Ok(())
    }
}

impl<T: Scalar> colstore::index::BuildableIndex<T> for ColumnImprints<T> {
    fn build_index(col: &Column<T>) -> Self {
        ColumnImprints::build(col)
    }
}

impl<T: Scalar> RangeIndex<T> for ColumnImprints<T> {
    fn name(&self) -> &'static str {
        "imprints"
    }

    fn size_bytes(&self) -> usize {
        ColumnImprints::size_bytes(self)
    }

    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats) {
        let (ids, stats) = query::evaluate(self, col, pred);
        (ids, stats.access)
    }
}

/// Iterator over the [`Run`]s of a [`ColumnImprints`]; see
/// [`ColumnImprints::runs`].
#[derive(Debug, Clone)]
pub struct Runs<'a> {
    imprints: &'a [u64],
    dict: &'a [DictEntry],
    tail: Option<(u64, usize)>,
    entry: usize,
    within: u32,
    imp_pos: usize,
    line: u64,
    tail_done: bool,
}

impl Iterator for Runs<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        while self.entry < self.dict.len() {
            let e = self.dict[self.entry];
            if e.repeat() {
                let run = Run {
                    imprint: self.imprints[self.imp_pos],
                    first_line: self.line,
                    line_count: e.cnt() as u64,
                };
                self.line += e.cnt() as u64;
                self.imp_pos += 1;
                self.entry += 1;
                return Some(run);
            }
            if self.within < e.cnt() {
                let run = Run {
                    imprint: self.imprints[self.imp_pos],
                    first_line: self.line,
                    line_count: 1,
                };
                self.line += 1;
                self.imp_pos += 1;
                self.within += 1;
                return Some(run);
            }
            self.within = 0;
            self.entry += 1;
        }
        if !self.tail_done {
            self.tail_done = true;
            if let Some((imp, _)) = self.tail {
                return Some(Run { imprint: imp, first_line: self.line, line_count: 1 });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::RangePredicate;

    #[test]
    fn build_and_basic_geometry() {
        let col: Column<i32> = (0..1000).collect();
        let idx = ColumnImprints::build(&col);
        assert_eq!(idx.rows(), 1000);
        assert_eq!(idx.values_per_block(), 16);
        // 1000 / 16 = 62 full lines + tail of 8.
        assert_eq!(idx.line_count(), 63);
        assert_eq!(idx.tail().unwrap().1, 8);
        idx.verify(&col).unwrap();
    }

    #[test]
    fn runs_cover_all_lines_in_order() {
        let col: Column<u8> = (0..64 * 37 + 5).map(|i| (i % 13) as u8).collect();
        let idx = ColumnImprints::build(&col);
        let mut expected_line = 0u64;
        for run in idx.runs() {
            assert_eq!(run.first_line, expected_line);
            assert!(run.line_count >= 1);
            expected_line += run.line_count;
        }
        assert_eq!(expected_line, idx.line_count());
    }

    #[test]
    fn line_imprints_match_recomputation() {
        let col: Column<i64> = (0..999).map(|i| (i * i) % 541).collect();
        let idx = ColumnImprints::build(&col);
        let vpb = idx.values_per_block();
        let logical: Vec<u64> = idx.line_imprints().collect();
        assert_eq!(logical.len() as u64, idx.line_count());
        for (lineno, chunk) in col.values().chunks(vpb).enumerate() {
            assert_eq!(logical[lineno], builder::line_imprint(idx.binning(), chunk));
        }
    }

    #[test]
    fn empty_column_index() {
        let col: Column<i32> = Column::new();
        let idx = ColumnImprints::build(&col);
        assert_eq!(idx.rows(), 0);
        assert_eq!(idx.line_count(), 0);
        assert_eq!(idx.imprint_count(), 0);
        assert_eq!(idx.compression_ratio(), 1.0);
        assert!(idx.tail().is_none());
        idx.verify(&col).unwrap();
        let ids = idx.evaluate(&col, &RangePredicate::all());
        assert!(ids.is_empty());
    }

    #[test]
    fn single_value_column() {
        let col: Column<i32> = Column::from(vec![42]);
        let idx = ColumnImprints::build(&col);
        assert_eq!(idx.line_count(), 1);
        assert_eq!(idx.tail().unwrap().1, 1);
        idx.verify(&col).unwrap();
        assert_eq!(idx.evaluate(&col, &RangePredicate::equals(42)).as_slice(), &[0]);
        assert!(idx.evaluate(&col, &RangePredicate::equals(41)).is_empty());
    }

    #[test]
    fn constant_column_compresses_to_one_imprint() {
        let col: Column<u16> = std::iter::repeat_n(7u16, 32 * 100).collect();
        let idx = ColumnImprints::build(&col);
        assert_eq!(idx.line_count(), 100);
        assert_eq!(idx.imprint_count(), 1);
        assert_eq!(idx.dict_len(), 1);
        assert!(idx.compression_ratio() < 0.02);
        idx.verify(&col).unwrap();
    }

    #[test]
    fn size_is_small_fraction_of_column() {
        let col: Column<f64> = (0..100_000).map(|i| (i % 1000) as f64).collect();
        let idx = ColumnImprints::build(&col);
        // Paper: storage overhead is "just a few percent"; worst case 12%.
        let overhead = idx.size_bytes() as f64 / col.data_bytes() as f64;
        assert!(overhead < 0.15, "overhead {overhead} too large");
    }

    #[test]
    fn verify_detects_column_change() {
        let mut col: Column<i32> = (0..10_000).map(|i| i % 100).collect();
        let idx = ColumnImprints::build(&col);
        idx.verify(&col).unwrap();
        // Tamper with a value so its bin changes.
        col.values_mut()[5000] = 1_000_000;
        assert!(idx.verify(&col).is_err());
    }

    #[test]
    fn verify_detects_length_change() {
        let col: Column<i32> = (0..100).collect();
        let idx = ColumnImprints::build(&col);
        let longer: Column<i32> = (0..101).collect();
        assert!(idx.verify(&longer).is_err());
    }

    #[test]
    fn figure_1_example() {
        // The running example of Figure 1: 15 values in 1..=8, cachelines
        // of 3 values (simulated with block_bytes = 3 * 4 = 12).
        let col: Column<i32> = Column::from(vec![1, 8, 4, 1, 6, 2, 3, 7, 2, 4, 5, 6, 8, 7, 1]);
        let opts = BuildOptions { block_bytes: 12, ..Default::default() };
        let idx = ColumnImprints::build_with(&col, opts);
        assert_eq!(idx.values_per_block(), 3);
        assert_eq!(idx.line_count(), 5);
        // 8 distinct values -> each value v maps to bin v (1..=8).
        let imprints: Vec<u64> = idx.line_imprints().collect();
        let expect = |vals: &[i32]| vals.iter().fold(0u64, |m, &v| m | 1 << v);
        assert_eq!(imprints[0], expect(&[1, 8, 4]));
        assert_eq!(imprints[1], expect(&[1, 6, 2]));
        assert_eq!(imprints[2], expect(&[3, 7, 2]));
        assert_eq!(imprints[3], expect(&[4, 5, 6]));
        assert_eq!(imprints[4], expect(&[8, 7, 1]));
        idx.verify(&col).unwrap();
    }

    #[test]
    fn block_size_ablation_geometry() {
        let col: Column<i32> = (0..4096).collect();
        for block in [64, 128, 256, 512] {
            let opts = BuildOptions { block_bytes: block, ..Default::default() };
            let idx = ColumnImprints::build_with(&col, opts);
            assert_eq!(idx.values_per_block(), block / 4);
            assert_eq!(idx.line_count() as usize, 4096 / (block / 4));
            idx.verify(&col).unwrap();
        }
    }
}
