//! Updating column imprints (§4).
//!
//! **Appends** (§4.1) are the common case and are cheap by construction:
//! the imprint vectors are horizontally compressed, so new data "simply
//! cause\[s\] new imprint vectors to be appended to the end of the existing
//! ones, without the need of accessing any of the previous imprint
//! vectors." The bin borders are *not* readjusted — the first and last bins
//! are overflow bins — but appends landing there are counted as a drift
//! signal.
//!
//! **Arbitrary updates** (§4.2) go through the column store's
//! [`colstore::DeltaStore`]; [`evaluate_with_delta`] merges the base-index
//! result with the pending changes at query time. Deletions can be ignored
//! by the imprints (they only create false positives); in-place updates are
//! handled by re-checking affected ids against their *new* values; when the
//! delta grows too large the index is simply rebuilt — "the overhead for
//! rebuilding an imprint index during a regular scan is minimal".

use std::collections::BTreeMap;

use colstore::{AccessStats, Column, DeltaStore, IdList, RangeIndex, RangePredicate, Scalar};

use crate::builder::line_imprint;
use crate::index::ColumnImprints;
use crate::masks;
use crate::query;

/// What one append batch did to the index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendStats {
    /// Rows appended in this batch.
    pub appended: u64,
    /// Rows that fell into the low overflow bin (below every border).
    pub overflow_low: u64,
    /// Rows that fell into the top bin (at or above the last border).
    pub overflow_high: u64,
    /// New cachelines finalized into the compressed structure.
    pub lines_finalized: u64,
}

impl<T: Scalar> ColumnImprints<T> {
    /// Extends the index for `new_values` that the caller has appended (or
    /// is about to append) to the end of the indexed column. Existing
    /// imprint vectors are never touched; only the trailing partial
    /// cacheline and the compressed tail grow.
    ///
    /// The caller is responsible for keeping column and index in sync — the
    /// usual secondary-index contract; [`ColumnImprints::verify`] checks it.
    pub fn append(&mut self, new_values: &[T]) -> AppendStats {
        let vpb = self.values_per_block();
        let bins = self.bins();
        let binning = self.binning().clone();
        let mut stats = AppendStats { appended: new_values.len() as u64, ..Default::default() };

        let (comp, tail_imprint, tail_len, rows) = self.parts_mut();
        for &v in new_values {
            let bin = binning.bin_of(v);
            if bin == 0 {
                stats.overflow_low += 1;
            } else if bin == bins - 1 {
                stats.overflow_high += 1;
            }
            *tail_imprint |= 1u64 << bin;
            *tail_len += 1;
            *rows += 1;
            if *tail_len == vpb {
                comp.push_line(*tail_imprint);
                *tail_imprint = 0;
                *tail_len = 0;
                stats.lines_finalized += 1;
            }
        }
        self.appended_rows += stats.appended;
        self.appended_overflow += stats.overflow_low + stats.overflow_high;
        stats
    }

    /// Average fraction of bits set per stored imprint vector. A saturated
    /// index (→ 1.0) filters nothing and should be rebuilt.
    pub fn saturation(&self) -> f64 {
        let (imprints, _) = self.parts();
        let stored = imprints.len() + self.tail().is_some() as usize;
        if stored == 0 {
            return 0.0;
        }
        let mut bits: u64 = imprints.iter().map(|v| v.count_ones() as u64).sum();
        if let Some((t, _)) = self.tail() {
            bits += t.count_ones() as u64;
        }
        bits as f64 / (stored as u64 * self.bins() as u64) as f64
    }

    /// Fraction of appended rows that landed in the overflow bins. High
    /// values mean the appended data has "dramatically different value
    /// distribution" (§4.1) and the binning no longer discriminates.
    pub fn append_drift(&self) -> f64 {
        if self.appended_rows == 0 {
            0.0
        } else {
            self.appended_overflow as f64 / self.appended_rows as f64
        }
    }

    /// The overflow-drift half of the rebuild heuristic: enough rows were
    /// appended to trust the signal, and too many of them landed in the
    /// overflow bins. O(1) — cheap enough for per-append-batch checks
    /// (unlike [`ColumnImprints::saturation`], which sweeps every stored
    /// vector).
    pub fn append_drift_excessive(&self) -> bool {
        self.appended_rows >= 1024 && self.append_drift() > 0.5
    }

    /// Rebuild heuristic: the index stopped being useful either because the
    /// vectors saturated or because appended data keeps overflowing the
    /// sampled domain.
    pub fn needs_rebuild(&self) -> bool {
        self.saturation() > 0.75 || self.append_drift_excessive()
    }

    /// Rebuilds from scratch over the current column contents — the "simply
    /// disregard the entire secondary index and rebuild it during the next
    /// query scan" path of §4.2. Keeps the original build options but
    /// resamples, so drifted domains get fresh borders.
    pub fn rebuild(&self, col: &Column<T>) -> Self {
        ColumnImprints::build_with(col, *self.options())
    }
}

/// Evaluates `pred` through the index over the *base* column, then merges
/// the pending changes of `delta` (§4.2): deleted rows drop out, updated
/// rows are re-checked against their new values, and qualifying appended
/// rows (ids ≥ base length) join the result.
pub fn evaluate_with_delta<T: Scalar>(
    idx: &ColumnImprints<T>,
    col: &Column<T>,
    delta: &DeltaStore<T>,
    pred: &RangePredicate<T>,
) -> IdList {
    let (base_result, _) = query::evaluate(idx, col, pred);
    delta.merge_result(&base_result, |v| pred.matches(v))
}

/// Recomputes the imprint of the cachelines that `delta`'s in-place updates
/// touch and reports how many of them now carry *stale* bits (bits set for
/// values no longer present). Stale bits are harmless — they only produce
/// false positives — but quantify index decay between rebuilds.
pub fn stale_line_count<T: Scalar>(idx: &ColumnImprints<T>, col_after_updates: &Column<T>) -> u64 {
    let vpb = idx.values_per_block();
    let mut stale = 0u64;
    let mut lines = idx.line_imprints();
    for chunk in col_after_updates.values().chunks(vpb) {
        let fresh = line_imprint(idx.binning(), chunk);
        match lines.next() {
            // Stored may have extra bits (stale) but must cover fresh ones
            // unless the update took values to new bins.
            Some(stored) if stored != fresh => stale += 1,
            _ => {}
        }
    }
    stale
}

/// In-place updates without rebuild (§4.2): "an insertion however, will
/// call for additional bits to be set to the imprint corresponding to the
/// affected cachelines. Such an approach will eventually saturate the
/// imprint index."
///
/// [`OverlayImprints`] implements exactly that, without rewriting the
/// compressed structure (which run-length sharing forbids): the extra bits
/// live in a sparse per-cacheline *overlay*. Query evaluation ORs the
/// overlay into the stored vector of the affected lines — repeat runs are
/// split on the fly around overlaid lines, so unaffected lines keep their
/// one-probe treatment. Bits are only ever added, so results stay a
/// superset at the imprint level and exact after the value check.
///
/// When [`OverlayImprints::saturated`] trips, rebuild — the overlay is the
/// measured embodiment of the paper's saturation argument.
#[derive(Debug, Clone)]
pub struct OverlayImprints<T: Scalar> {
    base: ColumnImprints<T>,
    /// Extra bits per cacheline (sparse; only updated lines appear).
    overlay: BTreeMap<u64, u64>,
    /// Total in-place updates recorded.
    updates: u64,
}

impl<T: Scalar> OverlayImprints<T> {
    /// Wraps a freshly built index.
    pub fn new(base: ColumnImprints<T>) -> Self {
        OverlayImprints { base, overlay: BTreeMap::new(), updates: 0 }
    }

    /// The wrapped index.
    pub fn base(&self) -> &ColumnImprints<T> {
        &self.base
    }

    /// Records that row `id` now holds `new_value` (the caller updates the
    /// column itself). Sets the value's bin bit on the affected cacheline.
    pub fn note_update(&mut self, id: u64, new_value: T) {
        debug_assert!(id < self.base.rows() as u64);
        let line = id / self.base.values_per_block() as u64;
        let bit = 1u64 << self.base.binning().bin_of(new_value);
        *self.overlay.entry(line).or_insert(0) |= bit;
        self.updates += 1;
    }

    /// Number of cachelines carrying overlay bits.
    pub fn overlaid_lines(&self) -> usize {
        self.overlay.len()
    }

    /// Saturation heuristic: the overlay stopped being sparse (more than a
    /// quarter of the lines touched) — time to rebuild.
    pub fn saturated(&self) -> bool {
        self.overlay.len() as u64 * 4 > self.base.line_count().max(1)
    }

    /// Rebuilds from the current column contents, clearing the overlay.
    pub fn rebuild(&mut self, col: &Column<T>) {
        self.base = ColumnImprints::build_with(col, *self.base.options());
        self.overlay.clear();
        self.updates = 0;
    }

    /// Evaluates a range predicate against the updated column.
    pub fn evaluate_with_imprint_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, query::ImprintStats) {
        assert_eq!(col.len(), self.base.rows(), "index does not cover this column");
        let mut stats = query::ImprintStats::default();
        let m = masks::make_masks(self.base.binning(), pred);
        let mut res: Vec<u64> = Vec::new();
        if m.mask == 0 {
            stats.access.lines_skipped = self.base.line_count();
            return (IdList::from_sorted(res), stats);
        }
        let values = col.values();
        let vpb = self.base.values_per_block() as u64;
        let rows = self.base.rows() as u64;
        let not_inner = !m.innermask;
        let handle = |imprint: u64,
                      first_line: u64,
                      line_count: u64,
                      stats: &mut query::ImprintStats,
                      res: &mut Vec<u64>| {
            stats.access.index_probes += 1;
            if imprint & m.mask == 0 {
                stats.access.lines_skipped += line_count;
                return;
            }
            let ids = first_line * vpb..((first_line + line_count) * vpb).min(rows);
            if imprint & not_inner == 0 {
                stats.lines_full += line_count;
                stats.ids_via_full_lines += ids.end - ids.start;
                res.extend(ids);
            } else {
                stats.lines_checked += line_count;
                stats.access.lines_fetched += line_count;
                stats.access.value_comparisons += ids.end - ids.start;
                for id in ids {
                    if pred.matches(&values[id as usize]) {
                        res.push(id);
                    }
                }
            }
        };
        for run in self.base.runs() {
            let run_end = run.first_line + run.line_count;
            if self.overlay.range(run.first_line..run_end).next().is_none() {
                // Fast path: no overlaid line inside the run.
                handle(run.imprint, run.first_line, run.line_count, &mut stats, &mut res);
                continue;
            }
            // Split the run around overlaid lines so clean stretches keep
            // their single probe.
            let mut cursor = run.first_line;
            for (&line, &extra) in self.overlay.range(run.first_line..run_end) {
                if line > cursor {
                    handle(run.imprint, cursor, line - cursor, &mut stats, &mut res);
                }
                handle(run.imprint | extra, line, 1, &mut stats, &mut res);
                cursor = line + 1;
            }
            if cursor < run_end {
                handle(run.imprint, cursor, run_end - cursor, &mut stats, &mut res);
            }
        }
        (IdList::from_sorted(res), stats)
    }
}

impl<T: Scalar> RangeIndex<T> for OverlayImprints<T> {
    fn name(&self) -> &'static str {
        "imprints-overlay"
    }

    fn size_bytes(&self) -> usize {
        RangeIndex::size_bytes(&self.base) + self.overlay.len() * 16
    }

    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats) {
        let (ids, stats) = self.evaluate_with_imprint_stats(col, pred);
        (ids, stats.access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::RangeIndex;

    fn oracle<T: Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> Vec<u64> {
        col.values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn append_then_query_matches_full_rebuild() {
        let mut col: Column<i32> = (0..10_000).map(|i| i % 500).collect();
        let mut idx = ColumnImprints::build(&col);
        // Append in several odd-sized batches (exercises the partial tail).
        let batches: Vec<Vec<i32>> = vec![
            (0..7).map(|i| i * 3).collect(),
            (0..1000).map(|i| (i * 7) % 500).collect(),
            vec![499; 33],
        ];
        for b in &batches {
            let stats = idx.append(b);
            assert_eq!(stats.appended, b.len() as u64);
            col.extend_from_slice(b);
        }
        idx.verify(&col).unwrap();
        for pred in [
            RangePredicate::between(0, 10),
            RangePredicate::between(490, 499),
            RangePredicate::all(),
        ] {
            let ids = idx.evaluate(&col, &pred);
            assert_eq!(ids.as_slice(), oracle(&col, &pred));
        }
    }

    #[test]
    fn append_never_touches_existing_imprints() {
        let col: Column<i32> = (0..6400).map(|i| i % 100).collect();
        let mut idx = ColumnImprints::build(&col);
        let before: Vec<u64> = idx.parts().0.to_vec();
        let mut idx2 = idx.clone();
        idx2.append(&[1, 2, 3]);
        idx.append(&(0..5000).map(|i| i % 100).collect::<Vec<_>>());
        // The previously stored imprints are a prefix of the new state.
        assert_eq!(&idx.parts().0[..before.len()], &before[..]);
        assert_eq!(&idx2.parts().0[..before.len()], &before[..]);
    }

    #[test]
    fn append_overflow_tracking() {
        let col: Column<i32> = (100..200).collect();
        let mut idx = ColumnImprints::build(&col);
        // Values far outside the sampled domain land in overflow bins.
        let stats = idx.append(&[-1000, -999, 5000, 5001, 150]);
        assert_eq!(stats.overflow_low, 2);
        assert!(stats.overflow_high >= 2);
        assert!(idx.append_drift() > 0.5);
    }

    #[test]
    fn drift_triggers_rebuild_heuristic() {
        let col: Column<i32> = (0..1000).collect();
        let mut idx = ColumnImprints::build(&col);
        assert!(!idx.needs_rebuild());
        // Append 2000 rows all far below the sampled domain.
        idx.append(&vec![-50_000; 2000]);
        assert!(idx.append_drift() > 0.9);
        assert!(idx.needs_rebuild());
    }

    #[test]
    fn rebuild_resamples_domain() {
        let mut col: Column<i32> = (0..1000).collect();
        let mut idx = ColumnImprints::build(&col);
        let extra: Vec<i32> = (100_000..101_000).collect();
        idx.append(&extra);
        col.extend_from_slice(&extra);
        let rebuilt = idx.rebuild(&col);
        rebuilt.verify(&col).unwrap();
        assert!(!rebuilt.needs_rebuild());
        // The rebuilt borders must now span the appended domain.
        assert!(rebuilt.binning().borders().iter().any(|&b| b > 50_000));
    }

    #[test]
    fn saturation_of_wide_lines() {
        // Every cacheline contains values from every bin: saturation -> 1.
        let col: Column<u8> = (0..6400).map(|i| (i % 64) as u8).collect();
        let idx = ColumnImprints::build(&col);
        assert!(idx.saturation() > 0.5, "saturation {} too low", idx.saturation());
        // Clustered column: one or two bits per line.
        let col2: Column<u8> = (0..6400).map(|i| (i / 640) as u8).collect();
        let idx2 = ColumnImprints::build(&col2);
        assert!(idx2.saturation() < 0.3);
    }

    #[test]
    fn delta_merged_query() {
        let col: Column<i32> = (0..5000).map(|i| i % 100).collect();
        let idx = ColumnImprints::build(&col);
        let mut delta = DeltaStore::new(col.len());
        delta.delete(0); // value 0, won't qualify anyway
        delta.delete(50); // value 50, qualifies in base
        delta.update(51, 999); // was 51 (qualifying) -> now out of range
        delta.update(200, 55); // was 0 -> now qualifies
        delta.append(60); // qualifies
        delta.append(5); // does not

        let pred = RangePredicate::between(50, 60);
        let merged = evaluate_with_delta(&idx, &col, &delta, &pred);

        let consolidated: Column<i32> = Column::from(delta.consolidate(col.values()));
        // Oracle over the *logical* table: base ids minus deletions with
        // updates applied, appends at the end. Compute directly.
        let mut expect: Vec<u64> = Vec::new();
        for id in 0..delta.logical_len() {
            if let Some(v) = delta.effective_value(id, col.values()) {
                if pred.matches(&v) {
                    expect.push(id);
                }
            }
        }
        assert_eq!(merged.as_slice(), expect.as_slice());
        // Sanity: consolidation then rebuild agrees on cardinality.
        let idx2 = ColumnImprints::build(&consolidated);
        let (fresh, _) = query::evaluate(&idx2, &consolidated, &pred);
        assert_eq!(fresh.len(), expect.len()); // same multiset size
    }

    #[test]
    fn stale_lines_counted_after_inplace_updates() {
        let mut col: Column<i32> = (0..6400).map(|i| i % 10).collect();
        let idx = ColumnImprints::build(&col);
        assert_eq!(stale_line_count(&idx, &col), 0);
        // Move one value below every border: bin 0 is a bin the original
        // imprint of that line never set.
        col.values_mut()[100] = -5;
        assert_eq!(stale_line_count(&idx, &col), 1);
    }

    #[test]
    fn overlay_updates_match_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        let mut col: Column<i32> = (0..20_000).map(|i| i % 500).collect();
        let mut idx = OverlayImprints::new(ColumnImprints::build(&col));
        // Random in-place updates, including to values far outside the
        // original bins of their lines.
        for _ in 0..2_000 {
            let id = rng.gen_range(0..col.len());
            let v = rng.gen_range(-200..900);
            col.values_mut()[id] = v;
            idx.note_update(id as u64, v);
        }
        for _ in 0..20 {
            let a = rng.gen_range(-250..950);
            let b = rng.gen_range(-250..950);
            let pred = RangePredicate::between(a.min(b), a.max(b));
            let (got, _) = idx.evaluate_with_imprint_stats(&col, &pred);
            let expect: Vec<u64> = col
                .values()
                .iter()
                .enumerate()
                .filter(|(_, v)| pred.matches(v))
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(got.as_slice(), expect.as_slice(), "{pred}");
        }
        assert!(idx.overlaid_lines() > 0);
    }

    #[test]
    fn overlay_without_updates_is_identity() {
        let col: Column<i64> = (0..10_000).map(|i| i % 77).collect();
        let base = ColumnImprints::build(&col);
        let overlay = OverlayImprints::new(base.clone());
        let pred = RangePredicate::between(10, 30);
        let (a, sa) = query::evaluate(&base, &col, &pred);
        let (b, sb) = overlay.evaluate_with_imprint_stats(&col, &pred);
        assert_eq!(a, b);
        assert_eq!(sa.access.index_probes, sb.access.index_probes);
    }

    #[test]
    fn overlay_splits_repeat_runs_precisely() {
        // A 16-periodic column compresses to one repeat run; one update to
        // a value *below* the domain (bin 0, which no stored line sets)
        // must cost ~3 probes for a query only the update matches.
        let mut col: Column<i32> = (0..16_000).map(|i| 10 + (i % 16)).collect();
        let mut idx = OverlayImprints::new(ColumnImprints::build(&col));
        assert_eq!(idx.base().imprint_count(), 1, "periodic data must fully compress");
        col.values_mut()[8_000] = -100;
        idx.note_update(8_000, -100);
        let pred = RangePredicate::less_than(0);
        let (ids, stats) = idx.evaluate_with_imprint_stats(&col, &pred);
        assert_eq!(ids.as_slice(), &[8_000]);
        assert!(stats.access.index_probes <= 3, "probes {}", stats.access.index_probes);
        assert!(stats.access.lines_skipped >= 990);
    }

    #[test]
    fn overlay_saturation_and_rebuild() {
        let mut col: Column<i32> = (0..6_400).map(|i| i % 10).collect();
        let mut idx = OverlayImprints::new(ColumnImprints::build(&col));
        assert!(!idx.saturated());
        // Touch most lines.
        for id in (0..6_400).step_by(8) {
            col.values_mut()[id] = 1_000_000;
            idx.note_update(id as u64, 1_000_000);
        }
        assert!(idx.saturated());
        idx.rebuild(&col);
        assert!(!idx.saturated());
        assert_eq!(idx.overlaid_lines(), 0);
        idx.base().verify(&col).unwrap();
    }

    #[test]
    fn overlay_fast_path_stays_sound() {
        // Update a value to another value *inside* the query range: the
        // innermask fast path may fire and must still be correct.
        let mut col: Column<i64> = (0..64_000).collect();
        let mut idx = OverlayImprints::new(ColumnImprints::build(&col));
        col.values_mut()[10_000] = 20_000;
        idx.note_update(10_000, 20_000);
        let pred = RangePredicate::between(5_000, 50_000);
        let (ids, _) = idx.evaluate_with_imprint_stats(&col, &pred);
        let expect: Vec<u64> = col
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(ids.as_slice(), expect.as_slice());
    }

    #[test]
    fn append_to_empty_index() {
        let col: Column<i32> = Column::new();
        let mut idx = ColumnImprints::build(&col);
        let vals: Vec<i32> = (0..100).collect();
        idx.append(&vals);
        let full: Column<i32> = (0..100).collect();
        idx.verify(&full).unwrap();
        let pred = RangePredicate::between(10, 20);
        let ids = idx.evaluate(&full, &pred);
        assert_eq!(ids.as_slice(), oracle(&full, &pred));
    }
}
