//! Packed cacheline-dictionary entries.
//!
//! The compression scheme of §2.3 stores, next to the imprint vectors, a
//! *cacheline dictionary*: a sequence of 4-byte entries
//!
//! ```text
//! struct cache_dict {
//!     uint cnt:24;     // run length
//!     uint repeat:1;   // 1: one imprint covers cnt cachelines
//!                      // 0: the next cnt imprints cover one cacheline each
//!     uint flags:7;    // reserved
//! };
//! ```
//!
//! [`DictEntry`] reproduces that layout bit-for-bit in a `u32`.

use std::fmt;

/// Maximum run length representable in the 24-bit counter.
pub const MAX_CNT: u32 = (1 << 24) - 1;

/// One packed cacheline-dictionary entry (`cnt:24 | repeat:1 | flags:7`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct DictEntry(u32);

impl DictEntry {
    const REPEAT_BIT: u32 = 1 << 24;
    const CNT_MASK: u32 = MAX_CNT;

    /// Creates an entry with the given run length and repeat flag.
    ///
    /// # Panics
    /// Panics if `cnt` exceeds [`MAX_CNT`].
    #[inline]
    pub fn new(cnt: u32, repeat: bool) -> Self {
        assert!(cnt <= MAX_CNT, "dictionary count overflows 24 bits");
        DictEntry(cnt | if repeat { Self::REPEAT_BIT } else { 0 })
    }

    /// The run length.
    #[inline]
    pub fn cnt(self) -> u32 {
        self.0 & Self::CNT_MASK
    }

    /// Whether the run is a *repeat* run (one imprint vector, `cnt`
    /// cachelines) rather than a *distinct* run (`cnt` imprint vectors, one
    /// cacheline each).
    #[inline]
    pub fn repeat(self) -> bool {
        self.0 & Self::REPEAT_BIT != 0
    }

    /// The 7 reserved flag bits (always 0 in this implementation; kept for
    /// format fidelity).
    #[inline]
    pub fn flags(self) -> u8 {
        (self.0 >> 25) as u8
    }

    /// Returns a copy with the run length replaced.
    ///
    /// # Panics
    /// Panics if `cnt` exceeds [`MAX_CNT`].
    #[inline]
    #[must_use]
    pub fn with_cnt(self, cnt: u32) -> Self {
        assert!(cnt <= MAX_CNT, "dictionary count overflows 24 bits");
        DictEntry((self.0 & !Self::CNT_MASK) | cnt)
    }

    /// Returns a copy with the repeat flag replaced.
    #[inline]
    #[must_use]
    pub fn with_repeat(self, repeat: bool) -> Self {
        if repeat {
            DictEntry(self.0 | Self::REPEAT_BIT)
        } else {
            DictEntry(self.0 & !Self::REPEAT_BIT)
        }
    }

    /// Number of imprint vectors this entry accounts for in the imprint
    /// array: 1 for a repeat run, `cnt` for a distinct run.
    #[inline]
    pub fn imprint_count(self) -> u32 {
        if self.repeat() {
            1
        } else {
            self.cnt()
        }
    }

    /// Number of cachelines this entry covers (always `cnt`).
    #[inline]
    pub fn line_count(self) -> u32 {
        self.cnt()
    }

    /// The raw packed word (on-disk representation).
    #[inline]
    pub fn to_raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an entry from its raw packed word.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        DictEntry(raw)
    }
}

impl fmt::Debug for DictEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DictEntry {{ cnt: {}, repeat: {} }}", self.cnt(), self.repeat())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_four_bytes() {
        assert_eq!(std::mem::size_of::<DictEntry>(), 4);
    }

    #[test]
    fn pack_unpack() {
        let e = DictEntry::new(12345, true);
        assert_eq!(e.cnt(), 12345);
        assert!(e.repeat());
        assert_eq!(e.flags(), 0);
        let e = DictEntry::new(7, false);
        assert_eq!(e.cnt(), 7);
        assert!(!e.repeat());
    }

    #[test]
    fn max_cnt_roundtrips() {
        let e = DictEntry::new(MAX_CNT, true);
        assert_eq!(e.cnt(), MAX_CNT);
        assert!(e.repeat());
    }

    #[test]
    #[should_panic(expected = "overflows 24 bits")]
    fn overflowing_cnt_panics() {
        let _ = DictEntry::new(MAX_CNT + 1, false);
    }

    #[test]
    fn with_cnt_preserves_repeat() {
        let e = DictEntry::new(5, true).with_cnt(9);
        assert_eq!(e.cnt(), 9);
        assert!(e.repeat());
        let e = e.with_repeat(false);
        assert_eq!(e.cnt(), 9);
        assert!(!e.repeat());
    }

    #[test]
    fn imprint_and_line_counts() {
        let rep = DictEntry::new(100, true);
        assert_eq!(rep.imprint_count(), 1);
        assert_eq!(rep.line_count(), 100);
        let dis = DictEntry::new(100, false);
        assert_eq!(dis.imprint_count(), 100);
        assert_eq!(dis.line_count(), 100);
    }

    #[test]
    fn raw_roundtrip() {
        for (cnt, rep) in [(0u32, false), (1, true), (MAX_CNT, false)] {
            let e = DictEntry::new(cnt, rep);
            let back = DictEntry::from_raw(e.to_raw());
            assert_eq!(back, e);
        }
    }
}
