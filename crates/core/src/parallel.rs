//! Multi-core index construction (§7 future work).
//!
//! "Column imprints can be extended to exploit multi-core platforms during
//! the construction phase." The build is embarrassingly parallel except for
//! the run-length compression, which has sequential state. The scheme here:
//!
//! 1. binning once (sampling is cheap and shared);
//! 2. the full cachelines are split into `threads` contiguous, line-aligned
//!    chunks; each worker builds a *locally compressed* [`Compressor`];
//! 3. the local results are stitched in order through
//!    [`Compressor::push_run`], which is O(runs), not O(lines) — so the
//!    sequential tail of the build is proportional to the *compressed*
//!    size.
//!
//! The result is bit-identical to the serial build (tested), because
//! stitching replays the same run sequence through the same state machine.

use std::thread;

use colstore::{Column, Scalar};

use crate::binning::Binning;
use crate::builder::{line_imprint, BuildOptions, Compressor};
use crate::index::ColumnImprints;

/// Builds the index using up to `threads` worker threads. Falls back to the
/// serial builder for tiny inputs where threading cannot pay off.
pub fn build_parallel<T: Scalar>(
    col: &Column<T>,
    opts: BuildOptions,
    threads: usize,
) -> ColumnImprints<T> {
    let vpb = opts.values_per_block::<T>();
    let full_lines = col.len() / vpb;
    let threads = threads.max(1).min(full_lines.max(1));
    // Under ~4 lines per worker the fork/join overhead dominates.
    if threads == 1 || full_lines < threads * 4 {
        return ColumnImprints::build_with(col, opts);
    }

    let binning =
        Binning::from_column_with_strategy(col, opts.sample_size, opts.seed, opts.strategy);
    let values = col.values();
    let lines_per_chunk = full_lines.div_ceil(threads);

    // Phase 2: per-chunk local compression.
    let locals: Vec<Compressor> = thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let first_line = t * lines_per_chunk;
            if first_line >= full_lines {
                break;
            }
            let last_line = ((t + 1) * lines_per_chunk).min(full_lines);
            let chunk = &values[first_line * vpb..last_line * vpb];
            let binning = &binning;
            handles.push(s.spawn(move || {
                let mut comp = Compressor::new();
                for line in chunk.chunks_exact(vpb) {
                    comp.push_line(line_imprint(binning, line));
                }
                comp
            }));
        }
        handles.into_iter().map(|h| h.join().expect("imprint worker panicked")).collect()
    });

    // Phase 3: stitch local results in chunk order.
    let mut comp = Compressor::new();
    for local in &locals {
        let (imprints, dict) = (local.imprints(), local.dict());
        let mut pos = 0usize;
        for e in dict {
            if e.repeat() {
                comp.push_run(imprints[pos], e.cnt() as u64);
                pos += 1;
            } else {
                for _ in 0..e.cnt() {
                    comp.push_run(imprints[pos], 1);
                    pos += 1;
                }
            }
        }
    }

    // The partial tail stays un-finalized, as in the serial build.
    let tail_values = &values[full_lines * vpb..];
    let tail_imprint = line_imprint(&binning, tail_values);
    ColumnImprints::from_raw_parts(binning, comp, tail_imprint, tail_values.len(), col.len(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::{RangeIndex, RangePredicate};

    fn assert_identical<T: Scalar>(a: &ColumnImprints<T>, b: &ColumnImprints<T>) {
        assert_eq!(a.parts().0, b.parts().0, "imprint arrays differ");
        assert_eq!(
            a.parts().1.iter().map(|e| e.to_raw()).collect::<Vec<_>>(),
            b.parts().1.iter().map(|e| e.to_raw()).collect::<Vec<_>>(),
            "dictionaries differ"
        );
        assert_eq!(a.tail(), b.tail());
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.bins(), b.bins());
    }

    #[test]
    fn parallel_build_identical_to_serial() {
        let col: Column<i32> = (0..100_003).map(|i| (i * 31) % 5000).collect();
        let opts = BuildOptions::default();
        let serial = ColumnImprints::build_with(&col, opts);
        for threads in [2, 3, 4, 8] {
            let par = build_parallel(&col, opts, threads);
            assert_identical(&serial, &par);
            par.verify(&col).unwrap();
        }
    }

    #[test]
    fn parallel_build_on_clustered_data() {
        // Long runs spanning chunk boundaries: stresses run stitching.
        let col: Column<u8> = (0..640_000).map(|i| (i / 100_000) as u8).collect();
        let opts = BuildOptions::default();
        let serial = ColumnImprints::build_with(&col, opts);
        let par = build_parallel(&col, opts, 7);
        assert_identical(&serial, &par);
        assert!(par.imprint_count() < 40, "runs must stay compressed across chunks");
    }

    #[test]
    fn small_input_falls_back_to_serial() {
        let col: Column<i64> = (0..50).collect();
        let par = build_parallel(&col, BuildOptions::default(), 8);
        par.verify(&col).unwrap();
    }

    #[test]
    fn parallel_build_empty_column() {
        let col: Column<i32> = Column::new();
        let par = build_parallel(&col, BuildOptions::default(), 4);
        assert_eq!(par.rows(), 0);
        par.verify(&col).unwrap();
    }

    #[test]
    fn parallel_index_answers_queries() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let col: Column<f64> = (0..200_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let idx = build_parallel(&col, BuildOptions::default(), 4);
        let pred = RangePredicate::between(0.25, 0.5);
        let ids = idx.evaluate(&col, &pred);
        let expect: Vec<u64> = col
            .values()
            .iter()
            .enumerate()
            .filter(|(_, &v)| (0.25..=0.5).contains(&v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(ids.as_slice(), expect.as_slice());
    }
}
