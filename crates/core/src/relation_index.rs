//! Relation-level imprint management.
//!
//! The paper's §3 closes with the multi-attribute plan: "the query()
//! procedure … is invoked multiple times, one for each attribute, with
//! possible different [low, high] values", the candidate cacheline lists
//! are merge-joined, and only then are false positives weeded. This module
//! packages that plan behind a relation-level API: one imprint index per
//! column of a [`Relation`], queried with dynamically-typed bounds.
//!
//! ```
//! use colstore::{Column, Relation, Value};
//! use imprints::relation_index::{RelationImprints, ValueRange};
//!
//! let mut rel = Relation::new("weather");
//! rel.add_column("temp", Column::from(vec![15.0f64, 21.5, 19.0, 23.0])).unwrap();
//! rel.add_column("station", Column::from(vec![1u16, 2, 1, 2])).unwrap();
//!
//! let idx = RelationImprints::build(&rel);
//! let ids = idx
//!     .query(&rel, &[
//!         ("temp", ValueRange::between(Value::F64(18.0), Value::F64(22.0))),
//!         ("station", ValueRange::equals(Value::U16(1))),
//!     ])
//!     .unwrap();
//! assert_eq!(ids.as_slice(), &[2]);
//! ```

use colstore::relation::AnyColumn;
use colstore::{CachelineSet, Error, IdList, RangePredicate, Relation, Result, Scalar, Value};

use crate::index::ColumnImprints;
use crate::query;

/// A dynamically-typed closed range: `low ≤ v ≤ high`, either side
/// optional. The variants must match the target column's scalar type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueRange {
    /// Inclusive lower bound, if any.
    pub low: Option<Value>,
    /// Inclusive upper bound, if any.
    pub high: Option<Value>,
}

impl ValueRange {
    /// `low ≤ v ≤ high`.
    pub fn between(low: Value, high: Value) -> Self {
        ValueRange { low: Some(low), high: Some(high) }
    }

    /// `v = value`.
    pub fn equals(value: Value) -> Self {
        ValueRange { low: Some(value), high: Some(value) }
    }

    /// `v ≥ low`.
    pub fn at_least(low: Value) -> Self {
        ValueRange { low: Some(low), high: None }
    }

    /// `v ≤ high`.
    pub fn at_most(high: Value) -> Self {
        ValueRange { low: None, high: Some(high) }
    }

    /// Converts to the typed predicate of column type `T` — the bridge a
    /// dynamically-typed query front-end (this module, the engine crate's
    /// tables) uses to reach the typed index kernels. Fails if either bound
    /// has a different scalar type than `T`.
    pub fn to_predicate<T: Scalar>(&self) -> Result<RangePredicate<T>> {
        self.typed()
    }

    /// Converts to the typed predicate of column type `T`.
    fn typed<T: Scalar>(&self) -> Result<RangePredicate<T>> {
        let conv = |v: &Value| {
            T::from_value(v).ok_or_else(|| {
                Error::Mismatch(format!(
                    "predicate bound {v} has type {}, column holds {}",
                    v.column_type(),
                    T::TYPE
                ))
            })
        };
        let low = match &self.low {
            Some(v) => colstore::Bound::Inclusive(conv(v)?),
            None => colstore::Bound::Unbounded,
        };
        let high = match &self.high {
            Some(v) => colstore::Bound::Inclusive(conv(v)?),
            None => colstore::Bound::Unbounded,
        };
        Ok(RangePredicate::with_bounds(low, high))
    }
}

/// A dynamically-typed *disjunction* of ranges on one column: `v` matches
/// when it falls in any term. This is the per-column predicate of the
/// conjunction planner — a single range is a one-term set, an IN-list is a
/// set of point terms, and an empty set matches nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValueSet {
    /// The union's terms; order carries no meaning.
    pub terms: Vec<ValueRange>,
}

impl ValueSet {
    /// The set containing exactly `range`.
    pub fn range(range: ValueRange) -> Self {
        ValueSet { terms: vec![range] }
    }

    /// An IN-list: the union of point intervals over `values`.
    pub fn points(values: impl IntoIterator<Item = Value>) -> Self {
        ValueSet { terms: values.into_iter().map(ValueRange::equals).collect() }
    }

    /// Whether the set has no terms (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The single range when the set has exactly one term — the fast path
    /// callers use to keep plain range predicates on their existing route.
    pub fn as_single(&self) -> Option<&ValueRange> {
        match self.terms.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// Types every term against column type `T`. Fails if any bound has a
    /// different scalar type.
    pub fn to_predicates<T: Scalar>(&self) -> Result<Vec<RangePredicate<T>>> {
        self.terms.iter().map(ValueRange::to_predicate).collect()
    }
}

impl From<ValueRange> for ValueSet {
    fn from(range: ValueRange) -> Self {
        ValueSet::range(range)
    }
}

/// A column imprints index of whichever scalar type its column holds.
#[derive(Debug, Clone)]
pub enum AnyImprints {
    /// Index over an `i8` column.
    I8(ColumnImprints<i8>),
    /// Index over a `u8` column.
    U8(ColumnImprints<u8>),
    /// Index over an `i16` column.
    I16(ColumnImprints<i16>),
    /// Index over a `u16` column.
    U16(ColumnImprints<u16>),
    /// Index over an `i32` column.
    I32(ColumnImprints<i32>),
    /// Index over a `u32` column.
    U32(ColumnImprints<u32>),
    /// Index over an `i64` column.
    I64(ColumnImprints<i64>),
    /// Index over a `u64` column.
    U64(ColumnImprints<u64>),
    /// Index over an `f32` column.
    F32(ColumnImprints<f32>),
    /// Index over an `f64` column.
    F64(ColumnImprints<f64>),
}

macro_rules! any_dispatch {
    ($idx:expr, $col:expr, $i:ident, $c:ident => $body:expr) => {
        match ($idx, $col) {
            (AnyImprints::I8($i), AnyColumn::I8($c)) => $body,
            (AnyImprints::U8($i), AnyColumn::U8($c)) => $body,
            (AnyImprints::I16($i), AnyColumn::I16($c)) => $body,
            (AnyImprints::U16($i), AnyColumn::U16($c)) => $body,
            (AnyImprints::I32($i), AnyColumn::I32($c)) => $body,
            (AnyImprints::U32($i), AnyColumn::U32($c)) => $body,
            (AnyImprints::I64($i), AnyColumn::I64($c)) => $body,
            (AnyImprints::U64($i), AnyColumn::U64($c)) => $body,
            (AnyImprints::F32($i), AnyColumn::F32($c)) => $body,
            (AnyImprints::F64($i), AnyColumn::F64($c)) => $body,
            _ => return Err(Error::Mismatch("index and column scalar types diverged".into())),
        }
    };
}

impl AnyImprints {
    /// Builds the appropriately-typed index for `col`.
    pub fn build(col: &AnyColumn) -> Self {
        match col {
            AnyColumn::I8(c) => AnyImprints::I8(ColumnImprints::build(c)),
            AnyColumn::U8(c) => AnyImprints::U8(ColumnImprints::build(c)),
            AnyColumn::I16(c) => AnyImprints::I16(ColumnImprints::build(c)),
            AnyColumn::U16(c) => AnyImprints::U16(ColumnImprints::build(c)),
            AnyColumn::I32(c) => AnyImprints::I32(ColumnImprints::build(c)),
            AnyColumn::U32(c) => AnyImprints::U32(ColumnImprints::build(c)),
            AnyColumn::I64(c) => AnyImprints::I64(ColumnImprints::build(c)),
            AnyColumn::U64(c) => AnyImprints::U64(ColumnImprints::build(c)),
            AnyColumn::F32(c) => AnyImprints::F32(ColumnImprints::build(c)),
            AnyColumn::F64(c) => AnyImprints::F64(ColumnImprints::build(c)),
        }
    }

    /// Index size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            AnyImprints::I8(i) => i.size_bytes(),
            AnyImprints::U8(i) => i.size_bytes(),
            AnyImprints::I16(i) => i.size_bytes(),
            AnyImprints::U16(i) => i.size_bytes(),
            AnyImprints::I32(i) => i.size_bytes(),
            AnyImprints::U32(i) => i.size_bytes(),
            AnyImprints::I64(i) => i.size_bytes(),
            AnyImprints::U64(i) => i.size_bytes(),
            AnyImprints::F32(i) => i.size_bytes(),
            AnyImprints::F64(i) => i.size_bytes(),
        }
    }

    /// Candidate rows (id-space cacheline ranges) for a dynamic range.
    fn candidates(&self, col: &AnyColumn, range: &ValueRange) -> Result<CachelineSet> {
        any_dispatch!(self, col, i, _c => {
            let pred = range.typed()?;
            Ok(query::candidate_id_ranges(i, &pred).0)
        })
    }

    /// A boxed per-row matcher for the dynamic range over `col`.
    fn matcher<'a>(
        &self,
        col: &'a AnyColumn,
        range: &ValueRange,
    ) -> Result<Box<dyn Fn(u64) -> bool + 'a>> {
        any_dispatch!(self, col, _i, c => {
            let pred = range.typed()?;
            let values = c.values();
            Ok(Box::new(move |id: u64| pred.matches(&values[id as usize])))
        })
    }
}

/// One imprint index per column of a relation, with the §3 conjunctive
/// query plan.
#[derive(Debug, Clone)]
pub struct RelationImprints {
    indexes: Vec<AnyImprints>,
}

impl RelationImprints {
    /// Builds an index for every column of `rel`.
    pub fn build(rel: &Relation) -> Self {
        RelationImprints { indexes: rel.columns().iter().map(AnyImprints::build).collect() }
    }

    /// Total index bytes across all columns.
    pub fn size_bytes(&self) -> usize {
        self.indexes.iter().map(AnyImprints::size_bytes).sum()
    }

    /// The index of the column called `name`.
    pub fn index(&self, rel: &Relation, name: &str) -> Result<&AnyImprints> {
        let pos = rel
            .schema()
            .position(name)
            .ok_or_else(|| Error::NotFound(format!("column {name:?}")))?;
        Ok(&self.indexes[pos])
    }

    /// Evaluates a conjunction of dynamic range predicates: per-column
    /// candidate generation, id-space merge-join, then one pass weeding
    /// false positives against *all* predicates (late materialization).
    ///
    /// An empty predicate list selects every row.
    pub fn query(&self, rel: &Relation, preds: &[(&str, ValueRange)]) -> Result<IdList> {
        if preds.is_empty() {
            return Ok(IdList::from_sorted((0..rel.row_count() as u64).collect()));
        }
        // Phase 1: candidates per predicate, merge-joined in id space.
        let mut joint: Option<CachelineSet> = None;
        let mut matchers: Vec<Box<dyn Fn(u64) -> bool + '_>> = Vec::with_capacity(preds.len());
        for (name, range) in preds {
            let pos = rel
                .schema()
                .position(name)
                .ok_or_else(|| Error::NotFound(format!("column {name:?}")))?;
            let idx = &self.indexes[pos];
            let col = &rel.columns()[pos];
            let cands = idx.candidates(col, range)?;
            joint = Some(match joint {
                Some(j) => j.intersect(&cands),
                None => cands,
            });
            matchers.push(idx.matcher(col, range)?);
        }
        // Phase 2: false-positive weeding over the surviving ids.
        let mut out = Vec::new();
        for run in joint.expect("at least one predicate").runs() {
            'ids: for id in run {
                for m in &matchers {
                    if !m(id) {
                        continue 'ids;
                    }
                }
                out.push(id);
            }
        }
        Ok(IdList::from_sorted(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::Column;

    fn weather(n: usize) -> Relation {
        let mut rel = Relation::new("weather");
        let temp: Vec<f64> = (0..n).map(|i| 10.0 + ((i * 37) % 200) as f64 / 10.0).collect();
        let station: Vec<u16> = (0..n).map(|i| (i % 23) as u16).collect();
        let ts: Vec<i64> = (0..n as i64).collect();
        rel.add_column("temp", Column::from(temp)).unwrap();
        rel.add_column("station", Column::from(station)).unwrap();
        rel.add_column("ts", Column::from(ts)).unwrap();
        rel
    }

    fn oracle(rel: &Relation, f: impl Fn(u64) -> bool) -> Vec<u64> {
        (0..rel.row_count() as u64).filter(|&i| f(i)).collect()
    }

    #[test]
    fn single_predicate_matches_oracle() {
        let rel = weather(20_000);
        let idx = RelationImprints::build(&rel);
        let ids = idx
            .query(&rel, &[("temp", ValueRange::between(Value::F64(15.0), Value::F64(20.0)))])
            .unwrap();
        let temp: &Column<f64> = rel.typed_column("temp").unwrap();
        let expect = oracle(&rel, |i| {
            let v = temp.values()[i as usize];
            (15.0..=20.0).contains(&v)
        });
        assert_eq!(ids.as_slice(), expect.as_slice());
    }

    #[test]
    fn three_way_conjunction_matches_oracle() {
        let rel = weather(20_000);
        let idx = RelationImprints::build(&rel);
        let ids = idx
            .query(
                &rel,
                &[
                    ("temp", ValueRange::between(Value::F64(12.0), Value::F64(25.0))),
                    ("station", ValueRange::equals(Value::U16(7))),
                    ("ts", ValueRange::at_least(Value::I64(5_000))),
                ],
            )
            .unwrap();
        let temp: &Column<f64> = rel.typed_column("temp").unwrap();
        let station: &Column<u16> = rel.typed_column("station").unwrap();
        let expect = oracle(&rel, |i| {
            let t = temp.values()[i as usize];
            (12.0..=25.0).contains(&t) && station.values()[i as usize] == 7 && i >= 5_000
        });
        assert_eq!(ids.as_slice(), expect.as_slice());
        assert!(!ids.is_empty());
    }

    #[test]
    fn empty_predicates_select_all() {
        let rel = weather(100);
        let idx = RelationImprints::build(&rel);
        assert_eq!(idx.query(&rel, &[]).unwrap().len(), 100);
    }

    #[test]
    fn unknown_column_rejected() {
        let rel = weather(100);
        let idx = RelationImprints::build(&rel);
        let err = idx.query(&rel, &[("nope", ValueRange::at_most(Value::I64(1)))]).unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
    }

    #[test]
    fn type_mismatched_bound_rejected() {
        let rel = weather(100);
        let idx = RelationImprints::build(&rel);
        let err = idx.query(&rel, &[("temp", ValueRange::equals(Value::I32(5)))]).unwrap_err();
        assert!(matches!(err, Error::Mismatch(_)), "got {err:?}");
    }

    #[test]
    fn index_lookup_and_size() {
        let rel = weather(10_000);
        let idx = RelationImprints::build(&rel);
        assert!(idx.index(&rel, "temp").is_ok());
        assert!(idx.index(&rel, "zz").is_err());
        assert!(idx.size_bytes() > 0);
        assert!(idx.size_bytes() < rel.data_bytes());
    }

    #[test]
    fn value_set_shapes_and_typing() {
        let set = ValueSet::points([Value::I64(3), Value::I64(9)]);
        assert_eq!(set.terms.len(), 2);
        assert!(set.as_single().is_none());
        let preds: Vec<RangePredicate<i64>> = set.to_predicates().unwrap();
        assert!(preds[0].matches(&3) && preds[1].matches(&9));
        assert!(set.to_predicates::<i32>().is_err(), "mismatched scalar must fail");

        let one = ValueSet::from(ValueRange::at_least(Value::U16(5)));
        assert_eq!(one.as_single(), Some(&ValueRange::at_least(Value::U16(5))));
        assert!(ValueSet::default().is_empty());
    }

    #[test]
    fn disjoint_conjunction_is_empty() {
        let rel = weather(5_000);
        let idx = RelationImprints::build(&rel);
        let ids = idx
            .query(
                &rel,
                &[
                    ("ts", ValueRange::at_most(Value::I64(10))),
                    ("ts", ValueRange::at_least(Value::I64(4_000))),
                ],
            )
            .unwrap();
        assert!(ids.is_empty());
    }
}
