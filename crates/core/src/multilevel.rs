//! Multi-level imprints (§7 future work).
//!
//! "Akin to prevailing techniques … a multi-level imprints organization may
//! lead to further improvements." This module adds a second level on top of
//! [`ColumnImprints`]: the column's cachelines are grouped into *blocks* of
//! `fanout` lines, and each block stores the OR of its line imprints. A
//! query first ANDs its mask against the level-2 vector; only blocks that
//! may contain matches descend into the level-1 dictionary walk, resumed
//! from a precomputed per-block cursor.
//!
//! For selective queries over large columns this cuts level-1 probes by up
//! to `fanout×`, at a storage cost of `8 + 12` bytes per block (vector +
//! cursor) — under 0.4% extra for the default fanout of 64.

use colstore::{AccessStats, Column, IdList, RangeIndex, RangePredicate, Scalar};

use crate::index::ColumnImprints;
use crate::masks;
use crate::query::ImprintStats;

/// Default number of cachelines per level-2 block.
pub const DEFAULT_FANOUT: u64 = 64;

/// Traversal state at a block boundary: where in the compressed level-1
/// structure the block's first line lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockCursor {
    /// Dictionary entry index.
    dict_pos: u32,
    /// Lines of that entry already consumed before this block.
    within: u32,
    /// Index into the imprint array of the entry's current vector.
    imp_pos: u32,
}

/// A two-level column imprints index.
///
/// # Examples
///
/// ```
/// use colstore::{Column, RangeIndex, RangePredicate};
/// use imprints::multilevel::MultiLevelImprints;
///
/// let col: Column<i64> = (0..1_000_000).map(|i| i / 8).collect();
/// let idx = MultiLevelImprints::build(&col);
/// let ids = idx.evaluate(&col, &RangePredicate::between(100, 200));
/// assert_eq!(ids.len(), 808);
/// ```
#[derive(Debug, Clone)]
pub struct MultiLevelImprints<T: Scalar> {
    base: ColumnImprints<T>,
    fanout: u64,
    level2: Vec<u64>,
    cursors: Vec<BlockCursor>,
}

impl<T: Scalar> MultiLevelImprints<T> {
    /// Builds base imprints plus the level-2 structure with the default
    /// fanout.
    pub fn build(col: &Column<T>) -> Self {
        Self::from_base(ColumnImprints::build(col), DEFAULT_FANOUT)
    }

    /// Wraps an existing level-1 index with a level-2 of `fanout` lines per
    /// block.
    ///
    /// # Panics
    /// Panics if `fanout == 0`.
    pub fn from_base(base: ColumnImprints<T>, fanout: u64) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        let total_lines = base.line_count();
        let n_blocks = total_lines.div_ceil(fanout) as usize;
        let mut level2 = vec![0u64; n_blocks];
        let mut cursors = Vec::with_capacity(n_blocks);

        let (imprints, dict) = base.parts();
        let mut dict_pos = 0usize;
        let mut within = 0u64; // lines consumed of the current entry
        let mut imp_pos = 0usize;
        let mut line = 0u64;
        // Walk line-by-line in run-sized jumps, recording a cursor at each
        // block boundary and ORing imprints into the block vectors.
        while line < total_lines {
            if line.is_multiple_of(fanout) {
                cursors.push(BlockCursor {
                    dict_pos: dict_pos as u32,
                    within: within as u32,
                    imp_pos: imp_pos as u32,
                });
            }
            let block = (line / fanout) as usize;
            let block_end = ((block as u64 + 1) * fanout).min(total_lines);
            // Current imprint vector and how many lines it still covers.
            let (vector, run_left) = if dict_pos < dict.len() {
                let e = dict[dict_pos];
                if e.repeat() {
                    (imprints[imp_pos], e.cnt() as u64 - within)
                } else {
                    (imprints[imp_pos], 1)
                }
            } else {
                // The un-finalized tail line.
                (base.tail().expect("lines beyond dict imply a tail").0, 1)
            };
            let take = run_left.min(block_end - line);
            level2[block] |= vector;
            line += take;
            // Advance the level-1 position by `take` lines.
            if dict_pos < dict.len() {
                let e = dict[dict_pos];
                within += take;
                if e.repeat() {
                    if within == e.cnt() as u64 {
                        dict_pos += 1;
                        imp_pos += 1;
                        within = 0;
                    }
                } else {
                    imp_pos += take as usize;
                    if within == e.cnt() as u64 {
                        dict_pos += 1;
                        within = 0;
                    }
                }
            }
        }
        MultiLevelImprints { base, fanout, level2, cursors }
    }

    /// The wrapped level-1 index.
    pub fn base(&self) -> &ColumnImprints<T> {
        &self.base
    }

    /// Cachelines per level-2 block.
    pub fn fanout(&self) -> u64 {
        self.fanout
    }

    /// Number of level-2 blocks.
    pub fn block_count(&self) -> usize {
        self.level2.len()
    }

    /// The level-2 vector of block `b` (OR of its line imprints).
    pub fn block_vector(&self, b: usize) -> u64 {
        self.level2[b]
    }

    /// Evaluates a range predicate, returning ids and statistics. Identical
    /// answers to the level-1 [`crate::query::evaluate`]; level-2 probes are
    /// counted in `access.index_probes` together with the level-1 probes.
    pub fn evaluate_with_imprint_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, ImprintStats) {
        assert_eq!(col.len(), self.base.rows(), "index does not cover this column");
        let mut stats = ImprintStats::default();
        let m = masks::make_masks(self.base.binning(), pred);
        let mut res: Vec<u64> = Vec::new();
        if m.mask == 0 {
            stats.access.lines_skipped = self.base.line_count();
            return (IdList::from_sorted(res), stats);
        }
        let values = col.values();
        let vpb = self.base.values_per_block() as u64;
        let rows = self.base.rows() as u64;
        let total_lines = self.base.line_count();
        let (imprints, dict) = self.base.parts();
        let not_inner = !m.innermask;

        for (b, &block_vec) in self.level2.iter().enumerate() {
            let first_line = b as u64 * self.fanout;
            let block_end = (first_line + self.fanout).min(total_lines);
            stats.access.index_probes += 1; // the level-2 probe
            if block_vec & m.mask == 0 {
                stats.access.lines_skipped += block_end - first_line;
                continue;
            }
            // Descend: walk level-1 from the block cursor.
            let cur = self.cursors[b];
            let mut dict_pos = cur.dict_pos as usize;
            let mut within = cur.within as u64;
            let mut imp_pos = cur.imp_pos as usize;
            let mut line = first_line;
            while line < block_end {
                let (vector, run_left) = if dict_pos < dict.len() {
                    let e = dict[dict_pos];
                    if e.repeat() {
                        (imprints[imp_pos], e.cnt() as u64 - within)
                    } else {
                        (imprints[imp_pos], 1)
                    }
                } else {
                    (self.base.tail().expect("tail line").0, 1)
                };
                let take = run_left.min(block_end - line);
                stats.access.index_probes += 1;
                if vector & m.mask != 0 {
                    let ids = line * vpb..((line + take) * vpb).min(rows);
                    if vector & not_inner == 0 {
                        stats.lines_full += take;
                        stats.ids_via_full_lines += ids.end - ids.start;
                        res.extend(ids);
                    } else {
                        stats.lines_checked += take;
                        stats.access.lines_fetched += take;
                        stats.access.value_comparisons += ids.end - ids.start;
                        for id in ids {
                            if pred.matches(&values[id as usize]) {
                                res.push(id);
                            }
                        }
                    }
                } else {
                    stats.access.lines_skipped += take;
                }
                line += take;
                if dict_pos < dict.len() {
                    let e = dict[dict_pos];
                    within += take;
                    if e.repeat() {
                        if within == e.cnt() as u64 {
                            dict_pos += 1;
                            imp_pos += 1;
                            within = 0;
                        }
                    } else {
                        imp_pos += take as usize;
                        if within == e.cnt() as u64 {
                            dict_pos += 1;
                            within = 0;
                        }
                    }
                }
            }
        }
        (IdList::from_sorted(res), stats)
    }

    /// Bytes of the two-level structure: level-1 plus block vectors and
    /// cursors.
    pub fn size_bytes(&self) -> usize {
        RangeIndex::size_bytes(&self.base)
            + self.level2.len() * 8
            + self.cursors.len() * std::mem::size_of::<BlockCursor>()
    }
}

impl<T: Scalar> RangeIndex<T> for MultiLevelImprints<T> {
    fn name(&self) -> &'static str {
        "imprints-2level"
    }

    fn size_bytes(&self) -> usize {
        MultiLevelImprints::size_bytes(self)
    }

    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats) {
        let (ids, stats) = self.evaluate_with_imprint_stats(col, pred);
        (ids, stats.access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;

    fn oracle<T: Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> Vec<u64> {
        col.values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn block_vectors_are_or_of_lines() {
        let col: Column<i32> = (0..10_000).map(|i| (i * 13) % 777).collect();
        let ml = MultiLevelImprints::from_base(ColumnImprints::build(&col), 16);
        let lines: Vec<u64> = ml.base().line_imprints().collect();
        for (b, chunk) in lines.chunks(16).enumerate() {
            let expect = chunk.iter().fold(0u64, |a, &v| a | v);
            assert_eq!(ml.block_vector(b), expect, "block {b}");
        }
        assert_eq!(ml.block_count(), lines.len().div_ceil(16));
    }

    #[test]
    fn answers_identical_to_level1() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..10 {
            let n = rng.gen_range(1..40_000);
            let card = rng.gen_range(1..3000);
            let col: Column<i64> = (0..n).map(|_| rng.gen_range(0..card)).collect();
            let base = ColumnImprints::build(&col);
            for fanout in [1u64, 7, 64, 1000] {
                let ml = MultiLevelImprints::from_base(base.clone(), fanout);
                for _ in 0..5 {
                    let a = rng.gen_range(0..card);
                    let b = rng.gen_range(0..card);
                    let pred = RangePredicate::between(a.min(b), a.max(b));
                    let (l1, _) = query::evaluate(&base, &col, &pred);
                    let (l2, _) = ml.evaluate_with_imprint_stats(&col, &pred);
                    assert_eq!(l1, l2, "fanout {fanout}, pred {pred}");
                    assert_eq!(l2.as_slice(), oracle(&col, &pred));
                }
            }
        }
    }

    #[test]
    fn level2_probe_overhead_is_bounded() {
        // On perfectly RLE-compressed data level-2 cannot help (level-1
        // already probes once per long run), but its overhead is bounded by
        // one probe per block.
        let col: Column<u8> = (0..64 * 65_536).map(|i| (i / 65_536) as u8).collect();
        let base = ColumnImprints::build(&col);
        let ml = MultiLevelImprints::from_base(base.clone(), 64);
        let pred = RangePredicate::equals(3);
        let (r1, s1) = query::evaluate(&base, &col, &pred);
        let (r2, s2) = ml.evaluate_with_imprint_stats(&col, &pred);
        assert_eq!(r1, r2);
        assert!(
            s2.access.index_probes <= s1.access.index_probes + ml.block_count() as u64,
            "2-level probes {} vs flat {} + {} blocks",
            s2.access.index_probes,
            s1.access.index_probes,
            ml.block_count()
        );
    }

    #[test]
    fn level2_cuts_probes_when_rle_is_poor() {
        // Locally clustered data whose per-line noise defeats the RLE:
        // values drift slowly (locality spans a couple of bins) but
        // neighbouring lines have distinct imprints, so level-1 stores
        // nearly every line. Level-2 then skips whole blocks with one probe.
        // Domain ~0..62k (bin width ~1k); a slow full-domain sweep plus
        // ~2.5-bin noise per row.
        let n = 400_000u64;
        let col: Column<i64> = (0..n)
            .map(|i| {
                let base = i * 59_500 / n;
                let noise = i.wrapping_mul(2_654_435_761) % 2_500;
                (base + noise) as i64
            })
            .collect();
        let base = ColumnImprints::build(&col);
        let ml = MultiLevelImprints::from_base(base.clone(), 64);
        assert!(
            base.compression_ratio() > 0.3,
            "data must defeat the RLE, ratio {}",
            base.compression_ratio()
        );
        // A selective query at one end of the domain.
        let pred = RangePredicate::between(0, 3_000);
        let (r1, s1) = query::evaluate(&base, &col, &pred);
        let (r2, s2) = ml.evaluate_with_imprint_stats(&col, &pred);
        assert_eq!(r1, r2);
        assert!(
            s2.access.index_probes * 2 < s1.access.index_probes,
            "expected ≥2x probe cut: 2-level {} vs flat {}",
            s2.access.index_probes,
            s1.access.index_probes
        );
    }

    #[test]
    fn partial_tail_and_odd_fanout() {
        let col: Column<i32> = (0..1003).collect(); // 62 lines + 11-value tail
        let ml = MultiLevelImprints::from_base(ColumnImprints::build(&col), 7);
        let pred = RangePredicate::at_least(1000);
        let (ids, _) = ml.evaluate_with_imprint_stats(&col, &pred);
        assert_eq!(ids.as_slice(), &[1000, 1001, 1002]);
        assert_eq!(ml.block_count(), 63usize.div_ceil(7));
    }

    #[test]
    fn empty_column() {
        let col: Column<i32> = Column::new();
        let ml = MultiLevelImprints::build(&col);
        assert_eq!(ml.block_count(), 0);
        let (ids, _) = ml.evaluate_with_imprint_stats(&col, &RangePredicate::all());
        assert!(ids.is_empty());
    }

    #[test]
    fn size_overhead_is_tiny() {
        let col: Column<i64> = (0..1_000_000).map(|i| i % 50_000).collect();
        let base = ColumnImprints::build(&col);
        let ml = MultiLevelImprints::from_base(base.clone(), 64);
        let extra = ml.size_bytes() - RangeIndex::size_bytes(&base);
        assert!(extra < col.data_bytes() / 200, "level-2 overhead {extra} too large");
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn zero_fanout_rejected() {
        let col: Column<i32> = (0..100).collect();
        let _ = MultiLevelImprints::from_base(ColumnImprints::build(&col), 0);
    }
}
