//! Histogram binning (Algorithm 2).
//!
//! The value domain of a column is divided into at most 64 ranges — the
//! *bins* — whose borders are derived from a small sorted sample:
//!
//! * **Low cardinality** (fewer than 64 distinct sampled values): every
//!   distinct value becomes a border, so each bin holds exactly one value.
//!   The bin count is rounded up to the next of {8, 16, 32, 64}, and unused
//!   borders are filled with the domain maximum so the binary search stays
//!   a fixed-shape 64-way search.
//! * **High cardinality**: the sample (with duplicate multiplicity, per the
//!   paper's §2.4 text: "including in the count the multiple occurrences of
//!   the same value") is split into 62 equal-count ranges, approximating an
//!   equi-height histogram; the 64th border is the domain maximum.
//!
//! Bin semantics: bin ranges are "inclusive on the left, and exclusive on
//! the right". With borders `b[0] ≤ b[1] ≤ …`, the bin of `v` is
//! `min(#{i : b[i] ≤ v}, bins − 1)`: bin 0 is the low overflow bin
//! `(−∞, b[0])`, bin `i ≥ 1` is `[b[i−1], b[i])`, and the top bin extends to
//! `+∞`. The first and last bins thereby absorb out-of-sample outliers,
//! which is what makes appends cheap (§4.1).

use colstore::{Bound, Column, Scalar};

use crate::sampling;
use crate::search;
use crate::MAX_BINS;

/// How bin borders are derived from the sample.
///
/// The paper uses the equi-height split exclusively; §7 names "judicious
/// choice of the binning scheme" as future work, so the equi-width
/// alternative is provided for the ablation benchmark: it is better when
/// queries are uniform over the *domain* rather than over the *data*, and
/// markedly worse under skew (hot bins stay huge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BinningStrategy {
    /// Approximate equi-height: each bin holds roughly the same number of
    /// sampled values (Algorithm 2; the paper's choice).
    #[default]
    EquiHeight,
    /// Equi-width: the sampled value range is cut into equal-length
    /// intervals, ignoring the data distribution.
    EquiWidth,
}

/// The histogram: 64 bin borders plus the number of bins actually in use
/// (8, 16, 32 or 64).
#[derive(Debug, Clone, PartialEq)]
pub struct Binning<T: Scalar> {
    borders: [T; MAX_BINS],
    bins: u8,
}

impl<T: Scalar> Binning<T> {
    /// Builds the binning for `col` by sampling (Algorithm 2 driver).
    ///
    /// `sample_size` caps the sample (the paper uses 2048); `seed` makes
    /// sampling reproducible.
    pub fn from_column(col: &Column<T>, sample_size: usize, seed: u64) -> Self {
        let sample = sampling::sorted_sample(col, sample_size, seed);
        Self::from_sorted_sample(&sample)
    }

    /// Builds the binning with an explicit [`BinningStrategy`].
    pub fn from_column_with_strategy(
        col: &Column<T>,
        sample_size: usize,
        seed: u64,
        strategy: BinningStrategy,
    ) -> Self {
        let sample = sampling::sorted_sample(col, sample_size, seed);
        match strategy {
            BinningStrategy::EquiHeight => Self::from_sorted_sample(&sample),
            BinningStrategy::EquiWidth => Self::equi_width_from_sorted_sample(&sample),
        }
    }

    /// Equi-width alternative (§7 "judicious choice of the binning
    /// scheme"): 62 equal-length intervals between the sampled min and max,
    /// via the numeric (`as_f64`) projection. Low-cardinality samples still
    /// take the exact one-value-per-bin path, where the strategies agree.
    pub fn equi_width_from_sorted_sample(sample: &[T]) -> Self {
        let distinct = sampling::distinct_in_sorted(sample);
        if distinct < MAX_BINS {
            return Self::from_sorted_sample(sample);
        }
        let lo = sample[0].as_f64();
        let hi = sample[sample.len() - 1].as_f64();
        if !(hi - lo).is_finite() || hi <= lo {
            // Degenerate numeric span (infinities, NaN extremes): fall back
            // to the robust equi-height split.
            return Self::from_sorted_sample(sample);
        }
        let mut borders = [T::MAX_VALUE; MAX_BINS];
        let step = (hi - lo) / 62.0;
        let mut n = 0;
        for i in 0..63 {
            let target = lo + step * i as f64;
            // Snap to the smallest sampled value ≥ target so borders stay
            // real domain values (required for exact integer semantics).
            let pos = sample.partition_point(|v| v.as_f64() < target);
            let candidate = sample[pos.min(sample.len() - 1)];
            if n == 0 || borders[n - 1].lt_total(&candidate) {
                borders[n] = candidate;
                n += 1;
            }
        }
        Binning { borders, bins: MAX_BINS as u8 }
    }

    /// Builds the binning from an already-sorted sample (duplicates
    /// allowed; they steer the equal-height split).
    pub fn from_sorted_sample(sample: &[T]) -> Self {
        debug_assert!(
            sample.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "sample must be sorted"
        );
        let mut borders = [T::MAX_VALUE; MAX_BINS];
        let distinct = sampling::distinct_in_sorted(sample);

        if distinct < MAX_BINS {
            // Low cardinality: one border per distinct value.
            let mut n = 0;
            for &v in sample {
                if n == 0 || borders[n - 1].total_cmp(&v).is_ne() {
                    borders[n] = v;
                    n += 1;
                }
            }
            debug_assert_eq!(n, distinct);
            // Round the bin count up to the next power of two in {8,16,32,64}.
            // A border array of d values defines d+1 reachable bins, hence
            // the strict `<` thresholds of Algorithm 2.
            let bins = if distinct < 8 {
                8
            } else if distinct < 16 {
                16
            } else if distinct < 32 {
                32
            } else {
                64
            };
            Binning { borders, bins }
        } else {
            // High cardinality: 62 equal-count ranges over the sample with
            // multiplicity. `ystep` stays fractional to spread the ranges
            // evenly (Algorithm 2 keeps it a double for the same reason).
            let ystep = sample.len() as f64 / 62.0;
            let mut y = 0.0f64;
            let mut n = 0;
            for _ in 0..63 {
                let idx = (y as usize).min(sample.len() - 1);
                let candidate = sample[idx];
                // Keep borders strictly increasing: a duplicate border would
                // only create unreachable bins.
                if n == 0 || borders[n - 1].lt_total(&candidate) {
                    borders[n] = candidate;
                    n += 1;
                }
                y += ystep;
            }
            // borders[63] stays MAX_VALUE (the `coltype_MAX` sentinel).
            Binning { borders, bins: MAX_BINS as u8 }
        }
    }

    /// (crate) Reassembles a binning from its raw parts (deserialization).
    pub(crate) fn from_raw(borders: [T; MAX_BINS], bins: u8) -> Self {
        debug_assert!(matches!(bins, 8 | 16 | 32 | 64));
        Binning { borders, bins }
    }

    /// Number of bins in use (8, 16, 32 or 64).
    #[inline]
    pub fn bins(&self) -> usize {
        self.bins as usize
    }

    /// The full 64-entry border array (unused tail entries hold the domain
    /// maximum sentinel).
    #[inline]
    pub fn borders(&self) -> &[T; MAX_BINS] {
        &self.borders
    }

    /// The bin `v` falls into: `min(#{i : b[i] ≤ v}, bins − 1)`.
    ///
    /// §2.5 motivates a hand-unrolled branch-parallel binary search ("three
    /// times faster" than a loop in the authors' C). In Rust, the ablation
    /// benchmark (`ablations::get_bin`) shows `slice::partition_point`
    /// already compiles to a branchless 6-probe search and *beats* the
    /// paper-style unrolled form ([`Binning::bin_of_unrolled`], 7 probes),
    /// so the portable form is the default. Both are kept and
    /// differential-tested against each other.
    #[inline]
    pub fn bin_of(&self, v: T) -> usize {
        let raw = self.borders.partition_point(|b| b.le_total(&v));
        raw.min(self.bins as usize - 1)
    }

    /// The paper-faithful unrolled branch-parallel search (§2.5); see
    /// [`Binning::bin_of`] for why it is not the default here.
    #[inline]
    pub fn bin_of_unrolled(&self, v: T) -> usize {
        let raw = search::count_le_unrolled(&self.borders, v);
        raw.min(self.bins as usize - 1)
    }

    /// Alias of the portable implementation, kept for differential tests.
    #[inline]
    pub fn bin_of_portable(&self, v: T) -> usize {
        let raw = search::count_le_portable(&self.borders, v);
        raw.min(self.bins as usize - 1)
    }

    /// The value range covered by bin `i`, as bounds:
    /// `(None, b[0])` for bin 0, `[b[i−1], b[i])` in the middle, and
    /// `[b[bins−2], None]` for the top bin. `None` means unbounded
    /// (extends to the domain extreme, inclusive).
    pub fn bin_range(&self, i: usize) -> (Option<T>, Option<T>) {
        assert!(i < self.bins(), "bin index out of range");
        let lo = if i == 0 { None } else { Some(self.borders[i - 1]) };
        let hi = if i == self.bins() - 1 { None } else { Some(self.borders[i]) };
        (lo, hi)
    }

    /// Whether every value that can fall into bin `i` is guaranteed to
    /// satisfy the predicate bounds `low`/`high` (used for the
    /// `innermask`). Conservative: returns `false` when unsure.
    pub fn bin_fully_inside(&self, i: usize, low: &Bound<T>, high: &Bound<T>) -> bool {
        let (bin_lo, bin_hi) = self.bin_range(i);
        let low_ok = match (low, &bin_lo) {
            (Bound::Unbounded, _) => true,
            // Bin 0 reaches down to the domain minimum.
            (Bound::Inclusive(l), None) => l.le_total(&T::MIN_VALUE),
            (Bound::Exclusive(_), None) => false,
            (Bound::Inclusive(l), Some(b)) => l.le_total(b),
            (Bound::Exclusive(l), Some(b)) => l.lt_total(b),
        };
        if !low_ok {
            return false;
        }
        match (high, &bin_hi) {
            (Bound::Unbounded, _) => true,
            // The top bin reaches up to the domain maximum, *inclusive*.
            (Bound::Inclusive(h), None) => T::MAX_VALUE.le_total(h),
            (Bound::Exclusive(_), None) => false,
            // Values in the bin are < b; v < b ≤ h ⇒ v ≤ h and v < h.
            (Bound::Inclusive(h), Some(b)) | (Bound::Exclusive(h), Some(b)) => b.le_total(h),
        }
    }

    /// Bytes this structure occupies (counted toward the index size).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binning_of(values: Vec<i32>) -> Binning<i32> {
        let mut s = values;
        s.sort_unstable();
        Binning::from_sorted_sample(&s)
    }

    #[test]
    fn low_cardinality_one_value_per_bin() {
        let b = binning_of(vec![1, 8, 2, 3, 7, 4, 6, 5, 8, 7, 1, 4, 2, 1, 6]);
        // 8 distinct values -> 16 bins (8 needs d+1 = 9 reachable bins).
        assert_eq!(b.bins(), 16);
        // Each distinct value gets its own bin; values below min go to 0.
        assert_eq!(b.bin_of(0), 0);
        assert_eq!(b.bin_of(1), 1);
        assert_eq!(b.bin_of(2), 2);
        assert_eq!(b.bin_of(8), 8);
        assert_eq!(b.bin_of(100), 8, "above max joins the last real bin's side");
    }

    #[test]
    fn seven_distinct_gives_eight_bins() {
        let b = binning_of((1..=7).collect());
        assert_eq!(b.bins(), 8);
        for v in 1..=7 {
            assert_eq!(b.bin_of(v), v as usize);
        }
        assert_eq!(b.bin_of(0), 0);
    }

    #[test]
    fn bin_thresholds() {
        assert_eq!(binning_of((0..7).collect()).bins(), 8);
        assert_eq!(binning_of((0..8).collect()).bins(), 16);
        assert_eq!(binning_of((0..15).collect()).bins(), 16);
        assert_eq!(binning_of((0..16).collect()).bins(), 32);
        assert_eq!(binning_of((0..31).collect()).bins(), 32);
        assert_eq!(binning_of((0..32).collect()).bins(), 64);
        assert_eq!(binning_of((0..63).collect()).bins(), 64);
        assert_eq!(binning_of((0..64).collect()).bins(), 64);
        assert_eq!(binning_of((0..1000).collect()).bins(), 64);
    }

    #[test]
    fn high_cardinality_equal_height() {
        // 6200 values 0..6200: borders should be ~ every 100th value.
        let b = binning_of((0..6200).collect());
        assert_eq!(b.bins(), 64);
        assert_eq!(b.borders()[0], 0);
        // The split is even: border i ≈ i*100.
        for i in 0..62 {
            let expect = (i as f64 * 100.0) as i32;
            let got = b.borders()[i];
            assert!((got - expect).abs() <= 1, "border {i}: got {got}, expected ~{expect}");
        }
        assert_eq!(b.borders()[63], i32::MAX);
        // Values spread across all bins.
        assert_eq!(b.bin_of(-5), 0);
        assert_eq!(b.bin_of(0), 1);
        assert_eq!(b.bin_of(6199), 63);
        assert_eq!(b.bin_of(i32::MAX), 63);
    }

    #[test]
    fn bin_of_is_monotonic() {
        let b = binning_of((0..10_000).map(|i| (i * 37) % 5000).collect());
        let mut prev = 0;
        for v in (-100..5100).step_by(7) {
            let bin = b.bin_of(v);
            assert!(bin >= prev, "bin_of must be monotone in v");
            assert!(bin < b.bins());
            prev = bin;
        }
    }

    #[test]
    fn unrolled_matches_portable_exhaustively() {
        let b = binning_of((0..6400).map(|i| i * 3).collect());
        for v in -10..19_300 {
            assert_eq!(b.bin_of(v), b.bin_of_unrolled(v), "v = {v}");
            assert_eq!(b.bin_of(v), b.bin_of_portable(v), "v = {v}");
        }
        // Domain extremes.
        assert_eq!(b.bin_of(i32::MIN), b.bin_of_unrolled(i32::MIN));
        assert_eq!(b.bin_of(i32::MAX), b.bin_of_unrolled(i32::MAX));
    }

    #[test]
    fn skewed_sample_shrinks_hot_bins() {
        // Sample: 90% of mass at value 100, the rest uniform 0..6200.
        let mut s: Vec<i32> = (0..620).map(|i| i * 10).collect();
        s.extend(std::iter::repeat_n(100, 5580));
        s.sort_unstable();
        let b = Binning::from_sorted_sample(&s);
        assert_eq!(b.bins(), 64);
        // The value 100 must sit on a border: its mass forces a split there.
        assert!(b.borders().contains(&100));
    }

    #[test]
    fn duplicate_borders_are_skipped() {
        // Extreme skew: only 64+ distinct but one dominates.
        let mut s: Vec<i32> = (0..64).collect();
        s.extend(std::iter::repeat_n(30, 10_000));
        s.sort_unstable();
        let b = Binning::from_sorted_sample(&s);
        // Borders strictly increasing among the real (non-sentinel) ones.
        let bs = b.borders();
        for w in bs.windows(2) {
            if w[1].total_cmp(&i32::MAX).is_ne() {
                assert!(w[0] < w[1], "borders must be strictly increasing");
            }
        }
    }

    #[test]
    fn floats_with_nan() {
        let mut s: Vec<f64> = (0..200).map(|i| i as f64).collect();
        s.push(f64::NAN);
        s.sort_unstable_by(f64::total_cmp);
        let b = Binning::from_sorted_sample(&s);
        assert_eq!(b.bin_of(f64::NAN), b.bins() - 1, "NaN lands in the top bin");
        assert_eq!(b.bin_of(f64::NEG_INFINITY), 0);
        assert_eq!(b.bin_of(-1.0), 0);
    }

    #[test]
    fn bin_range_endpoints() {
        let b = binning_of((1..=7).collect());
        assert_eq!(b.bin_range(0), (None, Some(1)));
        assert_eq!(b.bin_range(1), (Some(1), Some(2)));
        assert_eq!(b.bin_range(7), (Some(7), None));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_range_rejects_out_of_range() {
        let b = binning_of((1..=7).collect());
        let _ = b.bin_range(8);
    }

    #[test]
    fn fully_inside_checks() {
        let b = binning_of((1..=7).collect()); // bins: (..1),[1,2),...,[7,..)
        use Bound::*;
        // [1, 3): bins 1 and 2 are fully inside.
        assert!(b.bin_fully_inside(1, &Inclusive(1), &Exclusive(3)));
        assert!(b.bin_fully_inside(2, &Inclusive(1), &Exclusive(3)));
        assert!(!b.bin_fully_inside(3, &Inclusive(1), &Exclusive(3)));
        // Bin 0 only fully inside when low is MIN or unbounded.
        assert!(!b.bin_fully_inside(0, &Inclusive(0), &Unbounded));
        assert!(b.bin_fully_inside(0, &Inclusive(i32::MIN), &Unbounded));
        assert!(b.bin_fully_inside(0, &Unbounded, &Exclusive(1)));
        // Top bin only fully inside when high is MAX or unbounded.
        assert!(b.bin_fully_inside(7, &Inclusive(7), &Unbounded));
        assert!(b.bin_fully_inside(7, &Inclusive(7), &Inclusive(i32::MAX)));
        assert!(!b.bin_fully_inside(7, &Inclusive(7), &Inclusive(100)));
        // Exclusive low bound on an exact border keeps the bin out.
        assert!(!b.bin_fully_inside(1, &Exclusive(1), &Unbounded));
        assert!(b.bin_fully_inside(2, &Exclusive(1), &Unbounded));
    }

    #[test]
    fn empty_sample_defaults() {
        let b = Binning::<i32>::from_sorted_sample(&[]);
        assert_eq!(b.bins(), 8);
        assert_eq!(b.bin_of(0), 0);
        assert_eq!(b.bin_of(i32::MAX), 7);
    }

    #[test]
    fn equi_width_uniform_data_matches_equi_height_roughly() {
        // On uniform data both strategies produce ~equal bins.
        let s: Vec<i64> = (0..6200).collect();
        let eh = Binning::from_sorted_sample(&s);
        let ew = Binning::equi_width_from_sorted_sample(&s);
        assert_eq!(ew.bins(), 64);
        for i in 0..62 {
            let d = (eh.borders()[i] - ew.borders()[i]).abs();
            assert!(d <= 110, "border {i}: eh {} vs ew {}", eh.borders()[i], ew.borders()[i]);
        }
    }

    #[test]
    fn equi_width_ignores_skew_equi_height_adapts() {
        // 90% of mass at small values: equi-height packs borders low,
        // equi-width spreads them evenly over the range.
        let mut s: Vec<i64> = (0..1000).collect();
        s.extend((0..9000).map(|i| i % 100));
        s.sort_unstable();
        let eh = Binning::from_sorted_sample(&s);
        let ew = Binning::equi_width_from_sorted_sample(&s);
        // Median border: equi-height far below equi-width.
        assert!(eh.borders()[31] < ew.borders()[31]);
        // Both remain valid binnings.
        for v in [0i64, 50, 500, 999, 5000] {
            assert!(eh.bin_of(v) < eh.bins());
            assert_eq!(ew.bin_of(v), ew.bin_of_portable(v));
        }
    }

    #[test]
    fn equi_width_low_cardinality_falls_back() {
        let s: Vec<i64> = (0..20).collect();
        let eh = Binning::from_sorted_sample(&s);
        let ew = Binning::equi_width_from_sorted_sample(&s);
        assert_eq!(eh, ew);
    }

    #[test]
    fn from_column_end_to_end() {
        let col: Column<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
        let b = Binning::from_column(&col, 2048, 42);
        assert_eq!(b.bins(), 64);
        for &v in col.values().iter().take(1000) {
            let bin = b.bin_of(v);
            assert!(bin < 64);
            assert_eq!(bin, b.bin_of_portable(v));
        }
    }
}
