//! Binary persistence of a column imprints index.
//!
//! Secondary indexes are cheap to rebuild ("the overhead for rebuilding an
//! imprint index during a regular scan is minimal", §4.2), but persisting
//! them is cheaper still, and a database restart should not re-scan every
//! column. The format reuses the checksummed [`colstore::storage`]
//! primitives:
//!
//! ```text
//! magic "CIMI" | version u16 | type tag u8 | bins u8
//! | block_bytes u32 | sample_size u32 | seed u64 | strategy u8 | pad 3×u8
//! | borders: 64 × scalar | rows u64 | tail_imprint u64 | tail_len u64
//! | n_imprints u64 | imprints: n × u64
//! | n_dict u64 | dict: n × u32
//! | crc32
//! ```

use std::io::{Read, Write};

use colstore::storage::{Reader, Writer};
use colstore::{ColumnType, Error, Result, Scalar};

use crate::binning::{Binning, BinningStrategy};
use crate::builder::{BuildOptions, Compressor};
use crate::dict::DictEntry;
use crate::index::ColumnImprints;
use crate::MAX_BINS;

/// Magic bytes identifying an imprints index file.
pub const INDEX_MAGIC: [u8; 4] = *b"CIMI";
/// Current index file format version.
pub const INDEX_VERSION: u16 = 1;

/// Serializes `idx` to `out`.
pub fn write_index<T: Scalar, W: Write>(idx: &ColumnImprints<T>, out: &mut W) -> Result<()> {
    let mut w = Writer::new();
    w.put_u16(INDEX_VERSION);
    w.put_u8(T::TYPE.tag());
    w.put_u8(idx.bins() as u8);
    let opts = idx.options();
    w.put_u32(opts.block_bytes as u32);
    w.put_u32(opts.sample_size as u32);
    w.put_u64(opts.seed);
    w.put_u8(match opts.strategy {
        BinningStrategy::EquiHeight => 0,
        BinningStrategy::EquiWidth => 1,
    });
    w.put_u8(0);
    w.put_u8(0);
    w.put_u8(0);
    for &b in idx.binning().borders().iter() {
        w.put_scalar(b);
    }
    w.put_u64(idx.rows() as u64);
    let (tail_imp, tail_len) = idx.tail().unwrap_or((0, 0));
    w.put_u64(tail_imp);
    w.put_u64(tail_len as u64);
    let (imprints, dict) = idx.parts();
    w.put_u64(imprints.len() as u64);
    for &v in imprints {
        w.put_u64(v);
    }
    w.put_u64(dict.len() as u64);
    for &e in dict {
        w.put_u32(e.to_raw());
    }
    w.finish(&INDEX_MAGIC, out)
}

/// Deserializes an index written by [`write_index`]; validates magic,
/// checksum, scalar type and structural invariants.
pub fn read_index<T: Scalar, R: Read>(input: &mut R) -> Result<ColumnImprints<T>> {
    let mut r = Reader::open(&INDEX_MAGIC, input)?;
    let version = r.get_u16()?;
    if version != INDEX_VERSION {
        return Err(Error::Corrupt(format!("unsupported index version {version}")));
    }
    let tag = r.get_u8()?;
    let ty = ColumnType::from_tag(tag)
        .ok_or_else(|| Error::Corrupt(format!("unknown type tag {tag}")))?;
    if ty != T::TYPE {
        return Err(Error::Mismatch(format!("file indexes {ty}, requested {}", T::TYPE)));
    }
    let bins = r.get_u8()?;
    if !matches!(bins, 8 | 16 | 32 | 64) {
        return Err(Error::Corrupt(format!("invalid bin count {bins}")));
    }
    let block_bytes = r.get_u32()? as usize;
    let sample_size = r.get_u32()? as usize;
    let seed = r.get_u64()?;
    let strategy = match r.get_u8()? {
        0 => BinningStrategy::EquiHeight,
        1 => BinningStrategy::EquiWidth,
        s => return Err(Error::Corrupt(format!("unknown binning strategy {s}"))),
    };
    let _pad = (r.get_u8()?, r.get_u8()?, r.get_u8()?);
    if block_bytes == 0 || !block_bytes.is_multiple_of(std::mem::size_of::<T>()) {
        return Err(Error::Corrupt(format!("invalid block size {block_bytes}")));
    }
    let mut borders = [T::MAX_VALUE; MAX_BINS];
    for b in borders.iter_mut() {
        *b = r.get_scalar::<T>()?;
    }
    let rows = r.get_u64()? as usize;
    let tail_imprint = r.get_u64()?;
    let tail_len = r.get_u64()? as usize;
    let n_imprints = r.get_count(8, "imprint vector")?;
    let mut imprints = Vec::with_capacity(n_imprints);
    for _ in 0..n_imprints {
        imprints.push(r.get_u64()?);
    }
    let n_dict = r.get_count(4, "dictionary")?;
    let mut dict = Vec::with_capacity(n_dict);
    for _ in 0..n_dict {
        dict.push(DictEntry::from_raw(r.get_u32()?));
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!("{} trailing bytes", r.remaining())));
    }

    let comp = Compressor::from_parts(imprints, dict);
    comp.verify().map_err(Error::Corrupt)?;
    let opts = BuildOptions { sample_size, seed, block_bytes, strategy };
    let vpb = block_bytes / std::mem::size_of::<T>();
    if tail_len >= vpb {
        return Err(Error::Corrupt(format!("tail length {tail_len} ≥ block capacity {vpb}")));
    }
    if comp.lines() * vpb as u64 + tail_len as u64 != rows as u64 {
        return Err(Error::Corrupt(format!(
            "geometry mismatch: {} lines × {vpb} + tail {tail_len} ≠ {rows} rows",
            comp.lines()
        )));
    }
    let binning = Binning::from_raw(borders, bins);
    Ok(ColumnImprints::from_raw_parts(binning, comp, tail_imprint, tail_len, rows, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::{Column, RangeIndex, RangePredicate};

    fn roundtrip<T: Scalar>(idx: &ColumnImprints<T>) -> ColumnImprints<T> {
        let mut bytes = Vec::new();
        write_index(idx, &mut bytes).unwrap();
        read_index::<T, _>(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let col: Column<i32> = (0..12_345).map(|i| (i * 7) % 321).collect();
        let idx = ColumnImprints::build(&col);
        let back = roundtrip(&idx);
        assert_eq!(back.rows(), idx.rows());
        assert_eq!(back.bins(), idx.bins());
        assert_eq!(back.parts().0, idx.parts().0);
        assert_eq!(back.tail(), idx.tail());
        assert_eq!(back.binning().borders(), idx.binning().borders());
        back.verify(&col).unwrap();
        // Query answers are identical.
        let pred = RangePredicate::between(10, 100);
        assert_eq!(back.evaluate(&col, &pred), idx.evaluate(&col, &pred));
    }

    #[test]
    fn roundtrip_float_index() {
        let col: Column<f64> = (0..5000).map(|i| (i as f64).cos()).collect();
        let idx = ColumnImprints::build(&col);
        let back = roundtrip(&idx);
        back.verify(&col).unwrap();
    }

    #[test]
    fn roundtrip_empty_index() {
        let col: Column<u16> = Column::new();
        let idx = ColumnImprints::build(&col);
        let back = roundtrip(&idx);
        assert_eq!(back.rows(), 0);
        back.verify(&col).unwrap();
    }

    #[test]
    fn roundtrip_nondefault_block() {
        let col: Column<i64> = (0..999).collect();
        let idx = ColumnImprints::build_with(
            &col,
            BuildOptions { block_bytes: 256, ..Default::default() },
        );
        let back = roundtrip(&idx);
        assert_eq!(back.values_per_block(), 32);
        back.verify(&col).unwrap();
    }

    #[test]
    fn wrong_type_rejected() {
        let col: Column<i32> = (0..100).collect();
        let idx = ColumnImprints::build(&col);
        let mut bytes = Vec::new();
        write_index(&idx, &mut bytes).unwrap();
        let err = read_index::<f32, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Mismatch(_)));
    }

    #[test]
    fn corruption_rejected() {
        let col: Column<i32> = (0..10_000).collect();
        let idx = ColumnImprints::build(&col);
        let mut bytes = Vec::new();
        write_index(&idx, &mut bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(read_index::<i32, _>(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let col: Column<i32> = (0..10_000).collect();
        let idx = ColumnImprints::build(&col);
        let mut bytes = Vec::new();
        write_index(&idx, &mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(read_index::<i32, _>(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn geometry_validation_catches_bad_rows() {
        let col: Column<i32> = (0..1000).collect();
        let idx = ColumnImprints::build(&col);
        let mut bytes = Vec::new();
        write_index(&idx, &mut bytes).unwrap();
        // Find and corrupt the rows field while keeping the checksum valid:
        // easiest is to rewrite through the Writer with a bogus row count —
        // emulate by rebuilding the payload. Instead, simply check that an
        // honest file passes and rely on unit construction for the invariant.
        let back = read_index::<i32, _>(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.rows(), 1000);
    }
}
