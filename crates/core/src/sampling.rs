//! Uniform sampling for histogram construction (§2.4–2.5).
//!
//! "The histogram is created by sampling a small number of values from the
//! column, not more than 2048 in our implementation." The sample is then
//! sorted and duplicate-eliminated (Algorithm 2). Sampling is `O(sample)`
//! with random access, so binning cost is independent of the column size.

use colstore::{Column, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws up to `sample_size` values uniformly at random (with replacement,
/// like the paper's `uni_sample`), sorts them by total order and removes
/// duplicates. Returns the sorted, distinct sample.
///
/// If the column has at most `sample_size` rows the "sample" is the whole
/// column — the histogram is then exact rather than approximate.
pub fn sorted_distinct_sample<T: Scalar>(col: &Column<T>, sample_size: usize, seed: u64) -> Vec<T> {
    let values = col.values();
    let mut sample: Vec<T> = if values.len() <= sample_size {
        values.to_vec()
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..sample_size).map(|_| values[rng.gen_range(0..values.len())]).collect()
    };
    sample.sort_unstable_by(T::total_cmp);
    sample.dedup_by(|a, b| a.total_cmp(b).is_eq());
    sample
}

/// Like [`sorted_distinct_sample`] but *keeps duplicates* in the sorted
/// output. Algorithm 2 removes duplicates before picking borders, but
/// "by counting also duplicate sampled values … repeated values are more
/// likely to be sampled, creating smaller ranges for their respective bins":
/// the equal-height division of the paper operates on the sample *with*
/// multiplicity. This variant feeds that division.
pub fn sorted_sample<T: Scalar>(col: &Column<T>, sample_size: usize, seed: u64) -> Vec<T> {
    let values = col.values();
    let mut sample: Vec<T> = if values.len() <= sample_size {
        values.to_vec()
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..sample_size).map(|_| values[rng.gen_range(0..values.len())]).collect()
    };
    sample.sort_unstable_by(T::total_cmp);
    sample
}

/// Number of *distinct* values in an already-sorted slice.
pub fn distinct_in_sorted<T: Scalar>(sorted: &[T]) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[0].total_cmp(&w[1]).is_ne()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_column_sampled_exactly() {
        let col: Column<i32> = Column::from(vec![3, 1, 2, 3, 1]);
        let s = sorted_distinct_sample(&col, 2048, 42);
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn large_column_sample_is_bounded_and_sorted() {
        let col: Column<i64> = (0..100_000).collect();
        let s = sorted_distinct_sample(&col, 2048, 1);
        assert!(s.len() <= 2048);
        assert!(!s.is_empty());
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        // Every sampled value comes from the column domain.
        assert!(s.iter().all(|&v| (0..100_000).contains(&v)));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let col: Column<i32> = (0..50_000).map(|i| i % 997).collect();
        let a = sorted_distinct_sample(&col, 512, 7);
        let b = sorted_distinct_sample(&col, 512, 7);
        let c = sorted_distinct_sample(&col, 512, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed should (overwhelmingly likely) differ");
    }

    #[test]
    fn with_multiplicity_keeps_duplicates() {
        let col: Column<i32> = Column::from(vec![5, 5, 5, 1]);
        let s = sorted_sample(&col, 2048, 0);
        assert_eq!(s, vec![1, 5, 5, 5]);
        assert_eq!(distinct_in_sorted(&s), 2);
    }

    #[test]
    fn float_sample_total_order_with_nan() {
        let col: Column<f64> = Column::from(vec![2.0, f64::NAN, 1.0, f64::NAN]);
        let s = sorted_distinct_sample(&col, 2048, 0);
        // NaNs deduplicate to one and sort last.
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[1], 2.0);
        assert!(s[2].is_nan());
    }

    #[test]
    fn empty_column_gives_empty_sample() {
        let col: Column<u8> = Column::new();
        assert!(sorted_distinct_sample(&col, 2048, 0).is_empty());
        assert_eq!(distinct_in_sorted::<u8>(&[]), 0);
    }

    #[test]
    fn skewed_column_sample_reflects_skew() {
        // 99% zeros: the multiplicity-keeping sample should be mostly zeros.
        let col: Column<i32> = (0..10_000).map(|i| if i % 100 == 0 { i } else { 0 }).collect();
        let s = sorted_sample(&col, 1000, 3);
        let zeros = s.iter().filter(|&&v| v == 0).count();
        assert!(zeros > 900, "expected heavy zero multiplicity, got {zeros}");
    }
}
