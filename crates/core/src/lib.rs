//! # imprints — Column Imprints, a cache-conscious secondary index
//!
//! A faithful, production-quality reimplementation of
//! *"Column Imprints: A Secondary Index Structure"* (Lefteris Sidirourgos
//! and Martin Kersten, SIGMOD 2013).
//!
//! ## The idea
//!
//! A **column imprint** summarizes a column at *cacheline* granularity.
//! From a small sample (≤2048 values) an approximate equi-height histogram
//! of at most 64 bins is derived ([`Binning`]). The column is then scanned
//! once: for every 64-byte cacheline of data, a ≤64-bit **imprint vector**
//! is built whose bit *i* is set iff some value in that cacheline falls into
//! histogram bin *i* ([`builder`]). Consecutive identical imprint vectors
//! are run-length compressed through a **cacheline dictionary** of packed
//! `{cnt:24, repeat:1, flags:7}` entries ([`dict`]).
//!
//! A range query is translated into a pair of bit masks ([`masks`]): a
//! `mask` of every bin overlapping the query and an `innermask` of bins
//! fully contained in it. One bitwise `AND` per imprint vector decides
//! whether a cacheline can be skipped, must be fetched and checked, or —
//! when covered by the `innermask` — qualifies wholesale with no value
//! comparisons at all ([`query`]).
//!
//! The index is a few percent of the column size, robust to skew, supports
//! appends without touching existing vectors (§4, [`update`]), and its
//! compressibility is quantified by the paper's **column entropy** metric
//! ([`entropy`]).
//!
//! ## Quick start
//!
//! ```
//! use colstore::{Column, RangePredicate, RangeIndex};
//! use imprints::ColumnImprints;
//!
//! // An unsorted secondary attribute.
//! let col: Column<i32> = (0..10_000).map(|i| (i * 7919) % 1000).collect();
//!
//! // Build the imprint index (sampling, binning, one scan).
//! let idx = ColumnImprints::build(&col);
//!
//! // Evaluate 100 <= v <= 200, getting back the ordered qualifying row ids.
//! let ids = idx.evaluate(&col, &RangePredicate::between(100, 200));
//! assert!(ids.iter().all(|id| {
//!     let v = col.get(id as usize).unwrap();
//!     (100..=200).contains(&v)
//! }));
//! ```
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`sampling`] | §2.4–2.5 | uniform sampling, sort, duplicate elimination |
//! | [`binning`] | §2.5, Alg. 2 | histogram bins and borders |
//! | [`search`] | §2.5 | branch-parallel unrolled `get_bin` binary search |
//! | [`dict`] | §2.3–2.4 | packed cacheline-dictionary entries |
//! | [`builder`] | §2.4, Alg. 1 | imprint construction + row-wise RLE compression |
//! | [`index`] | §2 | the [`ColumnImprints`] structure |
//! | [`masks`] | §3 | query `mask` / `innermask` derivation |
//! | [`query`] | §3, Alg. 3 | range evaluation, late materialization, stats |
//! | [`simd`] | §3 residual cost | SWAR false-positive refinement kernels |
//! | [`update`] | §4 | appends, delta merging, saturation & rebuild |
//! | [`entropy`] | §6.1 | the column entropy metric `E` |
//! | [`print`](mod@print) | Fig. 3 | `x`/`.` imprint rendering |
//! | [`parallel`] | §7 | multi-core construction (future-work extension) |
//! | [`multilevel`] | §7 | two-level imprint organization (future-work extension) |
//! | [`relation_index`] | §3 | relation-level indexes + conjunctive query plan |
//! | [`storage`] | — | checksummed binary persistence of an index |

#![warn(missing_docs)]

pub mod binning;
pub mod builder;
pub mod dict;
pub mod entropy;
pub mod index;
pub mod masks;
pub mod multilevel;
pub mod parallel;
pub mod print;
pub mod query;
pub mod relation_index;
pub mod sampling;
pub mod search;
pub mod simd;
pub mod storage;
pub mod update;

pub use binning::{Binning, BinningStrategy};
pub use builder::{BuildOptions, Compressor};
pub use dict::DictEntry;
pub use entropy::column_entropy;
pub use index::ColumnImprints;
pub use masks::QueryMasks;
pub use multilevel::MultiLevelImprints;
pub use query::ImprintStats;
pub use simd::{PredicateKernel, RefineKernel};
pub use update::OverlayImprints;

// Re-export the substrate types that appear in this crate's public API so
// downstream users need only one import path.
pub use colstore::{AccessStats, Bound, Column, IdList, RangeIndex, RangePredicate, Scalar};

/// Largest number of histogram bins, bounded by the 64 bits of an imprint
/// vector (paper §2.4: "never more than 64 bits").
pub const MAX_BINS: usize = 64;

/// Default sample size for binning (paper §2.4: "not more than 2048 in our
/// implementation").
pub const DEFAULT_SAMPLE_SIZE: usize = 2048;
