//! Vectorized false-positive refinement: SWAR predicate kernels.
//!
//! Algorithm 3 spends its residual cost weeding false positives out of
//! candidate cachelines — the `check_values` loop of [`crate::query`], and
//! its siblings in the zonemap/scan baselines and the engine's write-head
//! path. Once imprint pruning is cheap, that refinement loop is where a
//! secondary index wins or loses (the BitWeaving/Hermit/LSI observation),
//! so this module evaluates a [`RangePredicate`] over a whole cacheline of
//! values at once with **portable `u64`-word SWAR** — no nightly features,
//! no target intrinsics — and keeps the classic one-value-at-a-time loop
//! as a selectable oracle.
//!
//! ## How the SWAR kernel works
//!
//! 1. **Key reduction.** Every value maps to an order-preserving unsigned
//!    key of its own width ([`Scalar::sort_key`]): identity for unsigned
//!    integers, a sign-bit flip for signed ones, the IEEE-754 `totalOrder`
//!    rank for floats. Because the map is a monotone *bijection* onto
//!    `0..2^w`, any predicate — inclusive/exclusive/unbounded on either
//!    side — reduces to one **inclusive** key interval `[lo, hi]`
//!    (exclusive bounds step to the key-space neighbour; an impossible
//!    step means the predicate matches nothing and the kernel answers
//!    without touching data).
//! 2. **Word layout.** `64 / w` keys pack into one `u64` word, in lane
//!    order (value *i* of a chunk sits in lane *i*, lowest bits first):
//!    8 × `u8`/`i8`, 4 × 16-bit, 2 × 32-bit, 1 × 64-bit lanes.
//! 3. **Lane-parallel compare.** A carry-isolated subtraction computes
//!    per-lane unsigned `<` in one pass over the word (the Hacker's
//!    Delight borrow reconstruction): `matches = !(k < lo) & !(hi < k)`,
//!    evaluated for all lanes of a word simultaneously and entirely
//!    branch-free.
//! 4. **Bitmask results.** Per 64-value chunk the kernel produces a `u64`
//!    bitmask (bit *i* = value *i* matches). Materialization iterates set
//!    bits (cheap when matches are sparse — exactly the false-positive-
//!    heavy regime); counting popcounts the mask and never branches.
//!
//! ## Kernel selection
//!
//! [`RefineKernel`] picks the kernel: `Auto` (currently the SWAR kernel),
//! `Scalar` (the original loop, kept as the **differential oracle** — the
//! two kernels must return byte-identical ids and identical statistics,
//! which `tests/kernel_differential.rs` proptests across all scalar
//! types, partial-tail geometries and all four access paths), or `Swar`.
//! Scoped configuration (the engine's per-table
//! `EngineConfig::refine_kernel`) resolves through [`effective_kernel`]
//! and is threaded explicitly; bare entry points without a kernel
//! argument fall back to the [`ambient_kernel`] process default
//! ([`set_ambient_kernel`]). In both cases the `IMPRINTS_REFINE_KERNEL`
//! environment variable (`auto`/`scalar`/`swar`) overrides, which is how
//! CI forces the scalar fallback through the whole test suite so it can
//! never rot unexercised. Explicit `*_with_kernel` entry points bypass
//! everything for differential tests and benchmarks.

use std::ops::Range;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use colstore::{Bound, RangePredicate, Scalar};

/// Which kernel weeds false positives out of fetched cachelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineKernel {
    /// Resolve automatically. Currently the SWAR kernel: it is portable
    /// `u64` arithmetic and won or tied the scalar loop on every measured
    /// type × workload (see the `refine` bench experiment); the variant
    /// exists so the resolution policy can grow (e.g. per-type choices)
    /// without an API change.
    #[default]
    Auto,
    /// The branchy one-value-at-a-time loop — the differential oracle.
    Scalar,
    /// The `u64`-word SWAR kernel.
    Swar,
}

impl RefineKernel {
    /// Whether this selection resolves to the SWAR kernel.
    fn use_swar(self) -> bool {
        !matches!(self, RefineKernel::Scalar)
    }

    /// Short name (`auto`/`scalar`/`swar`).
    pub fn name(self) -> &'static str {
        match self {
            RefineKernel::Auto => "auto",
            RefineKernel::Scalar => "scalar",
            RefineKernel::Swar => "swar",
        }
    }
}

impl FromStr for RefineKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(RefineKernel::Auto),
            "scalar" => Ok(RefineKernel::Scalar),
            "swar" | "simd" => Ok(RefineKernel::Swar),
            other => Err(format!("unknown refine kernel {other:?} (auto|scalar|swar)")),
        }
    }
}

impl std::fmt::Display for RefineKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Environment variable overriding the ambient kernel selection.
pub const KERNEL_ENV_VAR: &str = "IMPRINTS_REFINE_KERNEL";

/// Ambient selection (0 = Auto, 1 = Scalar, 2 = Swar), process-wide.
static AMBIENT: AtomicU8 = AtomicU8::new(0);

/// The env override, parsed once. A malformed value is reported to stderr
/// once and ignored rather than panicking inside arbitrary query paths.
fn env_kernel() -> Option<RefineKernel> {
    static ENV: OnceLock<Option<RefineKernel>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var(KERNEL_ENV_VAR).ok()?;
        match raw.parse() {
            Ok(k) => Some(k),
            Err(e) => {
                eprintln!("[imprints] ignoring {KERNEL_ENV_VAR}: {e}");
                None
            }
        }
    })
}

/// Sets the process-wide ambient kernel (what `EngineConfig::refine_kernel`
/// applies at table creation). The [`KERNEL_ENV_VAR`] environment variable,
/// when set to a valid value, takes precedence over this.
pub fn set_ambient_kernel(kernel: RefineKernel) {
    // ordering: Relaxed — a standalone configuration cell; no other memory
    // is published with it, and readers only need to eventually observe
    // the latest selection.
    AMBIENT.store(kernel as u8, Ordering::Relaxed);
}

/// The currently effective kernel selection: the env override if present,
/// else the last [`set_ambient_kernel`] value (default [`RefineKernel::Auto`]).
pub fn ambient_kernel() -> RefineKernel {
    if let Some(k) = env_kernel() {
        return k;
    }
    // ordering: Relaxed — pairs with the store in `set_ambient_kernel`;
    // the value is self-contained, so no acquire edge is needed.
    match AMBIENT.load(Ordering::Relaxed) {
        1 => RefineKernel::Scalar,
        2 => RefineKernel::Swar,
        _ => RefineKernel::Auto,
    }
}

/// Resolves a *configured* selection (e.g. a per-table
/// `EngineConfig::refine_kernel`) against the environment: the
/// [`KERNEL_ENV_VAR`] override wins when set to a valid value, otherwise
/// the configuration applies as-is. This is how scoped configuration
/// coexists with the CI-wide forcing knob without any process-global
/// state.
pub fn effective_kernel(configured: RefineKernel) -> RefineKernel {
    env_kernel().unwrap_or(configured)
}

/// A [`RangePredicate`] compiled for repeated evaluation over cachelines:
/// the key-range reduction and kernel choice happen **once** per query,
/// not once per line. Both kernels share the compiled empty-range
/// early-out, so the `value_comparisons` statistic counts *values actually
/// compared* identically under either kernel — a predicate that can match
/// nothing examines no data and reports zero comparisons.
#[derive(Debug, Clone, Copy)]
pub struct PredicateKernel<T: Scalar> {
    pred: RangePredicate<T>,
    /// The inclusive sort-key interval; `None` = matches nothing.
    keys: Option<(u64, u64)>,
    swar: bool,
}

impl<T: Scalar> PredicateKernel<T> {
    /// Compiles `pred` under the ambient kernel selection.
    pub fn new(pred: &RangePredicate<T>) -> Self {
        Self::with_kernel(pred, ambient_kernel())
    }

    /// Compiles `pred` under an explicit kernel (differential testing).
    pub fn with_kernel(pred: &RangePredicate<T>, kernel: RefineKernel) -> Self {
        PredicateKernel { pred: *pred, keys: key_bounds(pred), swar: kernel.use_swar() }
    }

    /// Whether the predicate can match no value at all.
    pub fn is_empty(&self) -> bool {
        self.keys.is_none()
    }

    /// Whether one value matches — the single-survivor check used by
    /// conjunction refinement, WAH edge bins and the open write head. The
    /// SWAR flavour compares sort keys (two branchless unsigned compares);
    /// the scalar flavour is the original short-circuit `matches`.
    #[inline]
    pub fn matches(&self, v: &T) -> bool {
        let Some((lo, hi)) = self.keys else { return false };
        if self.swar {
            let k = v.sort_key();
            lo <= k && k <= hi
        } else {
            self.pred.matches(v)
        }
    }

    /// Match bitmask of one chunk of up to 64 values: bit `i` set iff
    /// `chunk[i]` matches. Exposed for the per-lane boundary tests.
    ///
    /// # Panics
    /// Panics if `chunk.len() > 64`.
    pub fn match_mask(&self, chunk: &[T]) -> u64 {
        assert!(chunk.len() <= 64, "a chunk is at most 64 values");
        let Some((lo, hi)) = self.keys else { return 0 };
        if self.swar {
            swar_match_mask(chunk, lo, hi)
        } else {
            let mut mask = 0u64;
            for (i, v) in chunk.iter().enumerate() {
                mask |= (self.pred.matches(v) as u64) << i;
            }
            mask
        }
    }

    /// Appends the ids of matching values in `values[ids]` to `out`
    /// (ascending), bumping `comparisons` by the number of values actually
    /// examined — the `check_values` workhorse of every refinement path.
    ///
    /// # Panics
    /// Panics if `ids` is out of bounds for `values`.
    pub fn append_matches(
        &self,
        values: &[T],
        ids: Range<u64>,
        out: &mut Vec<u64>,
        comparisons: &mut u64,
    ) {
        let Some((lo, hi)) = self.keys else { return };
        let (start, end) = (ids.start as usize, ids.end as usize);
        *comparisons += (end - start) as u64;
        if !self.swar {
            for (i, v) in values[start..end].iter().enumerate() {
                if self.pred.matches(v) {
                    out.push(ids.start + i as u64);
                }
            }
            return;
        }
        for (c, chunk) in values[start..end].chunks(64).enumerate() {
            let mut mask = swar_match_mask(chunk, lo, hi);
            let base = ids.start + c as u64 * 64;
            while mask != 0 {
                out.push(base + mask.trailing_zeros() as u64);
                mask &= mask - 1;
            }
        }
    }

    /// Counts matching values in `values[ids]` without materializing ids,
    /// with the same comparison accounting as
    /// [`PredicateKernel::append_matches`].
    ///
    /// # Panics
    /// Panics if `ids` is out of bounds for `values`.
    pub fn count_matches(&self, values: &[T], ids: Range<u64>, comparisons: &mut u64) -> u64 {
        let Some((lo, hi)) = self.keys else { return 0 };
        let (start, end) = (ids.start as usize, ids.end as usize);
        *comparisons += (end - start) as u64;
        let slice = &values[start..end];
        if !self.swar {
            return slice.iter().filter(|v| self.pred.matches(v)).count() as u64;
        }
        slice.chunks(64).map(|chunk| swar_match_mask(chunk, lo, hi).count_ones() as u64).sum()
    }

    /// Keeps only the ids whose value matches — the **gather-style kernel
    /// over scattered ids** used when a conjunction weeds survivors that no
    /// longer form contiguous runs. The SWAR flavour gathers up to 64
    /// values into one stack chunk, evaluates the whole chunk branch-free,
    /// and compacts survivors in place; the scalar flavour is the oracle
    /// loop. An empty predicate clears the list and bills zero comparisons.
    ///
    /// # Panics
    /// Panics if any id is out of bounds for `values`.
    pub fn filter_ids(&self, values: &[T], ids: &mut Vec<u64>, comparisons: &mut u64) {
        let Some((lo, hi)) = self.keys else {
            ids.clear();
            return;
        };
        *comparisons += ids.len() as u64;
        if !self.swar {
            ids.retain(|&id| self.pred.matches(&values[id as usize]));
            return;
        }
        let n = ids.len();
        let (mut read, mut write) = (0usize, 0usize);
        let mut buf: Vec<T> = Vec::with_capacity(64);
        while read < n {
            let k = (n - read).min(64);
            buf.clear();
            buf.extend(ids[read..read + k].iter().map(|&id| values[id as usize]));
            let mut mask = swar_match_mask(&buf, lo, hi);
            while mask != 0 {
                ids[write] = ids[read + mask.trailing_zeros() as usize];
                write += 1;
                mask &= mask - 1;
            }
            read += k;
        }
        ids.truncate(write);
    }
}

/// A compiled disjunction of range predicates on one column — the kernel
/// form of a [`crate::relation_index::ValueSet`] (IN-lists, OR terms). A
/// value matches when any member kernel matches; impossible members are
/// dropped at compile time, so an all-empty set examines no data and bills
/// zero comparisons, exactly like an empty [`PredicateKernel`]. Comparison
/// accounting counts each value examined **once**, regardless of how many
/// member intervals it is tested against — the statistic tracks data
/// touched, not arithmetic.
#[derive(Debug, Clone)]
pub struct SetKernel<T: Scalar> {
    kernels: Vec<PredicateKernel<T>>,
}

impl<T: Scalar> SetKernel<T> {
    /// Compiles `terms` under the ambient kernel selection.
    pub fn new(terms: &[RangePredicate<T>]) -> Self {
        Self::with_kernel(terms, ambient_kernel())
    }

    /// Compiles `terms` under an explicit kernel.
    pub fn with_kernel(terms: &[RangePredicate<T>], kernel: RefineKernel) -> Self {
        SetKernel {
            kernels: terms
                .iter()
                .map(|p| PredicateKernel::with_kernel(p, kernel))
                .filter(|k| !k.is_empty())
                .collect(),
        }
    }

    /// Whether no value can match (every term was impossible).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Whether one value matches any term.
    #[inline]
    pub fn matches(&self, v: &T) -> bool {
        self.kernels.iter().any(|k| k.matches(v))
    }

    /// Match bitmask of one chunk of up to 64 values — the OR of the member
    /// masks.
    ///
    /// # Panics
    /// Panics if `chunk.len() > 64`.
    pub fn match_mask(&self, chunk: &[T]) -> u64 {
        self.kernels.iter().fold(0u64, |m, k| m | k.match_mask(chunk))
    }

    /// Appends the ids of matching values in `values[ids]` to `out`, with
    /// single-visit comparison accounting.
    ///
    /// # Panics
    /// Panics if `ids` is out of bounds for `values`.
    pub fn append_matches(
        &self,
        values: &[T],
        ids: Range<u64>,
        out: &mut Vec<u64>,
        comparisons: &mut u64,
    ) {
        match self.kernels.as_slice() {
            [] => {}
            [one] => one.append_matches(values, ids, out, comparisons),
            _ => {
                let (start, end) = (ids.start as usize, ids.end as usize);
                *comparisons += (end - start) as u64;
                for (c, chunk) in values[start..end].chunks(64).enumerate() {
                    let mut mask = self.match_mask(chunk);
                    let base = ids.start + c as u64 * 64;
                    while mask != 0 {
                        out.push(base + mask.trailing_zeros() as u64);
                        mask &= mask - 1;
                    }
                }
            }
        }
    }

    /// Counts matching values in `values[ids]`, with the same accounting as
    /// [`SetKernel::append_matches`].
    ///
    /// # Panics
    /// Panics if `ids` is out of bounds for `values`.
    pub fn count_matches(&self, values: &[T], ids: Range<u64>, comparisons: &mut u64) -> u64 {
        match self.kernels.as_slice() {
            [] => 0,
            [one] => one.count_matches(values, ids, comparisons),
            _ => {
                let (start, end) = (ids.start as usize, ids.end as usize);
                *comparisons += (end - start) as u64;
                values[start..end]
                    .chunks(64)
                    .map(|chunk| self.match_mask(chunk).count_ones() as u64)
                    .sum()
            }
        }
    }

    /// Keeps only the ids whose value matches any term — the scattered-id
    /// gather filter ([`PredicateKernel::filter_ids`]) for set predicates.
    ///
    /// # Panics
    /// Panics if any id is out of bounds for `values`.
    pub fn filter_ids(&self, values: &[T], ids: &mut Vec<u64>, comparisons: &mut u64) {
        match self.kernels.as_slice() {
            [] => ids.clear(),
            [one] => one.filter_ids(values, ids, comparisons),
            _ => {
                *comparisons += ids.len() as u64;
                let n = ids.len();
                let (mut read, mut write) = (0usize, 0usize);
                let mut buf: Vec<T> = Vec::with_capacity(64);
                while read < n {
                    let k = (n - read).min(64);
                    buf.clear();
                    buf.extend(ids[read..read + k].iter().map(|&id| values[id as usize]));
                    let mut mask = self.match_mask(&buf);
                    while mask != 0 {
                        ids[write] = ids[read + mask.trailing_zeros() as usize];
                        write += 1;
                        mask &= mask - 1;
                    }
                    read += k;
                }
                ids.truncate(write);
            }
        }
    }
}

/// Reduces `pred` to an inclusive sort-key interval; `None` when no value
/// can match. Exact because [`Scalar::sort_key`] is a monotone bijection
/// onto the full `0..2^LANE_BITS` key space: stepping a key is stepping
/// the value in total order.
fn key_bounds<T: Scalar>(pred: &RangePredicate<T>) -> Option<(u64, u64)> {
    let max = max_key::<T>();
    let lo = match pred.low() {
        Bound::Unbounded => 0,
        Bound::Inclusive(l) => l.sort_key(),
        Bound::Exclusive(l) => {
            let k = l.sort_key();
            if k == max {
                return None; // nothing above the total-order maximum
            }
            k + 1
        }
    };
    let hi = match pred.high() {
        Bound::Unbounded => max,
        Bound::Inclusive(h) => h.sort_key(),
        Bound::Exclusive(h) => {
            let k = h.sort_key();
            if k == 0 {
                return None; // nothing below the total-order minimum
            }
            k - 1
        }
    };
    (lo <= hi).then_some((lo, hi))
}

/// Largest sort key of `T` (`2^LANE_BITS - 1`).
#[inline]
fn max_key<T: Scalar>() -> u64 {
    if T::LANE_BITS == 64 {
        u64::MAX
    } else {
        (1u64 << T::LANE_BITS) - 1
    }
}

/// The per-lane most-significant-bit mask for a lane width.
#[inline]
fn msb_mask(lane_bits: u32) -> u64 {
    match lane_bits {
        8 => 0x8080_8080_8080_8080,
        16 => 0x8000_8000_8000_8000,
        32 => 0x8000_0000_8000_0000,
        64 => 1 << 63,
        _ => unreachable!("scalar widths are 8/16/32/64 bits"),
    }
}

/// The per-lane least-significant-bit mask (the broadcast multiplier).
#[inline]
fn lsb_mask(lane_bits: u32) -> u64 {
    match lane_bits {
        8 => 0x0101_0101_0101_0101,
        16 => 0x0001_0001_0001_0001,
        32 => 0x0000_0001_0000_0001,
        64 => 1,
        _ => unreachable!("scalar widths are 8/16/32/64 bits"),
    }
}

/// Replicates a `lane_bits`-wide key into every lane of a word.
#[inline]
fn broadcast(key: u64, lane_bits: u32) -> u64 {
    key.wrapping_mul(lsb_mask(lane_bits))
}

/// Per-lane unsigned `x < y`, reported in each lane's MSB position.
///
/// `d` computes `(x_low | lane_msb) - y_low` per lane; setting the minuend
/// MSB and clearing the subtrahend MSB keeps every lane's difference in
/// `1..2^w`, so no borrow ever crosses a lane boundary. Its lane MSB is
/// then exactly `x_low >= y_low`, and the full comparison recombines the
/// real MSBs: `x < y ⟺ (¬xh ∧ yh) ∨ ((xh ≡ yh) ∧ ¬(x_low ≥ y_low))`.
#[inline]
fn swar_lt(x: u64, y: u64, h: u64) -> u64 {
    let d = ((x & !h) | h).wrapping_sub(y & !h);
    ((!x & y) | (!(x ^ y) & !d)) & h
}

/// Compacts per-lane MSB flags into the low `64 / lane_bits` bits. The
/// multipliers route each lane's flag to a distinct high bit (no two
/// partial products collide, so no carries corrupt the gather).
#[inline]
fn movemask(m: u64, lane_bits: u32) -> u64 {
    match lane_bits {
        8 => ((m >> 7).wrapping_mul(0x0102_0408_1020_4080)) >> 56,
        16 => ((m >> 15).wrapping_mul(0x1000_2000_4000_8000)) >> 60,
        32 => ((m >> 31) & 1) | ((m >> 62) & 2),
        64 => m >> 63,
        _ => unreachable!("scalar widths are 8/16/32/64 bits"),
    }
}

/// Packs up to `64 / LANE_BITS` sort keys into one word, value `i` in
/// lane `i` (lowest bits first).
#[inline]
fn pack_word<T: Scalar>(values: &[T]) -> u64 {
    let mut word = 0u64;
    for (i, v) in values.iter().enumerate() {
        word |= v.sort_key() << (i as u32 * T::LANE_BITS % 64);
    }
    word
}

/// The SWAR chunk kernel: the match bitmask of up to 64 values against an
/// inclusive key interval.
fn swar_match_mask<T: Scalar>(chunk: &[T], lo: u64, hi: u64) -> u64 {
    let bits = T::LANE_BITS;
    let lanes = (64 / bits) as usize;
    let h = msb_mask(bits);
    let lo_b = broadcast(lo, bits);
    let hi_b = broadcast(hi, bits);
    let mut mask = 0u64;
    let mut lane_base = 0u32;
    let mut words = chunk.chunks_exact(lanes);
    for word_values in &mut words {
        let k = pack_word(word_values);
        // A lane misses iff k < lo or hi < k; flipping the miss MSBs under
        // `h` yields the hit MSBs.
        let hits = (swar_lt(k, lo_b, h) | swar_lt(hi_b, k, h)) ^ h;
        mask |= movemask(hits, bits) << lane_base;
        lane_base += lanes as u32;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        // Unused high lanes hold key 0; masking to `tail.len()` bits
        // discards whatever they matched.
        let k = pack_word(tail);
        let hits = (swar_lt(k, lo_b, h) | swar_lt(hi_b, k, h)) ^ h;
        mask |= (movemask(hits, bits) & ((1u64 << tail.len()) - 1)) << lane_base;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both<T: Scalar>(pred: &RangePredicate<T>) -> [PredicateKernel<T>; 2] {
        [
            PredicateKernel::with_kernel(pred, RefineKernel::Scalar),
            PredicateKernel::with_kernel(pred, RefineKernel::Swar),
        ]
    }

    /// Per-lane boundary sweep: a 64-value chunk holding the probe value
    /// at every lane position in turn, checked against the brute-force
    /// oracle under both kernels. `filler` is a value outside the
    /// predicate whenever one exists, so lane cross-talk would be visible.
    fn assert_lane_exact<T: Scalar>(pred: &RangePredicate<T>, probe: T, filler: T) {
        for kernel in both(pred) {
            for lane in 0..64 {
                let mut chunk = vec![filler; 64];
                chunk[lane] = probe;
                let mask = kernel.match_mask(&chunk);
                for (i, v) in chunk.iter().enumerate() {
                    assert_eq!(
                        mask >> i & 1 == 1,
                        pred.matches(v),
                        "lane {i} of probe-at-{lane} (probe {probe:?}, {pred})"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_at_type_extremes_per_lane() {
        // T::MIN / T::MAX as predicate bounds, probed at the extremes.
        assert_lane_exact(&RangePredicate::between(u8::MIN, u8::MAX), u8::MAX, 7);
        assert_lane_exact(&RangePredicate::at_least(i8::MAX), i8::MAX, 0);
        assert_lane_exact(&RangePredicate::at_most(i8::MIN), i8::MIN, 0);
        assert_lane_exact(&RangePredicate::between(i16::MIN, i16::MIN), i16::MIN, 0);
        assert_lane_exact(&RangePredicate::at_least(u16::MAX), u16::MAX, 0);
        assert_lane_exact(&RangePredicate::between(i32::MIN, i32::MIN + 1), i32::MIN, 5);
        assert_lane_exact(&RangePredicate::at_least(i64::MAX - 1), i64::MAX, -3);
        assert_lane_exact(&RangePredicate::at_most(u64::MIN), u64::MIN, 9);
        // Exclusive bounds at the extremes can match nothing at all.
        let none = RangePredicate::with_bounds(Bound::Exclusive(u8::MAX), Bound::Unbounded);
        for k in both(&none) {
            assert!(k.is_empty());
            assert_eq!(k.match_mask(&[0u8, 128, 255]), 0);
        }
        let none = RangePredicate::with_bounds(Bound::Unbounded, Bound::Exclusive(i32::MIN));
        for k in both(&none) {
            assert!(k.is_empty());
        }
    }

    #[test]
    fn inclusive_exclusive_edges_per_lane() {
        for probe in [9i32, 10, 11, 19, 20, 21] {
            assert_lane_exact(&RangePredicate::between(10, 20), probe, -100);
            assert_lane_exact(&RangePredicate::half_open(10, 20), probe, -100);
            assert_lane_exact(
                &RangePredicate::with_bounds(Bound::Exclusive(10), Bound::Exclusive(20)),
                probe,
                -100,
            );
        }
        for probe in [4u16, 5, 6] {
            assert_lane_exact(&RangePredicate::greater_than(5), probe, 0);
            assert_lane_exact(&RangePredicate::less_than(5), probe, u16::MAX);
        }
    }

    #[test]
    fn point_predicate_per_lane() {
        assert_lane_exact(&RangePredicate::equals(42u8), 42, 41);
        assert_lane_exact(&RangePredicate::equals(-7i16), -7, -8);
        assert_lane_exact(&RangePredicate::equals(0i32), 0, 1);
        assert_lane_exact(&RangePredicate::equals(i64::MIN), i64::MIN, i64::MIN + 1);
        assert_lane_exact(&RangePredicate::equals(2.5f32), 2.5, 2.4999);
        assert_lane_exact(&RangePredicate::equals(-0.0f64), -0.0, 0.0);
    }

    #[test]
    fn float_ordering_per_lane_nan_free() {
        // NaN-free float ordering, negative zero and subnormals included.
        for probe in [-1.5f32, -0.0, 0.0, f32::MIN_POSITIVE / 2.0, 1.5] {
            assert_lane_exact(&RangePredicate::between(-1.0, 1.0), probe, 99.0);
            assert_lane_exact(&RangePredicate::less_than(0.0), probe, 99.0);
        }
        for probe in [f64::NEG_INFINITY, -2.0, 0.0, 2.0, f64::INFINITY] {
            assert_lane_exact(&RangePredicate::at_least(-2.0), probe, f64::NEG_INFINITY);
            assert_lane_exact(&RangePredicate::at_most(2.0), probe, f64::INFINITY);
        }
        // NaNs follow the documented totalOrder semantics under SWAR too.
        let up = RangePredicate::at_least(0.0f64);
        let capped = RangePredicate::at_most(f64::INFINITY);
        for k in both(&up) {
            assert!(k.matches(&f64::NAN));
        }
        for k in both(&capped) {
            assert!(!k.matches(&f64::NAN));
        }
    }

    #[test]
    fn partial_chunks_mask_unused_lanes() {
        // Chunk lengths that are not multiples of the lane count: unused
        // lanes hold key 0, which *would* match this predicate.
        let pred = RangePredicate::at_most(100u8);
        for kernel in both(&pred) {
            for len in [1usize, 3, 7, 9, 15, 17, 63] {
                let chunk = vec![5u8; len];
                let mask = kernel.match_mask(&chunk);
                assert_eq!(mask, (1u64 << len) - 1, "len {len}");
            }
        }
        let pred = RangePredicate::at_most(-1i32);
        for kernel in both(&pred) {
            let mask = kernel.match_mask(&[-5i32, 3, -5]);
            assert_eq!(mask, 0b101);
        }
    }

    #[test]
    fn append_and_count_agree_with_oracle_across_kernels() {
        let values: Vec<i32> = (0..1000).map(|i| (i * 37) % 500 - 250).collect();
        for pred in [
            RangePredicate::between(-100, 100),
            RangePredicate::half_open(0, 1),
            RangePredicate::all(),
            RangePredicate::between(10, 5),
            RangePredicate::equals(-250),
        ] {
            let oracle: Vec<u64> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| pred.matches(v))
                .map(|(i, _)| i as u64)
                .collect();
            let mut results = Vec::new();
            for kernel in both(&pred) {
                let mut out = Vec::new();
                let mut cmp = 0u64;
                kernel.append_matches(&values, 0..values.len() as u64, &mut out, &mut cmp);
                assert_eq!(out, oracle, "{pred}");
                let mut ccmp = 0u64;
                let n = kernel.count_matches(&values, 0..values.len() as u64, &mut ccmp);
                assert_eq!(n as usize, oracle.len(), "{pred}");
                assert_eq!(cmp, ccmp, "{pred}");
                results.push((out, cmp));
            }
            assert_eq!(results[0], results[1], "kernels diverged on {pred}");
        }
    }

    /// The satellite comparison-accounting contract: an empty predicate
    /// examines no values under *either* kernel, so downstream cost
    /// observers (`AccessStats`, the planner's fp-rate) see zero work —
    /// not a full range's worth of phantom comparisons.
    #[test]
    fn empty_predicates_examine_nothing() {
        let values: Vec<i64> = (0..512).collect();
        for pred in [
            RangePredicate::between(10, 5),
            RangePredicate::half_open(7, 7),
            RangePredicate::with_bounds(Bound::Exclusive(i64::MAX), Bound::Unbounded),
        ] {
            for kernel in both(&pred) {
                assert!(kernel.is_empty(), "{pred}");
                let mut out = Vec::new();
                let mut cmp = 0u64;
                kernel.append_matches(&values, 0..512, &mut out, &mut cmp);
                assert!(out.is_empty());
                assert_eq!(cmp, 0, "early-out must not be billed as comparisons: {pred}");
                let n = kernel.count_matches(&values, 100..300, &mut cmp);
                assert_eq!((n, cmp), (0, 0), "{pred}");
                assert!(!kernel.matches(&11));
            }
        }
    }

    #[test]
    fn subrange_ids_are_absolute() {
        let values: Vec<u8> = (0..200u16).map(|i| (i % 50) as u8).collect();
        let pred = RangePredicate::between(10u8, 12);
        for kernel in both(&pred) {
            let mut out = Vec::new();
            let mut cmp = 0u64;
            kernel.append_matches(&values, 60..140, &mut out, &mut cmp);
            assert_eq!(cmp, 80);
            let expect: Vec<u64> =
                (60..140u64).filter(|&i| (10..=12).contains(&values[i as usize])).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn kernel_selection_parsing_and_env_name() {
        assert_eq!("auto".parse(), Ok(RefineKernel::Auto));
        assert_eq!("Scalar".parse(), Ok(RefineKernel::Scalar));
        assert_eq!("SWAR".parse(), Ok(RefineKernel::Swar));
        assert!("mmx".parse::<RefineKernel>().is_err());
        assert_eq!(RefineKernel::Swar.to_string(), "swar");
        assert_eq!(KERNEL_ENV_VAR, "IMPRINTS_REFINE_KERNEL");
        // Auto resolves to SWAR; Scalar is the only scalar-loop selection.
        assert!(RefineKernel::Auto.use_swar());
        assert!(!RefineKernel::Scalar.use_swar());
    }

    #[test]
    fn filter_ids_gathers_scattered_survivors() {
        let values: Vec<i32> = (0..1000).map(|i| (i * 37) % 500 - 250).collect();
        // A scattered, strictly-ascending id set: every third row plus a
        // ragged tail that is not a multiple of 64.
        let ids: Vec<u64> = (0..1000u64).filter(|i| i % 3 == 0 || *i > 970).collect();
        for pred in [
            RangePredicate::between(-100, 100),
            RangePredicate::equals(-213),
            RangePredicate::all(),
            RangePredicate::between(10, 5),
        ] {
            let oracle: Vec<u64> =
                ids.iter().copied().filter(|&i| pred.matches(&values[i as usize])).collect();
            let mut results = Vec::new();
            for kernel in both(&pred) {
                let mut survivors = ids.clone();
                let mut cmp = 0u64;
                kernel.filter_ids(&values, &mut survivors, &mut cmp);
                assert_eq!(survivors, oracle, "{pred}");
                let expect_cmp = if kernel.is_empty() { 0 } else { ids.len() as u64 };
                assert_eq!(cmp, expect_cmp, "{pred}");
                results.push(survivors);
            }
            assert_eq!(results[0], results[1], "kernels diverged on {pred}");
        }
    }

    #[test]
    fn set_kernel_matches_union_of_terms() {
        let values: Vec<i64> = (0..777).map(|i| (i * 13) % 300).collect();
        let terms = [
            RangePredicate::equals(5i64),
            RangePredicate::between(40, 60),
            RangePredicate::between(9, 2), // impossible term is dropped
            RangePredicate::equals(250),
        ];
        let in_union = |v: &i64| terms.iter().any(|t| t.matches(v));
        let oracle: Vec<u64> = (0..777u64).filter(|&i| in_union(&values[i as usize])).collect();
        for sel in [RefineKernel::Scalar, RefineKernel::Swar] {
            let set = SetKernel::with_kernel(&terms, sel);
            assert!(!set.is_empty());
            assert!(set.matches(&50) && set.matches(&5) && !set.matches(&7));
            // Chunked mask agrees with the per-value oracle.
            let mask = set.match_mask(&values[..64]);
            for (lane, v) in values[..64].iter().enumerate() {
                assert_eq!(mask >> lane & 1 == 1, in_union(v), "lane {lane}");
            }
            // append / count / filter bill each value once, not per term.
            let (mut out, mut cmp) = (Vec::new(), 0u64);
            set.append_matches(&values, 0..777, &mut out, &mut cmp);
            assert_eq!(out, oracle);
            assert_eq!(cmp, 777);
            let mut ccmp = 0u64;
            assert_eq!(set.count_matches(&values, 0..777, &mut ccmp) as usize, oracle.len());
            assert_eq!(ccmp, 777);
            let mut ids: Vec<u64> = (0..777u64).step_by(2).collect();
            let id_oracle: Vec<u64> =
                ids.iter().copied().filter(|&i| in_union(&values[i as usize])).collect();
            let (n, mut fcmp) = (ids.len() as u64, 0u64);
            set.filter_ids(&values, &mut ids, &mut fcmp);
            assert_eq!(ids, id_oracle);
            assert_eq!(fcmp, n);
        }
    }

    #[test]
    fn set_kernel_degenerate_shapes() {
        let values: Vec<u8> = (0..100u16).map(|i| (i % 20) as u8).collect();
        // All-empty set: matches nothing, bills nothing, clears id lists.
        let dead = SetKernel::with_kernel(
            &[RangePredicate::between(9u8, 2), RangePredicate::half_open(7, 7)],
            RefineKernel::Swar,
        );
        assert!(dead.is_empty());
        let (mut out, mut cmp) = (Vec::new(), 0u64);
        dead.append_matches(&values, 0..100, &mut out, &mut cmp);
        assert_eq!(dead.count_matches(&values, 0..100, &mut cmp), 0);
        let mut ids = vec![1u64, 2, 3];
        dead.filter_ids(&values, &mut ids, &mut cmp);
        assert!(out.is_empty() && ids.is_empty() && cmp == 0);
        assert_eq!(dead.match_mask(&values[..64]), 0);
        // Single-term set behaves exactly like the bare kernel.
        let pred = RangePredicate::between(3u8, 6);
        let single = SetKernel::with_kernel(&[pred], RefineKernel::Swar);
        let bare = PredicateKernel::with_kernel(&pred, RefineKernel::Swar);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let (mut ca, mut cb) = (0u64, 0u64);
        single.append_matches(&values, 0..100, &mut a, &mut ca);
        bare.append_matches(&values, 0..100, &mut b, &mut cb);
        assert_eq!((a, ca), (b, cb));
    }

    /// Exhaustive 8-bit cross-check of the SWAR compare primitives: every
    /// (x, y) byte pair in one packed word against the scalar oracle.
    #[test]
    fn swar_lt_exhaustive_u8() {
        let h = msb_mask(8);
        for x in 0u64..=255 {
            for y_base in (0u64..=255).step_by(8) {
                // One word holding x in every lane vs eight consecutive y.
                let xs = broadcast(x, 8);
                let mut ys = 0u64;
                for lane in 0..8 {
                    ys |= (y_base + lane as u64).min(255) << (8 * lane);
                }
                let lt = movemask(swar_lt(xs, ys, h), 8);
                for lane in 0..8 {
                    let y = (y_base + lane as u64).min(255);
                    assert_eq!(lt >> lane & 1 == 1, x < y, "x={x} y={y}");
                }
            }
        }
    }
}
