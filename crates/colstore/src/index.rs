//! The common interface all secondary indexes implement.
//!
//! The paper's evaluation (§6) compares column imprints, zonemaps, WAH
//! bitmaps and a sequential scan "coded with the same rigidity": every
//! approach answers the same [`RangePredicate`] over the same
//! [`Column`] and returns the same materialized, ordered
//! [`IdList`]. [`RangeIndex`] pins down that contract, plus the
//! implementation-independent statistics of Figure 11 (index probes and
//! value comparisons) via [`AccessStats`].

use crate::column::Column;
use crate::idlist::IdList;
use crate::predicate::RangePredicate;
use crate::types::Scalar;

/// Implementation-independent cost counters (paper §6.3, Figure 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of index entries inspected: imprint vectors ANDed, zones
    /// min/max-compared, or WAH words decoded.
    pub index_probes: u64,
    /// Number of column values compared against the predicate (false
    /// positive weeding; for the scan this is every value).
    pub value_comparisons: u64,
    /// Cachelines whose data was actually touched.
    pub lines_fetched: u64,
    /// Cachelines skipped entirely thanks to the index.
    pub lines_skipped: u64,
}

impl AccessStats {
    /// Probes normalized by the number of rows (the y-axis of Fig. 11 top).
    pub fn probes_per_row(&self, rows: usize) -> f64 {
        if rows == 0 {
            0.0
        } else {
            self.index_probes as f64 / rows as f64
        }
    }

    /// Comparisons normalized by the number of rows (Fig. 11 bottom).
    pub fn comparisons_per_row(&self, rows: usize) -> f64 {
        if rows == 0 {
            0.0
        } else {
            self.value_comparisons as f64 / rows as f64
        }
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.index_probes += other.index_probes;
        self.value_comparisons += other.value_comparisons;
        self.lines_fetched += other.lines_fetched;
        self.lines_skipped += other.lines_skipped;
    }
}

/// A secondary index (or pseudo-index, for the scan baseline) answering
/// range queries over one column with materialized id lists.
pub trait RangeIndex<T: Scalar> {
    /// Short name used in benchmark reports ("imprints", "zonemap", …).
    fn name(&self) -> &'static str;

    /// Bytes occupied by the index structure itself (the storage-overhead
    /// metric of Figures 5–7). Excludes the column data.
    fn size_bytes(&self) -> usize;

    /// Evaluates `pred`, returning the ordered ids of qualifying rows and
    /// the access statistics of the evaluation.
    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats);

    /// Evaluates `pred`, returning only the ordered id list.
    fn evaluate(&self, col: &Column<T>, pred: &RangePredicate<T>) -> IdList {
        self.evaluate_with_stats(col, pred).0
    }
}

/// A [`RangeIndex`] that can be constructed from a column alone — the
/// contract pluggable access paths implement so an engine can instantiate
/// any of them per data segment without knowing the concrete type.
pub trait BuildableIndex<T: Scalar>: RangeIndex<T> + Send + Sync + Sized {
    /// Builds the index over `col`.
    fn build_index(col: &Column<T>) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_normalization() {
        let s = AccessStats {
            index_probes: 50,
            value_comparisons: 200,
            lines_fetched: 10,
            lines_skipped: 90,
        };
        assert_eq!(s.probes_per_row(100), 0.5);
        assert_eq!(s.comparisons_per_row(100), 2.0);
        assert_eq!(s.probes_per_row(0), 0.0);
        assert_eq!(s.comparisons_per_row(0), 0.0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = AccessStats {
            index_probes: 1,
            value_comparisons: 2,
            lines_fetched: 3,
            lines_skipped: 4,
        };
        let b = AccessStats {
            index_probes: 10,
            value_comparisons: 20,
            lines_fetched: 30,
            lines_skipped: 40,
        };
        a.merge(&b);
        assert_eq!(a.index_probes, 11);
        assert_eq!(a.value_comparisons, 22);
        assert_eq!(a.lines_fetched, 33);
        assert_eq!(a.lines_skipped, 44);
    }
}
