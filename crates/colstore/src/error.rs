//! Error type shared across the storage substrate.

use std::fmt;
use std::io;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum Error {
    /// An I/O error while persisting or loading data.
    Io(io::Error),
    /// The on-disk data is malformed (bad magic, truncated, wrong version…).
    Corrupt(String),
    /// A checksum mismatch: data was damaged at rest.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum recomputed over the payload.
        actual: u32,
    },
    /// Two structures that must be aligned disagree (e.g. a relation's
    /// columns differ in length, or an index no longer matches its column).
    Mismatch(String),
    /// A lookup referenced something that does not exist.
    NotFound(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: stored {expected:#010x}, computed {actual:#010x}")
            }
            Error::Mismatch(msg) => write!(f, "structure mismatch: {msg}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = Error::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum"));
        let e = Error::NotFound("column x".into());
        assert!(e.to_string().contains("column x"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: Error = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
