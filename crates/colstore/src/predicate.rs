//! Range and point predicates.
//!
//! The paper evaluates queries of the form `Q = [low, high]` — "all values
//! `v` in column `col` that satisfy `low ≤ v ≤ high`" (§3). Its pseudo-code
//! uses the half-open variant `low ≤ v < high`. [`RangePredicate`] covers
//! both (and one-sided and point queries) through explicit [`Bound`]s, so
//! every index implementation evaluates *exactly* the same predicate.
//!
//! Comparisons use the total order of [`Scalar`], so float NaNs behave
//! deterministically: under `totalOrder`, `+NaN` is above `+inf` and only
//! matches predicates without an upper bound.

use std::fmt;

use crate::types::Scalar;

/// One end of a range predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound<T> {
    /// No constraint on this side.
    Unbounded,
    /// The endpoint itself qualifies (`≤` / `≥`).
    Inclusive(T),
    /// The endpoint does not qualify (`<` / `>`).
    Exclusive(T),
}

/// A one-dimensional selection predicate `low ⋈ v ⋈ high`.
///
/// # Examples
///
/// ```
/// use colstore::predicate::RangePredicate;
///
/// let q = RangePredicate::between(10, 20); // 10 <= v <= 20
/// assert!(q.matches(&10) && q.matches(&20) && !q.matches(&21));
///
/// let q = RangePredicate::half_open(10, 20); // 10 <= v < 20
/// assert!(q.matches(&10) && !q.matches(&20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangePredicate<T> {
    low: Bound<T>,
    high: Bound<T>,
}

impl<T: Scalar> RangePredicate<T> {
    /// `low ≤ v ≤ high` — the closed range of the paper's §3 prose.
    pub fn between(low: T, high: T) -> Self {
        RangePredicate { low: Bound::Inclusive(low), high: Bound::Inclusive(high) }
    }

    /// `low ≤ v < high` — the half-open range of the paper's Algorithm 3.
    pub fn half_open(low: T, high: T) -> Self {
        RangePredicate { low: Bound::Inclusive(low), high: Bound::Exclusive(high) }
    }

    /// `v = value` — a point query.
    pub fn equals(value: T) -> Self {
        RangePredicate { low: Bound::Inclusive(value), high: Bound::Inclusive(value) }
    }

    /// `v < high`.
    pub fn less_than(high: T) -> Self {
        RangePredicate { low: Bound::Unbounded, high: Bound::Exclusive(high) }
    }

    /// `v ≤ high`.
    pub fn at_most(high: T) -> Self {
        RangePredicate { low: Bound::Unbounded, high: Bound::Inclusive(high) }
    }

    /// `v > low`.
    pub fn greater_than(low: T) -> Self {
        RangePredicate { low: Bound::Exclusive(low), high: Bound::Unbounded }
    }

    /// `v ≥ low`.
    pub fn at_least(low: T) -> Self {
        RangePredicate { low: Bound::Inclusive(low), high: Bound::Unbounded }
    }

    /// Matches every value.
    pub fn all() -> Self {
        RangePredicate { low: Bound::Unbounded, high: Bound::Unbounded }
    }

    /// General constructor from explicit bounds.
    pub fn with_bounds(low: Bound<T>, high: Bound<T>) -> Self {
        RangePredicate { low, high }
    }

    /// The lower bound.
    pub fn low(&self) -> &Bound<T> {
        &self.low
    }

    /// The upper bound.
    pub fn high(&self) -> &Bound<T> {
        &self.high
    }

    /// Whether `v` satisfies the predicate (total order).
    #[inline]
    pub fn matches(&self, v: &T) -> bool {
        let low_ok = match &self.low {
            Bound::Unbounded => true,
            Bound::Inclusive(l) => l.le_total(v),
            Bound::Exclusive(l) => l.lt_total(v),
        };
        if !low_ok {
            return false;
        }
        match &self.high {
            Bound::Unbounded => true,
            Bound::Inclusive(h) => v.le_total(h),
            Bound::Exclusive(h) => v.lt_total(h),
        }
    }

    /// Whether the predicate can match no value at all (e.g. `low > high`).
    /// Indexes may fast-path this to an empty result.
    pub fn is_empty_range(&self) -> bool {
        let (l, l_incl) = match &self.low {
            Bound::Unbounded => return false,
            Bound::Inclusive(l) => (l, true),
            Bound::Exclusive(l) => (l, false),
        };
        let (h, h_incl) = match &self.high {
            Bound::Unbounded => return false,
            Bound::Inclusive(h) => (h, true),
            Bound::Exclusive(h) => (h, false),
        };
        match l.total_cmp(h) {
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => !(l_incl && h_incl),
            std::cmp::Ordering::Greater => true,
        }
    }
}

impl<T: Scalar> fmt::Display for RangePredicate<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.low {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Inclusive(l) => write!(f, "[{l}")?,
            Bound::Exclusive(l) => write!(f, "({l}")?,
        }
        write!(f, ", ")?;
        match &self.high {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Inclusive(h) => write!(f, "{h}]"),
            Bound::Exclusive(h) => write!(f, "{h})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_is_inclusive_both_sides() {
        let q = RangePredicate::between(5, 10);
        assert!(!q.matches(&4));
        assert!(q.matches(&5));
        assert!(q.matches(&7));
        assert!(q.matches(&10));
        assert!(!q.matches(&11));
    }

    #[test]
    fn half_open_excludes_high() {
        let q = RangePredicate::half_open(5, 10);
        assert!(q.matches(&5));
        assert!(q.matches(&9));
        assert!(!q.matches(&10));
    }

    #[test]
    fn point_query() {
        let q = RangePredicate::equals(3.5f64);
        assert!(q.matches(&3.5));
        assert!(!q.matches(&3.4999));
    }

    #[test]
    fn one_sided_predicates() {
        assert!(RangePredicate::less_than(5).matches(&4));
        assert!(!RangePredicate::less_than(5).matches(&5));
        assert!(RangePredicate::at_most(5).matches(&5));
        assert!(RangePredicate::greater_than(5).matches(&6));
        assert!(!RangePredicate::greater_than(5).matches(&5));
        assert!(RangePredicate::at_least(5).matches(&5));
        assert!(RangePredicate::<i32>::all().matches(&i32::MIN));
    }

    #[test]
    fn exclusive_bounds() {
        let q = RangePredicate::with_bounds(Bound::Exclusive(1), Bound::Exclusive(3));
        assert!(!q.matches(&1));
        assert!(q.matches(&2));
        assert!(!q.matches(&3));
    }

    #[test]
    fn empty_range_detection() {
        assert!(RangePredicate::between(10, 5).is_empty_range());
        assert!(RangePredicate::half_open(5, 5).is_empty_range());
        assert!(!RangePredicate::between(5, 5).is_empty_range());
        assert!(!RangePredicate::<i32>::all().is_empty_range());
        assert!(!RangePredicate::at_most(3).is_empty_range());
        let q = RangePredicate::with_bounds(Bound::Exclusive(5), Bound::Inclusive(5));
        assert!(q.is_empty_range());
    }

    #[test]
    fn nan_total_order_semantics() {
        // +NaN sorts above +inf: it only matches upper-unbounded predicates.
        let q = RangePredicate::at_most(f64::INFINITY);
        assert!(!q.matches(&f64::NAN));
        let q = RangePredicate::at_least(0.0f64);
        assert!(q.matches(&f64::NAN));
        // -NaN sorts below -inf.
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1u64 << 63));
        assert!(!q.matches(&neg_nan));
    }

    #[test]
    fn display_formats() {
        assert_eq!(RangePredicate::between(1, 2).to_string(), "[1, 2]");
        assert_eq!(RangePredicate::half_open(1, 2).to_string(), "[1, 2)");
        assert_eq!(RangePredicate::<i32>::all().to_string(), "(-inf, +inf)");
        assert_eq!(RangePredicate::greater_than(7).to_string(), "(7, +inf)");
    }
}
