//! Scalar value types storable in a column.
//!
//! The paper indexes fixed-width numeric attributes (char/short/int/long,
//! real/double, dates encoded as ints). [`Scalar`] abstracts over those ten
//! Rust primitive types and supplies exactly what the index machinery needs:
//! a *total* order (floats use IEEE-754 `totalOrder` so NaNs sort
//! deterministically), domain extrema used for the histogram's overflow
//! bins, and a lossless 64-bit bit-pattern for persistence.

use std::cmp::Ordering;
use std::fmt;

/// Runtime tag identifying the scalar type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 1-byte signed integer (`char` in the paper's datasets).
    I8,
    /// 1-byte unsigned integer.
    U8,
    /// 2-byte signed integer (`short`).
    I16,
    /// 2-byte unsigned integer.
    U16,
    /// 4-byte signed integer (`int`, `date`).
    I32,
    /// 4-byte unsigned integer.
    U32,
    /// 8-byte signed integer (`long`).
    I64,
    /// 8-byte unsigned integer (identifiers).
    U64,
    /// 4-byte IEEE-754 float (`real`).
    F32,
    /// 8-byte IEEE-754 float (`double`).
    F64,
}

impl ColumnType {
    /// Width of one value in bytes (1, 2, 4 or 8).
    pub const fn width(self) -> usize {
        match self {
            ColumnType::I8 | ColumnType::U8 => 1,
            ColumnType::I16 | ColumnType::U16 => 2,
            ColumnType::I32 | ColumnType::U32 | ColumnType::F32 => 4,
            ColumnType::I64 | ColumnType::U64 | ColumnType::F64 => 8,
        }
    }

    /// Stable numeric tag used by the on-disk format.
    pub const fn tag(self) -> u8 {
        match self {
            ColumnType::I8 => 0,
            ColumnType::U8 => 1,
            ColumnType::I16 => 2,
            ColumnType::U16 => 3,
            ColumnType::I32 => 4,
            ColumnType::U32 => 5,
            ColumnType::I64 => 6,
            ColumnType::U64 => 7,
            ColumnType::F32 => 8,
            ColumnType::F64 => 9,
        }
    }

    /// Inverse of [`ColumnType::tag`].
    pub const fn from_tag(tag: u8) -> Option<ColumnType> {
        Some(match tag {
            0 => ColumnType::I8,
            1 => ColumnType::U8,
            2 => ColumnType::I16,
            3 => ColumnType::U16,
            4 => ColumnType::I32,
            5 => ColumnType::U32,
            6 => ColumnType::I64,
            7 => ColumnType::U64,
            8 => ColumnType::F32,
            9 => ColumnType::F64,
            _ => return None,
        })
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::I8 => "i8",
            ColumnType::U8 => "u8",
            ColumnType::I16 => "i16",
            ColumnType::U16 => "u16",
            ColumnType::I32 => "i32",
            ColumnType::U32 => "u32",
            ColumnType::I64 => "i64",
            ColumnType::U64 => "u64",
            ColumnType::F32 => "f32",
            ColumnType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A fixed-width scalar storable in a [`crate::Column`] and indexable by
/// column imprints, zonemaps and bitmaps.
///
/// Implementations exist for `i8..=i64`, `u8..=u64`, `f32` and `f64`.
///
/// The order defined by [`Scalar::total_cmp`] must be total. For integers it
/// is the native order; for floats it is IEEE-754 `totalOrder`, under which
/// `-NaN < -inf < … < +inf < +NaN`. This keeps sampling, binning and
/// predicate evaluation deterministic even on dirty float data.
pub trait Scalar: Copy + PartialOrd + Send + Sync + fmt::Debug + fmt::Display + 'static {
    /// The runtime tag for this type.
    const TYPE: ColumnType;
    /// Width of one value in bits — the SWAR lane width. `64 / LANE_BITS`
    /// values of this type fit one `u64` word of the vectorized refinement
    /// kernel (`imprints::simd`).
    const LANE_BITS: u32;
    /// Smallest value of the domain under the *total* order. For floats
    /// this is negative NaN (the IEEE-754 `totalOrder` minimum), so that
    /// every representable value, NaNs included, satisfies
    /// `MIN_VALUE ≤ v ≤ MAX_VALUE`.
    const MIN_VALUE: Self;
    /// Largest value of the domain under the *total* order (positive NaN
    /// for floats). Used as the sentinel filling unused histogram bin
    /// borders (Algorithm 2's `coltype_MAX`), which therefore stays the
    /// total-order maximum and keeps the border array sorted.
    const MAX_VALUE: Self;

    /// Total-order comparison.
    fn total_cmp(&self, other: &Self) -> Ordering;

    /// Lossless encoding of the value into 64 bits (little-endian of the
    /// native representation, zero-extended). Used by the storage layer.
    fn to_bits64(self) -> u64;

    /// Inverse of [`Scalar::to_bits64`]; truncates to the native width.
    fn from_bits64(bits: u64) -> Self;

    /// The value as an **order-preserving unsigned key** in the low
    /// [`Scalar::LANE_BITS`] bits:
    /// `a.total_cmp(b) == a.sort_key().cmp(&b.sort_key())` for every pair,
    /// and the map is a bijection onto `0..2^LANE_BITS`, so the key-space
    /// successor/predecessor of a key is exactly the total-order
    /// successor/predecessor of its value. Unsigned integers map
    /// identically, signed integers flip their sign bit, floats use the
    /// IEEE-754 `totalOrder` rank (sign-magnitude unfolded), NaNs
    /// included. This is what lets the SWAR refinement kernel reduce every
    /// [`crate::RangePredicate`] to one inclusive unsigned key range.
    fn sort_key(self) -> u64;

    /// Converts to `f64` for statistics/reporting (may lose precision for
    /// 64-bit integers; never used on the query path).
    fn as_f64(self) -> f64;

    /// Wraps into a dynamically-typed [`Value`].
    fn into_value(self) -> Value;

    /// Extracts from a dynamically-typed [`Value`], if the variant matches.
    fn from_value(v: &Value) -> Option<Self>;

    /// `true` if `self` ≤ `other` in the total order.
    #[inline]
    fn le_total(&self, other: &Self) -> bool {
        self.total_cmp(other) != Ordering::Greater
    }

    /// `true` if `self` < `other` in the total order.
    #[inline]
    fn lt_total(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Less
    }
}

macro_rules! impl_scalar_int {
    ($($t:ty => $u:ty => $tag:ident / $val:ident),* $(,)?) => {$(
        impl Scalar for $t {
            const TYPE: ColumnType = ColumnType::$tag;
            const LANE_BITS: u32 = <$t>::BITS;
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;

            #[inline]
            fn total_cmp(&self, other: &Self) -> Ordering {
                Ord::cmp(self, other)
            }

            #[inline]
            fn to_bits64(self) -> u64 {
                // Cast through the unsigned type of the same width so the
                // bit pattern (not the numeric value) is preserved.
                self as u64
            }

            #[inline]
            fn sort_key(self) -> u64 {
                // Reinterpret as the same-width unsigned type, xor'd with
                // MIN's bit pattern: identity for unsigned types (MIN is
                // 0), the classic sign-bit flip for signed ones.
                ((self as $u) ^ (<$t>::MIN as $u)) as u64
            }

            #[inline]
            fn from_bits64(bits: u64) -> Self {
                bits as $t
            }

            #[inline]
            fn as_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn into_value(self) -> Value {
                Value::$val(self)
            }

            #[inline]
            fn from_value(v: &Value) -> Option<Self> {
                match v {
                    Value::$val(x) => Some(*x),
                    _ => None,
                }
            }
        }
    )*};
}

impl_scalar_int!(
    i8 => u8 => I8 / I8,
    u8 => u8 => U8 / U8,
    i16 => u16 => I16 / I16,
    u16 => u16 => U16 / U16,
    i32 => u32 => I32 / I32,
    u32 => u32 => U32 / U32,
    i64 => u64 => I64 / I64,
    u64 => u64 => U64 / U64,
);

impl Scalar for f32 {
    const TYPE: ColumnType = ColumnType::F32;
    const LANE_BITS: u32 = 32;
    // Negative / positive NaN with full payload: the extremes of the
    // IEEE-754 totalOrder relation implemented by `f32::total_cmp`.
    const MIN_VALUE: Self = f32::from_bits(0xFFFF_FFFF);
    const MAX_VALUE: Self = f32::from_bits(0x7FFF_FFFF);

    #[inline]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f32::total_cmp(self, other)
    }

    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }

    #[inline]
    fn sort_key(self) -> u64 {
        // The totalOrder rank: negatives (sign bit set, magnitude sorts
        // backwards) flip all bits, non-negatives flip just the sign bit.
        let b = self.to_bits();
        (if b & (1 << 31) != 0 { !b } else { b ^ (1 << 31) }) as u64
    }

    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }

    #[inline]
    fn as_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn into_value(self) -> Value {
        Value::F32(self)
    }

    #[inline]
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::F32(x) => Some(*x),
            _ => None,
        }
    }
}

impl Scalar for f64 {
    const TYPE: ColumnType = ColumnType::F64;
    const LANE_BITS: u32 = 64;
    // Negative / positive NaN with full payload: the extremes of the
    // IEEE-754 totalOrder relation implemented by `f64::total_cmp`.
    const MIN_VALUE: Self = f64::from_bits(0xFFFF_FFFF_FFFF_FFFF);
    const MAX_VALUE: Self = f64::from_bits(0x7FFF_FFFF_FFFF_FFFF);

    #[inline]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f64::total_cmp(self, other)
    }

    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }

    #[inline]
    fn sort_key(self) -> u64 {
        let b = self.to_bits();
        if b & (1 << 63) != 0 {
            !b
        } else {
            b ^ (1 << 63)
        }
    }

    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }

    #[inline]
    fn as_f64(self) -> f64 {
        self
    }

    #[inline]
    fn into_value(self) -> Value {
        Value::F64(self)
    }

    #[inline]
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }
}

/// A dynamically-typed scalar value, used for tuple reconstruction across
/// heterogeneous columns of a [`crate::Relation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An `i8` value.
    I8(i8),
    /// A `u8` value.
    U8(u8),
    /// An `i16` value.
    I16(i16),
    /// A `u16` value.
    U16(u16),
    /// An `i32` value.
    I32(i32),
    /// A `u32` value.
    U32(u32),
    /// An `i64` value.
    I64(i64),
    /// A `u64` value.
    U64(u64),
    /// An `f32` value.
    F32(f32),
    /// An `f64` value.
    F64(f64),
}

impl Value {
    /// The runtime type of this value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::I8(_) => ColumnType::I8,
            Value::U8(_) => ColumnType::U8,
            Value::I16(_) => ColumnType::I16,
            Value::U16(_) => ColumnType::U16,
            Value::I32(_) => ColumnType::I32,
            Value::U32(_) => ColumnType::U32,
            Value::I64(_) => ColumnType::I64,
            Value::U64(_) => ColumnType::U64,
            Value::F32(_) => ColumnType::F32,
            Value::F64(_) => ColumnType::F64,
        }
    }

    /// Numeric view for reporting (lossy for large 64-bit integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Value::I8(v) => v as f64,
            Value::U8(v) => v as f64,
            Value::I16(v) => v as f64,
            Value::U16(v) => v as f64,
            Value::I32(v) => v as f64,
            Value::U32(v) => v as f64,
            Value::I64(v) => v as f64,
            Value::U64(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I8(v) => write!(f, "{v}"),
            Value::U8(v) => write!(f, "{v}"),
            Value::I16(v) => write!(f, "{v}"),
            Value::U16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_rust_sizes() {
        assert_eq!(ColumnType::I8.width(), std::mem::size_of::<i8>());
        assert_eq!(ColumnType::U16.width(), std::mem::size_of::<u16>());
        assert_eq!(ColumnType::F32.width(), std::mem::size_of::<f32>());
        assert_eq!(ColumnType::I64.width(), std::mem::size_of::<i64>());
        assert_eq!(ColumnType::F64.width(), std::mem::size_of::<f64>());
    }

    #[test]
    fn tag_roundtrip_all_types() {
        for t in [
            ColumnType::I8,
            ColumnType::U8,
            ColumnType::I16,
            ColumnType::U16,
            ColumnType::I32,
            ColumnType::U32,
            ColumnType::I64,
            ColumnType::U64,
            ColumnType::F32,
            ColumnType::F64,
        ] {
            assert_eq!(ColumnType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(ColumnType::from_tag(200), None);
    }

    #[test]
    fn bits64_roundtrip_integers() {
        assert_eq!(i8::from_bits64((-5i8).to_bits64()), -5);
        assert_eq!(i16::from_bits64((-30000i16).to_bits64()), -30000);
        assert_eq!(i32::from_bits64(i32::MIN.to_bits64()), i32::MIN);
        assert_eq!(i64::from_bits64(i64::MIN.to_bits64()), i64::MIN);
        assert_eq!(u64::from_bits64(u64::MAX.to_bits64()), u64::MAX);
    }

    #[test]
    fn bits64_roundtrip_floats() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(f64::from_bits64(v.to_bits64()).to_bits(), v.to_bits());
        }
        let nan = f64::from_bits64(f64::NAN.to_bits64());
        assert!(nan.is_nan());
        for v in [0.0f32, -3.25, f32::MAX] {
            assert_eq!(f32::from_bits64(v.to_bits64()), v);
        }
    }

    #[test]
    fn float_total_order_handles_nan_and_zero() {
        assert_eq!(f64::NEG_INFINITY.total_cmp(&f64::INFINITY), Ordering::Less);
        assert_eq!((-0.0f64).total_cmp(&0.0), Ordering::Less);
        assert_eq!(f64::NAN.total_cmp(&f64::INFINITY), Ordering::Greater);
        assert!(1.0f64.lt_total(&2.0));
        assert!(1.0f64.le_total(&1.0));
    }

    #[test]
    fn min_max_are_extremes() {
        assert!(i32::MIN_VALUE.le_total(&0));
        assert!(0i32.le_total(&i32::MAX_VALUE));
        assert!(f64::MIN_VALUE.lt_total(&-1e308));
        assert!(1e308f64.lt_total(&f64::MAX_VALUE));
    }

    /// `sort_key` must mirror `total_cmp` exactly and span the full
    /// `0..2^LANE_BITS` key space — the contract the SWAR kernel's
    /// key-range reduction rests on.
    #[test]
    fn sort_key_orders_like_total_cmp() {
        fn check<T: Scalar>(values: &[T]) {
            for a in values {
                for b in values {
                    assert_eq!(
                        a.total_cmp(b),
                        a.sort_key().cmp(&b.sort_key()),
                        "sort_key broke the order of {a:?} vs {b:?}"
                    );
                }
            }
            let max_key = if T::LANE_BITS == 64 { u64::MAX } else { (1 << T::LANE_BITS) - 1 };
            assert_eq!(T::MIN_VALUE.sort_key(), 0, "domain minimum must map to key 0");
            assert_eq!(T::MAX_VALUE.sort_key(), max_key, "domain maximum must map to the top key");
        }
        check(&[i8::MIN, -1, 0, 1, i8::MAX]);
        check(&[0u8, 1, 127, 128, u8::MAX]);
        check(&[i16::MIN, -1, 0, 1, i16::MAX]);
        check(&[0u16, 1, u16::MAX]);
        check(&[i32::MIN, -100, -1, 0, 1, 100, i32::MAX]);
        check(&[0u32, 1, u32::MAX]);
        check(&[i64::MIN, -1, 0, 1, i64::MAX]);
        check(&[0u64, 1, u64::MAX]);
        let neg_nan32 = f32::from_bits(f32::NAN.to_bits() | (1 << 31));
        check(&[neg_nan32, f32::NEG_INFINITY, -1.5, -0.0, 0.0, 1.5, f32::INFINITY, f32::NAN]);
        let neg_nan64 = f64::from_bits(f64::NAN.to_bits() | (1 << 63));
        check(&[neg_nan64, f64::NEG_INFINITY, -1.5, -0.0, 0.0, 1.5, f64::INFINITY, f64::NAN]);
    }

    #[test]
    fn value_scalar_roundtrip() {
        assert_eq!(i32::from_value(&Value::I32(7)), Some(7));
        assert_eq!(i32::from_value(&Value::I64(7)), None);
        assert_eq!(f64::from_value(&Value::F64(2.5)), Some(2.5));
        assert_eq!(u8::from_value(&5u8.into_value()), Some(5));
    }

    #[test]
    fn value_type_and_display() {
        assert_eq!(5i32.into_value().column_type(), ColumnType::I32);
        assert_eq!(5u8.into_value().column_type(), ColumnType::U8);
        assert_eq!(format!("{}", 2.5f64.into_value()), "2.5");
        assert_eq!((-7i64).into_value().as_f64(), -7.0);
    }
}
