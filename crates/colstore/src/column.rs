//! Dense, typed, cacheline-aligned columns.
//!
//! A [`Column<T>`] is the unit of storage the secondary indexes are defined
//! over: a single dense array of fixed-width values. Row ids are implicit —
//! the value at position `i` has id `i` — matching the paper's description
//! of MonetDB's ordered `(id, value)` representation where "ids need not be
//! materialized since they can be easily derived from the position of the
//! values in the array".

use crate::aligned::AlignedVec;
use crate::types::Scalar;
use crate::{values_per_cacheline, CACHELINE_BYTES};

/// A dense in-memory column of scalar values, 64-byte aligned.
///
/// # Examples
///
/// ```
/// use colstore::Column;
///
/// let col: Column<i32> = Column::from(vec![1, 8, 4, 1, 6, 2]);
/// assert_eq!(col.len(), 6);
/// assert_eq!(col.values_per_cacheline(), 16);
/// assert_eq!(col.cacheline_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Column<T: Scalar> {
    data: AlignedVec<T>,
}

impl<T: Scalar> Column<T> {
    /// Creates an empty column.
    pub fn new() -> Self {
        Column { data: AlignedVec::new() }
    }

    /// Creates an empty column with room for `cap` values.
    pub fn with_capacity(cap: usize) -> Self {
        Column { data: AlignedVec::with_capacity(cap) }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Values per cacheline for this column's type (the paper's `vpc`).
    pub fn values_per_cacheline(&self) -> usize {
        values_per_cacheline::<T>()
    }

    /// Number of cachelines the column occupies (last one may be partial).
    pub fn cacheline_count(&self) -> usize {
        crate::cacheline_count::<T>(self.len())
    }

    /// All values as a slice; the slice starts on a cacheline boundary.
    pub fn values(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the values (used by update machinery and tests).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The value at row `id`.
    #[inline]
    pub fn get(&self, id: usize) -> Option<T> {
        self.data.as_slice().get(id).copied()
    }

    /// The values of cacheline `line` (the last line may be short).
    ///
    /// # Panics
    /// Panics if `line >= self.cacheline_count()`.
    pub fn cacheline(&self, line: usize) -> &[T] {
        assert!(line < self.cacheline_count(), "cacheline out of range");
        let vpc = self.values_per_cacheline();
        let start = line * vpc;
        let end = (start + vpc).min(self.len());
        &self.data[start..end]
    }

    /// Iterator over the cachelines of the column, in order.
    pub fn cachelines(&self) -> impl Iterator<Item = &[T]> + '_ {
        self.data.chunks(self.values_per_cacheline())
    }

    /// Appends one value (the common "data append" path of §4.1).
    pub fn push(&mut self, value: T) {
        self.data.push(value);
    }

    /// Appends a batch of values.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.data.extend_from_slice(values);
    }

    /// Bytes of value data (excluding allocator slack).
    pub fn data_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }

    /// Concatenates `parts` into one column, in order — the segment-merge
    /// primitive: compaction glues adjacent segments' data back together so
    /// a single index can be rebuilt over the combined values.
    pub fn concat(parts: &[&Column<T>]) -> Column<T> {
        let mut out = Column::with_capacity(parts.iter().map(|c| c.len()).sum());
        for part in parts {
            out.extend_from_slice(part.values());
        }
        out
    }

    /// Heap bytes actually allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.data.allocated_bytes()
    }

    /// Minimum and maximum under the total order, or `None` if empty.
    ///
    /// A full scan — this is what zonemaps precompute per zone and what the
    /// binning step consults for reporting; it is not on the query path.
    pub fn min_max(&self) -> Option<(T, T)> {
        let mut it = self.data.iter();
        let first = *it.next()?;
        let mut min = first;
        let mut max = first;
        for &v in it {
            if v.lt_total(&min) {
                min = v;
            }
            if max.lt_total(&v) {
                max = v;
            }
        }
        Some((min, max))
    }

    /// Exact number of distinct values (sorts a copy; O(n log n), used only
    /// for dataset statistics reporting, never on the query path).
    pub fn distinct_count(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut sorted: Vec<T> = self.data.to_vec();
        sorted.sort_unstable_by(T::total_cmp);
        1 + sorted.windows(2).filter(|w| w[0].total_cmp(&w[1]).is_ne()).count()
    }

    /// Verifies the column's base pointer is cacheline aligned (always true
    /// for non-empty columns; exposed for tests and assertions).
    pub fn is_cacheline_aligned(&self) -> bool {
        (self.data.as_ptr() as usize).is_multiple_of(CACHELINE_BYTES) || self.is_empty()
    }
}

impl<T: Scalar> From<Vec<T>> for Column<T> {
    fn from(v: Vec<T>) -> Self {
        Column { data: AlignedVec::from(v) }
    }
}

impl<T: Scalar> From<&[T]> for Column<T> {
    fn from(v: &[T]) -> Self {
        Column { data: AlignedVec::from(v) }
    }
}

impl<T: Scalar> FromIterator<T> for Column<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Column { data: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_column() {
        let c: Column<i32> = Column::new();
        assert!(c.is_empty());
        assert_eq!(c.cacheline_count(), 0);
        assert_eq!(c.min_max(), None);
        assert_eq!(c.distinct_count(), 0);
        assert!(c.is_cacheline_aligned());
    }

    #[test]
    fn cacheline_partitioning_i32() {
        // 40 i32 values -> vpc 16 -> lines of 16, 16, 8.
        let c: Column<i32> = (0..40).collect();
        assert_eq!(c.cacheline_count(), 3);
        let lines: Vec<&[i32]> = c.cachelines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), 16);
        assert_eq!(lines[1].len(), 16);
        assert_eq!(lines[2].len(), 8);
        assert_eq!(c.cacheline(2), lines[2]);
        assert_eq!(lines[1][0], 16);
    }

    #[test]
    fn cacheline_partitioning_u8_exact() {
        let c: Column<u8> = (0..128u8).collect();
        assert_eq!(c.cacheline_count(), 2);
        assert!(c.cachelines().all(|l| l.len() == 64));
    }

    #[test]
    fn alignment_of_data() {
        let c: Column<f64> = (0..1000).map(|i| i as f64).collect();
        assert!(c.is_cacheline_aligned());
    }

    #[test]
    fn min_max_and_distinct() {
        let c: Column<i32> = Column::from(vec![5, -1, 5, 3, -1, 7]);
        assert_eq!(c.min_max(), Some((-1, 7)));
        assert_eq!(c.distinct_count(), 4);
    }

    #[test]
    fn min_max_with_nan_total_order() {
        let c: Column<f64> = Column::from(vec![1.0, f64::NAN, -2.0]);
        let (min, max) = c.min_max().unwrap();
        assert_eq!(min, -2.0);
        assert!(max.is_nan(), "positive NaN is the total-order maximum");
    }

    #[test]
    fn get_and_push() {
        let mut c: Column<u16> = Column::new();
        c.push(9);
        c.extend_from_slice(&[10, 11]);
        assert_eq!(c.get(0), Some(9));
        assert_eq!(c.get(2), Some(11));
        assert_eq!(c.get(3), None);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn data_bytes_accounting() {
        let c: Column<i64> = (0..10).collect();
        assert_eq!(c.data_bytes(), 80);
        assert!(c.allocated_bytes() >= 80);
    }

    #[test]
    fn concat_preserves_order_and_alignment() {
        let a: Column<i32> = Column::from(vec![1, 2, 3]);
        let b: Column<i32> = Column::new();
        let c: Column<i32> = Column::from(vec![4, 5]);
        let merged = Column::concat(&[&a, &b, &c]);
        assert_eq!(merged.values(), &[1, 2, 3, 4, 5]);
        assert!(merged.is_cacheline_aligned());
        let empty = Column::<i32>::concat(&[]);
        assert!(empty.is_empty());
    }
}
