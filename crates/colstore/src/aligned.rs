//! Cacheline-aligned growable buffer.
//!
//! The whole point of column imprints is to filter at *cacheline*
//! granularity, so the column data itself must start on a cacheline
//! boundary: otherwise the index's notion of "cacheline `i`" and the
//! hardware's disagree, and the index would touch two physical lines per
//! logical line. [`AlignedVec`] is a `Vec`-like container whose backing
//! allocation is always aligned to [`crate::CACHELINE_BYTES`].
//!
//! Only `Copy` element types are supported — columns hold plain fixed-width
//! scalars — which keeps the unsafe surface minimal (no element drops, no
//! panics mid-construction to worry about).

use std::alloc::{self, Layout};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

use crate::CACHELINE_BYTES;

/// A growable, heap-allocated array whose storage is 64-byte aligned.
///
/// Behaves like a `Vec<T>` for the operations a column store needs: `push`,
/// `extend_from_slice`, indexing, slicing and iteration (via `Deref<[T]>`).
///
/// # Examples
///
/// ```
/// use colstore::AlignedVec;
///
/// let mut v: AlignedVec<u32> = AlignedVec::new();
/// v.extend_from_slice(&[1, 2, 3]);
/// assert_eq!(&v[..], &[1, 2, 3]);
/// assert_eq!(v.as_ptr() as usize % 64, 0);
/// ```
pub struct AlignedVec<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedVec owns its buffer exclusively, exactly like Vec<T>.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
// SAFETY: shared access only hands out &[T].
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    const ELEM: usize = std::mem::size_of::<T>();

    /// Creates an empty vector without allocating.
    pub fn new() -> Self {
        assert!(Self::ELEM > 0, "zero-sized types are not storable in a column");
        assert!(
            Self::ELEM <= CACHELINE_BYTES && CACHELINE_BYTES.is_multiple_of(Self::ELEM),
            "element size must divide the cacheline size"
        );
        AlignedVec { ptr: NonNull::dangling(), len: 0, cap: 0 }
    }

    /// Creates an empty vector with room for at least `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        v.reserve_exact(cap);
        v
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap * Self::ELEM, CACHELINE_BYTES)
            .expect("column allocation exceeds isize::MAX bytes")
    }

    /// Ensures capacity for at least `additional` more elements, growing
    /// geometrically (doubling) to amortize reallocation.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len.checked_add(additional).expect("capacity overflow");
        if needed <= self.cap {
            return;
        }
        // Start at one full cacheline worth of elements; doubling after that.
        let min_cap = CACHELINE_BYTES / Self::ELEM;
        let new_cap = needed.max(self.cap * 2).max(min_cap);
        self.grow_to(new_cap);
    }

    /// Ensures capacity for at least `additional` more elements, allocating
    /// exactly the requested amount.
    pub fn reserve_exact(&mut self, additional: usize) {
        let needed = self.len.checked_add(additional).expect("capacity overflow");
        if needed > self.cap {
            self.grow_to(needed);
        }
    }

    fn grow_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap > self.cap);
        let new_layout = Self::layout(new_cap);
        let new_ptr = if self.cap == 0 {
            // SAFETY: layout has non-zero size (new_cap > 0, ELEM > 0).
            unsafe { alloc::alloc(new_layout) }
        } else {
            let old_layout = Self::layout(self.cap);
            // SAFETY: ptr was allocated with old_layout by this allocator;
            // realloc preserves the 64-byte alignment of the layout.
            unsafe { alloc::realloc(self.ptr.as_ptr().cast(), old_layout, new_layout.size()) }
        };
        let Some(p) = NonNull::new(new_ptr.cast::<T>()) else {
            alloc::handle_alloc_error(new_layout);
        };
        self.ptr = p;
        self.cap = new_cap;
    }

    /// Appends one element.
    pub fn push(&mut self, value: T) {
        if self.len == self.cap {
            self.reserve(1);
        }
        // SAFETY: len < cap after reserve, so the write is in bounds.
        unsafe { self.ptr.as_ptr().add(self.len).write(value) };
        self.len += 1;
    }

    /// Appends all elements of `src`.
    pub fn extend_from_slice(&mut self, src: &[T]) {
        self.reserve(src.len());
        // SAFETY: reserve guarantees room for src.len() elements past len;
        // src cannot overlap the freshly (re)allocated tail.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.as_ptr().add(self.len), src.len());
        }
        self.len += src.len();
    }

    /// Shortens the vector to `new_len` elements. No-op if already shorter.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len < self.len {
            self.len = new_len;
        }
    }

    /// Removes all elements, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Raw pointer to the first element (64-byte aligned once allocated).
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len reads (or dangling with len == 0).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len reads/writes and uniquely borrowed.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Heap bytes currently allocated by this vector.
    pub fn allocated_bytes(&self) -> usize {
        self.cap * Self::ELEM
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.cap != 0 {
            // SAFETY: allocated with this exact layout; T: Copy needs no drops.
            unsafe { alloc::dealloc(self.ptr.as_ptr().cast(), Self::layout(self.cap)) };
        }
    }
}

impl<T: Copy> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        let mut v = Self::with_capacity(self.len);
        v.extend_from_slice(self);
        v
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy> From<&[T]> for AlignedVec<T> {
    fn from(src: &[T]) -> Self {
        let mut v = Self::with_capacity(src.len());
        v.extend_from_slice(src);
        v
    }
}

impl<T: Copy> From<Vec<T>> for AlignedVec<T> {
    fn from(src: Vec<T>) -> Self {
        Self::from(src.as_slice())
    }
}

impl<T: Copy> FromIterator<T> for AlignedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = Self::with_capacity(iter.size_hint().0);
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<'a, T: Copy> IntoIterator for &'a AlignedVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vec_has_no_allocation() {
        let v: AlignedVec<u64> = AlignedVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 0);
        assert_eq!(v.allocated_bytes(), 0);
        assert_eq!(v.as_slice(), &[] as &[u64]);
    }

    #[test]
    fn push_preserves_alignment() {
        let mut v: AlignedVec<u8> = AlignedVec::new();
        for i in 0..1000u32 {
            v.push(i as u8);
        }
        assert_eq!(v.len(), 1000);
        assert_eq!(v.as_ptr() as usize % CACHELINE_BYTES, 0);
        assert!(v.iter().enumerate().all(|(i, &b)| b == i as u8));
    }

    #[test]
    fn realloc_keeps_alignment_across_many_growths() {
        let mut v: AlignedVec<f64> = AlignedVec::with_capacity(1);
        for i in 0..100_000 {
            v.push(i as f64);
            debug_assert_eq!(v.as_ptr() as usize % CACHELINE_BYTES, 0);
        }
        assert_eq!(v.as_ptr() as usize % CACHELINE_BYTES, 0);
        assert_eq!(v[99_999], 99_999.0);
    }

    #[test]
    fn extend_from_slice_appends() {
        let mut v: AlignedVec<i32> = AlignedVec::new();
        v.extend_from_slice(&[1, 2]);
        v.extend_from_slice(&[3, 4, 5]);
        assert_eq!(&v[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn clone_is_deep_and_aligned() {
        let v: AlignedVec<u16> = (0..500u16).collect();
        let w = v.clone();
        assert_eq!(v, w);
        assert_ne!(v.as_ptr(), w.as_ptr());
        assert_eq!(w.as_ptr() as usize % CACHELINE_BYTES, 0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let v: AlignedVec<i64> = vec![5, -3, 8].into();
        assert_eq!(&v[..], &[5, -3, 8]);
    }

    #[test]
    fn truncate_and_clear() {
        let mut v: AlignedVec<u32> = (0..10).collect();
        v.truncate(20); // no-op
        assert_eq!(v.len(), 10);
        v.truncate(3);
        assert_eq!(&v[..], &[0, 1, 2]);
        let cap = v.capacity();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap);
    }

    #[test]
    fn mutable_slice_access() {
        let mut v: AlignedVec<i8> = (0..5).collect();
        v.as_mut_slice()[2] = 42;
        v[0] = -1;
        assert_eq!(&v[..], &[-1, 1, 42, 3, 4]);
    }

    #[test]
    fn reserve_exact_allocates_requested() {
        let mut v: AlignedVec<u64> = AlignedVec::new();
        v.reserve_exact(100);
        assert!(v.capacity() >= 100);
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn from_iterator_collects() {
        let v: AlignedVec<u32> = (0..257).collect();
        assert_eq!(v.len(), 257);
        assert_eq!(v[256], 256);
    }
}
