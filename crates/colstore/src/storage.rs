//! Checksummed binary persistence.
//!
//! Columns (and, in the `imprints` crate, indexes) serialize to an explicit
//! little-endian format instead of a serde derive: database storage formats
//! should be inspectable and stable. Layout of a column file:
//!
//! ```text
//! +------+---------+---------+----------+-------------+----------+
//! | magic| version | type tag| row count| value bytes | crc32    |
//! | 4 B  | u16     | u8 (+pad)| u64     | n * width   | u32      |
//! +------+---------+---------+----------+-------------+----------+
//! ```
//!
//! The CRC-32 (IEEE polynomial, the zlib variant) covers everything after
//! the magic up to the checksum itself. The same [`Writer`]/[`Reader`]
//! primitives are reused by the index serializers.

use std::io::{Read, Write};

use crate::column::Column;
use crate::error::{Error, Result};
use crate::types::{ColumnType, Scalar};

/// Magic bytes identifying a column file.
pub const COLUMN_MAGIC: [u8; 4] = *b"CIMC";
/// Current column file format version.
pub const COLUMN_VERSION: u16 = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected — the zlib/PNG variant).
///
/// Hand-rolled table-driven implementation: small, dependency-free, and the
/// format stays self-describing.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            // panic-ok: the loop bound keeps `i` inside the 256-entry table.
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        // panic-ok: the index is masked to 0xFF, always inside the
        // 256-entry table.
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Accumulates a serialized payload and computes its checksum.
///
/// The payload (everything between the magic and the trailing CRC) is built
/// in memory, then flushed with [`Writer::finish`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a scalar at its native width, little endian.
    pub fn put_scalar<T: Scalar>(&mut self, v: T) {
        let bits = v.to_bits64().to_le_bytes();
        // panic-ok: every Scalar is at most 8 bytes wide, the size of `bits`.
        self.buf.extend_from_slice(&bits[..std::mem::size_of::<T>()]);
    }

    /// Writes `magic || payload || crc32(payload)` to `out`.
    pub fn finish<W: Write>(self, magic: &[u8; 4], out: &mut W) -> Result<()> {
        out.write_all(magic)?;
        out.write_all(&self.buf)?;
        out.write_all(&crc32(&self.buf).to_le_bytes())?;
        Ok(())
    }
}

/// Reads back a payload written by [`Writer`], verifying magic and checksum
/// up front.
#[derive(Debug)]
pub struct Reader {
    buf: Vec<u8>,
    pos: usize,
}

impl Reader {
    /// Consumes `input`, checking the magic and the trailing CRC.
    pub fn open<R: Read>(magic: &[u8; 4], input: &mut R) -> Result<Self> {
        let mut all = Vec::new();
        input.read_to_end(&mut all)?;
        if all.len() < 8 {
            return Err(Error::Corrupt("file shorter than header".into()));
        }
        let (head, rest) = all.split_at(4);
        if head != magic {
            return Err(Error::Corrupt(format!("bad magic {head:?}, expected {magic:?}")));
        }
        let (payload, crc_bytes) = rest.split_at(rest.len() - 4);
        let mut crc = [0u8; 4];
        for (d, s) in crc.iter_mut().zip(crc_bytes) {
            *d = *s;
        }
        let expected = u32::from_le_bytes(crc);
        let actual = crc32(payload);
        if expected != actual {
            return Err(Error::ChecksumMismatch { expected, actual });
        }
        Ok(Reader { buf: payload.to_vec(), pos: 0 })
    }

    /// The next `n` payload bytes. The offset advance uses `checked_add`:
    /// a crafted length near `usize::MAX` must come back as
    /// [`Error::Corrupt`], not wrap the bounds check and panic below it.
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            Error::Corrupt(format!("length overflow: wanted {n} bytes at offset {}", self.pos))
        })?;
        let Some(s) = self.buf.get(self.pos..end) else {
            return Err(Error::Corrupt(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        };
        self.pos = end;
        Ok(s)
    }

    /// The next `N` bytes as a fixed array (`take` guarantees the length).
    fn fixed<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        for (d, v) in out.iter_mut().zip(s) {
            *d = *v;
        }
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(u8::from_le_bytes(self.fixed::<1>()?))
    }

    /// Reads a `u16`, little endian.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.fixed::<2>()?))
    }

    /// Reads a `u32`, little endian.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.fixed::<4>()?))
    }

    /// Reads a `u64`, little endian.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.fixed::<8>()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&[u8]> {
        self.take(n)
    }

    /// Reads a scalar at its native width.
    pub fn get_scalar<T: Scalar>(&mut self) -> Result<T> {
        let w = std::mem::size_of::<T>();
        let s = self.take(w)?;
        let mut bits = [0u8; 8];
        for (d, v) in bits.iter_mut().zip(s) {
            *d = *v;
        }
        Ok(T::from_bits64(u64::from_le_bytes(bits)))
    }

    /// Reads a `u64` count field that sizes an upcoming allocation,
    /// validating it against the bytes actually left: `n` elements of
    /// `elem_bytes` each must fit in the remaining payload. Without the
    /// check a CRC-valid crafted file declaring `u64::MAX` elements would
    /// abort the process on the allocation instead of returning
    /// [`Error::Corrupt`].
    pub fn get_count(&mut self, elem_bytes: usize, what: &str) -> Result<usize> {
        let n = self.get_u64()?;
        let need = n.checked_mul(elem_bytes as u64).filter(|&b| b <= self.remaining() as u64);
        if need.is_none() {
            return Err(Error::Corrupt(format!(
                "{what} count {n} × {elem_bytes} B exceeds the {} remaining payload bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Bytes remaining in the payload.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Serializes a column to `out` in the format described in the module docs.
pub fn write_column<T: Scalar, W: Write>(col: &Column<T>, out: &mut W) -> Result<()> {
    let mut w = Writer::new();
    w.put_u16(COLUMN_VERSION);
    w.put_u8(T::TYPE.tag());
    w.put_u8(0); // pad
    w.put_u64(col.len() as u64);
    for &v in col.values() {
        w.put_scalar(v);
    }
    w.finish(&COLUMN_MAGIC, out)
}

/// Deserializes a column written by [`write_column`]. The stored type tag
/// must match `T`.
pub fn read_column<T: Scalar, R: Read>(input: &mut R) -> Result<Column<T>> {
    let mut r = Reader::open(&COLUMN_MAGIC, input)?;
    let version = r.get_u16()?;
    if version != COLUMN_VERSION {
        return Err(Error::Corrupt(format!("unsupported column version {version}")));
    }
    let tag = r.get_u8()?;
    let ty = ColumnType::from_tag(tag)
        .ok_or_else(|| Error::Corrupt(format!("unknown type tag {tag}")))?;
    if ty != T::TYPE {
        return Err(Error::Mismatch(format!("file holds {ty}, requested {}", T::TYPE)));
    }
    let _pad = r.get_u8()?;
    // Validate the declared row count against the bytes actually present
    // *before* allocating: `n * size_of::<T>()` must equal the remaining
    // payload exactly, so a CRC-valid crafted file declaring `u64::MAX`
    // rows errors out instead of OOM-aborting on the reservation.
    let width = std::mem::size_of::<T>();
    let n = r.get_count(width, "row")?;
    if n.checked_mul(width) != Some(r.remaining()) {
        return Err(Error::Corrupt(format!(
            "row count {n} × {width} B disagrees with the {} remaining payload bytes",
            r.remaining()
        )));
    }
    let mut col = Column::with_capacity(n);
    for _ in 0..n {
        col.push(r.get_scalar::<T>()?);
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn column_roundtrip_i32() {
        let col: Column<i32> = Column::from(vec![1, -2, 3, i32::MAX, i32::MIN]);
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let back: Column<i32> = read_column(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.values(), col.values());
    }

    #[test]
    fn column_roundtrip_f64_with_specials() {
        let col: Column<f64> = Column::from(vec![0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY]);
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let back: Column<f64> = read_column(&mut bytes.as_slice()).unwrap();
        for (a, b) in back.values().iter().zip(col.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn column_roundtrip_empty() {
        let col: Column<u8> = Column::new();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let back: Column<u8> = read_column(&mut bytes.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupted_payload_detected() {
        let col: Column<u16> = (0..100).collect();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = read_column::<u16, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::ChecksumMismatch { .. }), "got {err}");
    }

    #[test]
    fn wrong_magic_detected() {
        let col: Column<u16> = (0..4).collect();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        bytes[0] = b'X';
        let err = read_column::<u16, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
    }

    #[test]
    fn wrong_type_detected() {
        let col: Column<i32> = (0..4).collect();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let err = read_column::<i64, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Mismatch(_)));
    }

    #[test]
    fn truncated_file_detected() {
        let err = read_column::<u8, _>(&mut &b"CIM"[..]).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
    }

    /// A CRC-valid crafted file declaring `u64::MAX` rows must come back
    /// as `Corrupt`, not OOM-abort on the eager allocation.
    #[test]
    fn crafted_row_count_rejected_before_allocating() {
        let mut w = Writer::new();
        w.put_u16(COLUMN_VERSION);
        w.put_u8(ColumnType::U32.tag());
        w.put_u8(0);
        w.put_u64(u64::MAX);
        let mut bytes = Vec::new();
        w.finish(&COLUMN_MAGIC, &mut bytes).unwrap();
        let err = read_column::<u32, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err}");
    }

    /// A row count that disagrees with the value bytes present (in either
    /// direction) is corrupt, even when the checksum holds.
    #[test]
    fn row_count_payload_mismatch_rejected() {
        for declared in [1u64, 4] {
            let mut w = Writer::new();
            w.put_u16(COLUMN_VERSION);
            w.put_u8(ColumnType::I16.tag());
            w.put_u8(0);
            w.put_u64(declared);
            for v in [1i16, 2, 3] {
                w.put_scalar(v);
            }
            let mut bytes = Vec::new();
            w.finish(&COLUMN_MAGIC, &mut bytes).unwrap();
            let err = read_column::<i16, _>(&mut bytes.as_slice()).unwrap_err();
            assert!(matches!(err, Error::Corrupt(_)), "declared {declared}: got {err}");
        }
    }

    /// A crafted length near `usize::MAX` must not wrap the bounds check
    /// (the old `pos + n` overflowed and the slice below panicked).
    #[test]
    fn take_overflow_is_corrupt_not_panic() {
        let mut w = Writer::new();
        w.put_bytes(b"abc");
        let mut out = Vec::new();
        w.finish(b"TEST", &mut out).unwrap();
        let mut r = Reader::open(b"TEST", &mut out.as_slice()).unwrap();
        assert_eq!(r.get_u8().unwrap(), b'a');
        let err = r.get_bytes(usize::MAX).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err}");
        // The reader stays usable after the rejected take.
        assert_eq!(r.get_u8().unwrap(), b'b');
    }

    #[test]
    fn get_count_validates_against_remaining() {
        let mut w = Writer::new();
        w.put_u64(3);
        w.put_bytes(&[0u8; 24]);
        let mut out = Vec::new();
        w.finish(b"TEST", &mut out).unwrap();
        let mut r = Reader::open(b"TEST", &mut out.as_slice()).unwrap();
        assert_eq!(r.get_count(8, "entry").unwrap(), 3);

        let mut w = Writer::new();
        w.put_u64(4); // declares 4 × 8 B, only 8 B follow
        w.put_bytes(&[0u8; 8]);
        let mut out = Vec::new();
        w.finish(b"TEST", &mut out).unwrap();
        let mut r = Reader::open(b"TEST", &mut out.as_slice()).unwrap();
        assert!(matches!(r.get_count(8, "entry").unwrap_err(), Error::Corrupt(_)));
    }

    #[test]
    fn reader_writer_primitives_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_scalar(-5i8);
        w.put_scalar(2.5f32);
        w.put_bytes(b"xyz");
        let mut out = Vec::new();
        w.finish(b"TEST", &mut out).unwrap();

        let mut r = Reader::open(b"TEST", &mut out.as_slice()).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_scalar::<i8>().unwrap(), -5);
        assert_eq!(r.get_scalar::<f32>().unwrap(), 2.5);
        assert_eq!(r.get_bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8().is_err());
    }
}
