//! Checksummed binary persistence.
//!
//! Columns (and, in the `imprints` crate, indexes) serialize to an explicit
//! little-endian format instead of a serde derive: database storage formats
//! should be inspectable and stable. Layout of a column file:
//!
//! ```text
//! +------+---------+---------+----------+-------------+----------+
//! | magic| version | type tag| row count| value bytes | crc32    |
//! | 4 B  | u16     | u8 (+pad)| u64     | n * width   | u32      |
//! +------+---------+---------+----------+-------------+----------+
//! ```
//!
//! The CRC-32 (IEEE polynomial, the zlib variant) covers everything after
//! the magic up to the checksum itself. The same [`Writer`]/[`Reader`]
//! primitives are reused by the index serializers.

use std::io::{Read, Write};

use crate::column::Column;
use crate::error::{Error, Result};
use crate::types::{ColumnType, Scalar};

/// Magic bytes identifying a column file.
pub const COLUMN_MAGIC: [u8; 4] = *b"CIMC";
/// Current column file format version.
pub const COLUMN_VERSION: u16 = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected — the zlib/PNG variant).
///
/// Hand-rolled table-driven implementation: small, dependency-free, and the
/// format stays self-describing.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Accumulates a serialized payload and computes its checksum.
///
/// The payload (everything between the magic and the trailing CRC) is built
/// in memory, then flushed with [`Writer::finish`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a scalar at its native width, little endian.
    pub fn put_scalar<T: Scalar>(&mut self, v: T) {
        let bits = v.to_bits64().to_le_bytes();
        self.buf.extend_from_slice(&bits[..std::mem::size_of::<T>()]);
    }

    /// Writes `magic || payload || crc32(payload)` to `out`.
    pub fn finish<W: Write>(self, magic: &[u8; 4], out: &mut W) -> Result<()> {
        out.write_all(magic)?;
        out.write_all(&self.buf)?;
        out.write_all(&crc32(&self.buf).to_le_bytes())?;
        Ok(())
    }
}

/// Reads back a payload written by [`Writer`], verifying magic and checksum
/// up front.
#[derive(Debug)]
pub struct Reader {
    buf: Vec<u8>,
    pos: usize,
}

impl Reader {
    /// Consumes `input`, checking the magic and the trailing CRC.
    pub fn open<R: Read>(magic: &[u8; 4], input: &mut R) -> Result<Self> {
        let mut all = Vec::new();
        input.read_to_end(&mut all)?;
        if all.len() < 8 {
            return Err(Error::Corrupt("file shorter than header".into()));
        }
        if &all[..4] != magic {
            return Err(Error::Corrupt(format!("bad magic {:?}, expected {:?}", &all[..4], magic)));
        }
        let crc_pos = all.len() - 4;
        let expected = u32::from_le_bytes(all[crc_pos..].try_into().expect("4 bytes"));
        let payload = &all[4..crc_pos];
        let actual = crc32(payload);
        if expected != actual {
            return Err(Error::ChecksumMismatch { expected, actual });
        }
        Ok(Reader { buf: payload.to_vec(), pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Corrupt(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`, little endian.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a `u32`, little endian.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`, little endian.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&[u8]> {
        self.take(n)
    }

    /// Reads a scalar at its native width.
    pub fn get_scalar<T: Scalar>(&mut self) -> Result<T> {
        let w = std::mem::size_of::<T>();
        let mut bits = [0u8; 8];
        bits[..w].copy_from_slice(self.take(w)?);
        Ok(T::from_bits64(u64::from_le_bytes(bits)))
    }

    /// Bytes remaining in the payload.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Serializes a column to `out` in the format described in the module docs.
pub fn write_column<T: Scalar, W: Write>(col: &Column<T>, out: &mut W) -> Result<()> {
    let mut w = Writer::new();
    w.put_u16(COLUMN_VERSION);
    w.put_u8(T::TYPE.tag());
    w.put_u8(0); // pad
    w.put_u64(col.len() as u64);
    for &v in col.values() {
        w.put_scalar(v);
    }
    w.finish(&COLUMN_MAGIC, out)
}

/// Deserializes a column written by [`write_column`]. The stored type tag
/// must match `T`.
pub fn read_column<T: Scalar, R: Read>(input: &mut R) -> Result<Column<T>> {
    let mut r = Reader::open(&COLUMN_MAGIC, input)?;
    let version = r.get_u16()?;
    if version != COLUMN_VERSION {
        return Err(Error::Corrupt(format!("unsupported column version {version}")));
    }
    let tag = r.get_u8()?;
    let ty = ColumnType::from_tag(tag)
        .ok_or_else(|| Error::Corrupt(format!("unknown type tag {tag}")))?;
    if ty != T::TYPE {
        return Err(Error::Mismatch(format!("file holds {ty}, requested {}", T::TYPE)));
    }
    let _pad = r.get_u8()?;
    let n = r.get_u64()? as usize;
    let mut col = Column::with_capacity(n);
    for _ in 0..n {
        col.push(r.get_scalar::<T>()?);
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn column_roundtrip_i32() {
        let col: Column<i32> = Column::from(vec![1, -2, 3, i32::MAX, i32::MIN]);
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let back: Column<i32> = read_column(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.values(), col.values());
    }

    #[test]
    fn column_roundtrip_f64_with_specials() {
        let col: Column<f64> = Column::from(vec![0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY]);
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let back: Column<f64> = read_column(&mut bytes.as_slice()).unwrap();
        for (a, b) in back.values().iter().zip(col.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn column_roundtrip_empty() {
        let col: Column<u8> = Column::new();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let back: Column<u8> = read_column(&mut bytes.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupted_payload_detected() {
        let col: Column<u16> = (0..100).collect();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = read_column::<u16, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::ChecksumMismatch { .. }), "got {err}");
    }

    #[test]
    fn wrong_magic_detected() {
        let col: Column<u16> = (0..4).collect();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        bytes[0] = b'X';
        let err = read_column::<u16, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
    }

    #[test]
    fn wrong_type_detected() {
        let col: Column<i32> = (0..4).collect();
        let mut bytes = Vec::new();
        write_column(&col, &mut bytes).unwrap();
        let err = read_column::<i64, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Mismatch(_)));
    }

    #[test]
    fn truncated_file_detected() {
        let err = read_column::<u8, _>(&mut &b"CIM"[..]).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
    }

    #[test]
    fn reader_writer_primitives_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_scalar(-5i8);
        w.put_scalar(2.5f32);
        w.put_bytes(b"xyz");
        let mut out = Vec::new();
        w.finish(b"TEST", &mut out).unwrap();

        let mut r = Reader::open(b"TEST", &mut out.as_slice()).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_scalar::<i8>().unwrap(), -5);
        assert_eq!(r.get_scalar::<f32>().unwrap(), 2.5);
        assert_eq!(r.get_bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8().is_err());
    }
}
