//! Relations: named bundles of equally-long columns.
//!
//! A column store decomposes a relation into per-attribute arrays; values
//! from different columns with the same position belong to the same tuple
//! (paper §2). [`Relation`] provides that bundling plus tuple
//! reconstruction, which the evaluation engine uses *after* the indexes have
//! produced a final id list (late materialization).

use crate::column::Column;
use crate::error::{Error, Result};
use crate::types::{ColumnType, Scalar, Value};

/// Description of one attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name, unique within the relation.
    pub name: String,
    /// Scalar type of the attribute.
    pub ty: ColumnType,
}

/// An ordered list of attribute descriptions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema { fields: Vec::new() }
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of the field called `name`.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    fn add(&mut self, name: &str, ty: ColumnType) -> Result<()> {
        if self.position(name).is_some() {
            return Err(Error::Mismatch(format!("duplicate column name {name:?}")));
        }
        self.fields.push(Field { name: name.to_string(), ty });
        Ok(())
    }
}

/// A typed column behind a uniform interface, so a relation can hold a mix
/// of scalar types.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyColumn {
    /// A column of `i8`.
    I8(Column<i8>),
    /// A column of `u8`.
    U8(Column<u8>),
    /// A column of `i16`.
    I16(Column<i16>),
    /// A column of `u16`.
    U16(Column<u16>),
    /// A column of `i32`.
    I32(Column<i32>),
    /// A column of `u32`.
    U32(Column<u32>),
    /// A column of `i64`.
    I64(Column<i64>),
    /// A column of `u64`.
    U64(Column<u64>),
    /// A column of `f32`.
    F32(Column<f32>),
    /// A column of `f64`.
    F64(Column<f64>),
}

macro_rules! dispatch {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            AnyColumn::I8($c) => $body,
            AnyColumn::U8($c) => $body,
            AnyColumn::I16($c) => $body,
            AnyColumn::U16($c) => $body,
            AnyColumn::I32($c) => $body,
            AnyColumn::U32($c) => $body,
            AnyColumn::I64($c) => $body,
            AnyColumn::U64($c) => $body,
            AnyColumn::F32($c) => $body,
            AnyColumn::F64($c) => $body,
        }
    };
}

impl AnyColumn {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        dispatch!(self, c => c.len())
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scalar type of the column.
    pub fn column_type(&self) -> ColumnType {
        match self {
            AnyColumn::I8(_) => ColumnType::I8,
            AnyColumn::U8(_) => ColumnType::U8,
            AnyColumn::I16(_) => ColumnType::I16,
            AnyColumn::U16(_) => ColumnType::U16,
            AnyColumn::I32(_) => ColumnType::I32,
            AnyColumn::U32(_) => ColumnType::U32,
            AnyColumn::I64(_) => ColumnType::I64,
            AnyColumn::U64(_) => ColumnType::U64,
            AnyColumn::F32(_) => ColumnType::F32,
            AnyColumn::F64(_) => ColumnType::F64,
        }
    }

    /// The value at row `id` as a dynamically-typed [`Value`].
    pub fn value(&self, id: usize) -> Option<Value> {
        dispatch!(self, c => c.get(id).map(Scalar::into_value))
    }

    /// Bytes of raw value data.
    pub fn data_bytes(&self) -> usize {
        dispatch!(self, c => c.data_bytes())
    }

    /// An empty column of scalar type `ty`.
    pub fn new_empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::I8 => AnyColumn::I8(Column::new()),
            ColumnType::U8 => AnyColumn::U8(Column::new()),
            ColumnType::I16 => AnyColumn::I16(Column::new()),
            ColumnType::U16 => AnyColumn::U16(Column::new()),
            ColumnType::I32 => AnyColumn::I32(Column::new()),
            ColumnType::U32 => AnyColumn::U32(Column::new()),
            ColumnType::I64 => AnyColumn::I64(Column::new()),
            ColumnType::U64 => AnyColumn::U64(Column::new()),
            ColumnType::F32 => AnyColumn::F32(Column::new()),
            ColumnType::F64 => AnyColumn::F64(Column::new()),
        }
    }

    /// Appends a dynamically-typed value; the value's type must match.
    pub fn push_value(&mut self, v: Value) -> crate::Result<()> {
        if v.column_type() != self.column_type() {
            return Err(crate::Error::Mismatch(format!(
                "cannot append {} value to {} column",
                v.column_type(),
                self.column_type()
            )));
        }
        dispatch!(self, c => {
            // The type check above makes from_value infallible here.
            c.push(Scalar::from_value(&v).expect("type tag checked"));
        });
        Ok(())
    }

    /// Appends rows `range` of `other` (which must have the same type) —
    /// the batch-splitting primitive segmented stores use to cut an
    /// incoming append at segment boundaries.
    pub fn extend_from_range(
        &mut self,
        other: &AnyColumn,
        range: std::ops::Range<usize>,
    ) -> crate::Result<()> {
        if other.column_type() != self.column_type() {
            return Err(crate::Error::Mismatch(format!(
                "cannot append {} rows to {} column",
                other.column_type(),
                self.column_type()
            )));
        }
        dispatch!(self, c => {
            let src = other.downcast::<_>().expect("type tag checked");
            c.extend_from_slice(&src.values()[range]);
        });
        Ok(())
    }

    /// Borrows the inner typed column, if the type matches.
    pub fn downcast<T: Scalar>(&self) -> Option<&Column<T>> {
        // A tiny hand-rolled Any: compare runtime tags, then the pointer
        // reinterpretation is safe because the enum payloads are distinct
        // monomorphic types checked via TYPE.
        macro_rules! down {
            ($($v:ident => $t:ty),*) => {
                match self {
                    $(AnyColumn::$v(c) if T::TYPE == <$t as Scalar>::TYPE => {
                        // SAFETY: T::TYPE equality implies T == $t because the
                        // TYPE associated const is unique per implementor.
                        Some(unsafe { &*(c as *const Column<$t> as *const Column<T>) })
                    })*
                    _ => None,
                }
            };
        }
        down!(I8 => i8, U8 => u8, I16 => i16, U16 => u16, I32 => i32,
              U32 => u32, I64 => i64, U64 => u64, F32 => f32, F64 => f64)
    }
}

macro_rules! impl_from_column {
    ($($t:ty => $v:ident),* $(,)?) => {$(
        impl From<Column<$t>> for AnyColumn {
            fn from(c: Column<$t>) -> Self {
                AnyColumn::$v(c)
            }
        }
    )*};
}

impl_from_column!(i8 => I8, u8 => U8, i16 => I16, u16 => U16, i32 => I32,
                  u32 => U32, i64 => I64, u64 => U64, f32 => F32, f64 => F64);

/// A named bundle of equally-long columns — one decomposed relation.
///
/// # Examples
///
/// ```
/// use colstore::{Relation, Column};
///
/// let mut rel = Relation::new("trips");
/// rel.add_column("lat", Column::from(vec![52.37f64, 52.38, 52.40])).unwrap();
/// rel.add_column("lon", Column::from(vec![4.89f64, 4.90, 4.91])).unwrap();
/// assert_eq!(rel.row_count(), 3);
/// let tuple = rel.tuple(1).unwrap();
/// assert_eq!(tuple.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relation {
    name: String,
    schema: Schema,
    columns: Vec<AnyColumn>,
}

impl Relation {
    /// Creates an empty relation called `name`.
    pub fn new(name: &str) -> Self {
        Relation { name: name.to_string(), schema: Schema::new(), columns: Vec::new() }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (0 for a relation with no columns).
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, AnyColumn::len)
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Adds a column under `name`. All columns must have equal length.
    pub fn add_column<C: Into<AnyColumn>>(&mut self, name: &str, column: C) -> Result<()> {
        let column = column.into();
        if !self.columns.is_empty() && column.len() != self.row_count() {
            return Err(Error::Mismatch(format!(
                "column {name:?} has {} rows, relation has {}",
                column.len(),
                self.row_count()
            )));
        }
        self.schema.add(name, column.column_type())?;
        self.columns.push(column);
        Ok(())
    }

    /// The column called `name`.
    pub fn column(&self, name: &str) -> Result<&AnyColumn> {
        let pos = self
            .schema
            .position(name)
            .ok_or_else(|| Error::NotFound(format!("column {name:?}")))?;
        Ok(&self.columns[pos])
    }

    /// The column called `name`, downcast to its concrete type.
    pub fn typed_column<T: Scalar>(&self, name: &str) -> Result<&Column<T>> {
        self.column(name)?
            .downcast::<T>()
            .ok_or_else(|| Error::Mismatch(format!("column {name:?} is not of type {}", T::TYPE)))
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[AnyColumn] {
        &self.columns
    }

    /// Reconstructs the tuple at row `id` (late materialization endpoint).
    pub fn tuple(&self, id: usize) -> Option<Vec<Value>> {
        if id >= self.row_count() {
            return None;
        }
        Some(self.columns.iter().map(|c| c.value(id).expect("id < row_count")).collect())
    }

    /// Reconstructs the tuples for a sorted id list, in order.
    pub fn tuples(&self, ids: &crate::IdList) -> Vec<Vec<Value>> {
        ids.iter().filter_map(|id| self.tuple(id as usize)).collect()
    }

    /// Total bytes of value data across all columns.
    pub fn data_bytes(&self) -> usize {
        self.columns.iter().map(AnyColumn::data_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdList;

    fn sample_relation() -> Relation {
        let mut rel = Relation::new("t");
        rel.add_column("a", Column::from(vec![1i32, 2, 3])).unwrap();
        rel.add_column("b", Column::from(vec![1.5f64, 2.5, 3.5])).unwrap();
        rel.add_column("c", Column::from(vec![10u8, 20, 30])).unwrap();
        rel
    }

    #[test]
    fn schema_tracks_fields() {
        let rel = sample_relation();
        assert_eq!(rel.column_count(), 3);
        assert_eq!(rel.schema().fields()[1].name, "b");
        assert_eq!(rel.schema().fields()[1].ty, ColumnType::F64);
        assert_eq!(rel.schema().position("c"), Some(2));
        assert_eq!(rel.schema().position("zz"), None);
    }

    #[test]
    fn mismatched_length_rejected() {
        let mut rel = sample_relation();
        let err = rel.add_column("d", Column::from(vec![1i32, 2])).unwrap_err();
        assert!(matches!(err, Error::Mismatch(_)));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut rel = sample_relation();
        let err = rel.add_column("a", Column::from(vec![9i32, 9, 9])).unwrap_err();
        assert!(matches!(err, Error::Mismatch(_)));
    }

    #[test]
    fn tuple_reconstruction() {
        let rel = sample_relation();
        let t = rel.tuple(1).unwrap();
        assert_eq!(t, vec![Value::I32(2), Value::F64(2.5), Value::U8(20)]);
        assert!(rel.tuple(3).is_none());
    }

    #[test]
    fn tuples_from_idlist() {
        let rel = sample_relation();
        let ids = IdList::from_sorted(vec![0, 2]);
        let ts = rel.tuples(&ids);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1][0], Value::I32(3));
    }

    #[test]
    fn typed_downcast() {
        let rel = sample_relation();
        let a: &Column<i32> = rel.typed_column("a").unwrap();
        assert_eq!(a.values(), &[1, 2, 3]);
        assert!(rel.typed_column::<f32>("a").is_err());
        assert!(rel.typed_column::<i32>("nope").is_err());
    }

    #[test]
    fn data_bytes_sums_columns() {
        let rel = sample_relation();
        assert_eq!(rel.data_bytes(), 3 * 4 + 3 * 8 + 3);
    }

    #[test]
    fn any_column_value_access() {
        let c: AnyColumn = Column::from(vec![7i16, 8]).into();
        assert_eq!(c.column_type(), ColumnType::I16);
        assert_eq!(c.value(1), Some(Value::I16(8)));
        assert_eq!(c.value(2), None);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
