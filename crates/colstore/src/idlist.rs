//! Row-id result lists and candidate cacheline sets.
//!
//! Range queries over a column store return "the id list of the qualifying
//! values" (paper §3). [`IdList`] is that materialized, ordered list. For
//! multi-attribute queries the paper postpones materialization: each
//! per-column query instead returns its qualifying *cachelines*
//! ([`CachelineSet`]), the sets are merge-joined, and only ids surviving the
//! intersection are checked for false positives. Both structures live here.

use std::ops::Range;

/// A sorted, duplicate-free list of qualifying row ids.
///
/// Sequential scan, zonemaps and imprints all naturally produce ids in
/// ascending order; the WAH bitmap path produces them via an id-aligned
/// result bitvector (paper §6.3), which is also ascending. The invariant is
/// enforced in debug builds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdList {
    ids: Vec<u64>,
}

impl IdList {
    /// Creates an empty list.
    pub fn new() -> Self {
        IdList { ids: Vec::new() }
    }

    /// Creates an empty list with capacity for `cap` ids.
    pub fn with_capacity(cap: usize) -> Self {
        IdList { ids: Vec::with_capacity(cap) }
    }

    /// Wraps an already-sorted vector of ids.
    ///
    /// # Panics
    /// Panics (in debug builds) if `ids` is not strictly ascending.
    pub fn from_sorted(ids: Vec<u64>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be strictly ascending");
        IdList { ids }
    }

    /// Appends an id; must be greater than the last one.
    #[inline]
    pub fn push(&mut self, id: u64) {
        debug_assert!(self.ids.last().is_none_or(|&last| last < id));
        self.ids.push(id);
    }

    /// Appends every id in `range` (end exclusive).
    #[inline]
    pub fn push_range(&mut self, range: Range<u64>) {
        debug_assert!(self.ids.last().is_none_or(|&last| last < range.start) || range.is_empty());
        self.ids.extend(range);
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ids as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.ids
    }

    /// Whether `id` is in the list (binary search).
    pub fn contains(&self, id: u64) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Merge-join intersection with another list.
    pub fn intersect(&self, other: &IdList) -> IdList {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        IdList { ids: out }
    }

    /// Merge union with another list.
    pub fn union(&self, other: &IdList) -> IdList {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        IdList { ids: out }
    }

    /// Ids in `self` but not in `other` (the delta-structure difference of
    /// §4.2: subtracting deleted rows from a base result).
    pub fn difference(&self, other: &IdList) -> IdList {
        let mut out = Vec::with_capacity(self.len());
        let mut j = 0;
        for &id in &self.ids {
            while j < other.ids.len() && other.ids[j] < id {
                j += 1;
            }
            if j >= other.ids.len() || other.ids[j] != id {
                out.push(id);
            }
        }
        IdList { ids: out }
    }

    /// Appends every id of `other`, shifted up by `offset`. The shifted ids
    /// must all be greater than the current last id — the segment-merge
    /// case, where per-segment results are local ids and `offset` is the
    /// segment's base row id.
    pub fn extend_offset(&mut self, other: &IdList, offset: u64) {
        debug_assert!(
            self.ids.last().is_none_or(|&last| {
                other.ids.first().is_none_or(|&first| last < first + offset)
            }),
            "offset segments must be appended in ascending order"
        );
        self.ids.reserve(other.len());
        self.ids.extend(other.ids.iter().map(|id| id + offset));
    }

    /// Concatenates per-segment id lists into one global list. Each part is
    /// `(segment base row id, local ids)`; parts must arrive in ascending
    /// base order and each local list must fit before the next base.
    pub fn concat_segments<I: IntoIterator<Item = (u64, IdList)>>(parts: I) -> IdList {
        let mut out = IdList::new();
        for (base, part) in parts {
            out.extend_offset(&part, base);
        }
        out
    }

    /// Consumes the list, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.ids
    }

    /// Iterator over the ids.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.ids.iter().copied()
    }
}

impl From<Vec<u64>> for IdList {
    fn from(mut ids: Vec<u64>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        IdList { ids }
    }
}

impl FromIterator<u64> for IdList {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        IdList::from(iter.into_iter().collect::<Vec<_>>())
    }
}

/// The set of cachelines an index deems *possibly* relevant to a query —
/// the late-materialization intermediate of paper §3.
///
/// Stored as sorted, coalesced `[start, end)` ranges of cacheline numbers,
/// which is compact when data is clustered (long qualifying runs) and still
/// cheap when it is not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CachelineSet {
    ranges: Vec<Range<u64>>,
}

impl CachelineSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CachelineSet { ranges: Vec::new() }
    }

    /// Adds cacheline `line`; coalesces with the previous range when
    /// adjacent. Lines must be added in ascending order.
    #[inline]
    pub fn push(&mut self, line: u64) {
        self.push_run(line, line + 1);
    }

    /// Adds the run of cachelines `[start, end)`, in ascending order.
    pub fn push_run(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        if let Some(last) = self.ranges.last_mut() {
            debug_assert!(last.end <= start, "runs must be added in ascending order");
            if last.end == start {
                last.end = end;
                return;
            }
        }
        self.ranges.push(start..end);
    }

    /// Number of distinct cachelines in the set.
    pub fn line_count(&self) -> u64 {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// Number of stored ranges (compactness measure).
    pub fn run_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no cacheline qualifies.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether cacheline `line` is in the set (binary search over runs).
    pub fn contains(&self, line: u64) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if r.end <= line {
                    std::cmp::Ordering::Less
                } else if r.start > line {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Iterator over the individual cacheline numbers.
    pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.ranges.iter().flat_map(|r| r.clone())
    }

    /// Iterator over the coalesced runs.
    pub fn runs(&self) -> impl Iterator<Item = Range<u64>> + '_ {
        self.ranges.iter().cloned()
    }

    /// Merge-join intersection of two candidate sets: the core of the
    /// multi-attribute conjunctive query plan ("the lists of cachelines are
    /// merge-joined", §3).
    pub fn intersect(&self, other: &CachelineSet) -> CachelineSet {
        let mut out = CachelineSet::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = &self.ranges[i];
            let b = &other.ranges[j];
            let start = a.start.max(b.start);
            let end = a.end.min(b.end);
            if start < end {
                out.push_run(start, end);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Union of two candidate sets.
    pub fn union(&self, other: &CachelineSet) -> CachelineSet {
        let mut out = CachelineSet::new();
        let (mut i, mut j) = (0, 0);
        let mut pending: Option<Range<u64>> = None;
        let add =
            |pending: &mut Option<Range<u64>>, r: Range<u64>, out: &mut CachelineSet| match pending
            {
                Some(p) if r.start <= p.end => p.end = p.end.max(r.end),
                Some(p) => {
                    out.push_run(p.start, p.end);
                    *pending = Some(r);
                }
                None => *pending = Some(r),
            };
        while i < self.ranges.len() || j < other.ranges.len() {
            let take_a = j >= other.ranges.len()
                || (i < self.ranges.len() && self.ranges[i].start <= other.ranges[j].start);
            if take_a {
                add(&mut pending, self.ranges[i].clone(), &mut out);
                i += 1;
            } else {
                add(&mut pending, other.ranges[j].clone(), &mut out);
                j += 1;
            }
        }
        if let Some(p) = pending {
            out.push_run(p.start, p.end);
        }
        out
    }

    /// Expands the candidate cachelines into the row-id ranges they cover,
    /// clamped to `column_len` rows, with `vpc` values per cacheline.
    pub fn to_id_ranges(&self, vpc: usize, column_len: usize) -> Vec<Range<u64>> {
        let vpc = vpc as u64;
        let n = column_len as u64;
        self.ranges
            .iter()
            .map(|r| (r.start * vpc).min(n)..(r.end * vpc).min(n))
            .filter(|r| !r.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idlist_push_and_ranges() {
        let mut l = IdList::new();
        l.push(3);
        l.push_range(5..8);
        assert_eq!(l.as_slice(), &[3, 5, 6, 7]);
        assert_eq!(l.len(), 4);
        assert!(l.contains(6));
        assert!(!l.contains(4));
    }

    #[test]
    fn idlist_intersect_merge_join() {
        let a = IdList::from_sorted(vec![1, 3, 5, 7, 9]);
        let b = IdList::from_sorted(vec![3, 4, 5, 9, 10]);
        assert_eq!(a.intersect(&b).as_slice(), &[3, 5, 9]);
        assert_eq!(b.intersect(&a).as_slice(), &[3, 5, 9]);
        assert!(a.intersect(&IdList::new()).is_empty());
    }

    #[test]
    fn idlist_union_and_difference() {
        let a = IdList::from_sorted(vec![1, 3, 5]);
        let b = IdList::from_sorted(vec![2, 3, 6]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 5, 6]);
        assert_eq!(a.difference(&b).as_slice(), &[1, 5]);
        assert_eq!(b.difference(&a).as_slice(), &[2, 6]);
        assert_eq!(a.difference(&IdList::new()).as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn idlist_from_unsorted_vec_sorts_and_dedups() {
        let l = IdList::from(vec![5, 1, 5, 3, 1]);
        assert_eq!(l.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn cachelineset_coalesces_adjacent() {
        let mut s = CachelineSet::new();
        s.push(0);
        s.push(1);
        s.push(2);
        s.push(10);
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.line_count(), 4);
        assert!(s.contains(1));
        assert!(s.contains(10));
        assert!(!s.contains(3));
        assert_eq!(s.lines().collect::<Vec<_>>(), vec![0, 1, 2, 10]);
    }

    #[test]
    fn cachelineset_intersect() {
        let mut a = CachelineSet::new();
        a.push_run(0, 10);
        a.push_run(20, 30);
        let mut b = CachelineSet::new();
        b.push_run(5, 25);
        let c = a.intersect(&b);
        assert_eq!(c.runs().collect::<Vec<_>>(), vec![5..10, 20..25]);
        assert!(a.intersect(&CachelineSet::new()).is_empty());
    }

    #[test]
    fn cachelineset_union_merges_overlaps() {
        let mut a = CachelineSet::new();
        a.push_run(0, 3);
        a.push_run(8, 10);
        let mut b = CachelineSet::new();
        b.push_run(2, 5);
        b.push_run(10, 12);
        let u = a.union(&b);
        assert_eq!(u.runs().collect::<Vec<_>>(), vec![0..5, 8..12]);
    }

    #[test]
    fn cachelineset_to_id_ranges_clamps_tail() {
        let mut s = CachelineSet::new();
        s.push_run(0, 1);
        s.push_run(2, 4);
        // vpc 16, column of 40 rows: line 2 covers ids 32..40 (clamped).
        let ranges = s.to_id_ranges(16, 40);
        assert_eq!(ranges, vec![0..16, 32..40]);
    }

    #[test]
    fn cachelineset_empty_run_ignored() {
        let mut s = CachelineSet::new();
        s.push_run(5, 5);
        assert!(s.is_empty());
    }
}
