//! Delta structures for updates (paper §4.2).
//!
//! "In place updates are never performed in columnar databases because of
//! the prohibitive cost they entail. Instead, a delta structure is used that
//! keeps track of the updates, and merges them at query time."
//!
//! [`DeltaStore`] holds three kinds of pending changes against a base
//! column:
//!
//! * **appends** — new rows with ids past the end of the base column (the
//!   common case, §4.1);
//! * **deletes** — a set of base-row ids to subtract;
//! * **updates** — positional overwrites `(id, new_value)` (the "positional
//!   update trees" reference, simplified to a sorted map).
//!
//! The merge contract used by the query layer: a base-index result is
//! *unioned* with qualifying appends, *differenced* with deletes, and
//! corrected for updated positions (an updated row must be re-checked
//! against the predicate using its new value; its imprint may be stale —
//! exactly the false-positive tolerance the paper exploits).

use std::collections::BTreeMap;

use crate::idlist::IdList;
use crate::types::Scalar;

/// Pending changes against a base column of `T`.
#[derive(Debug, Clone, Default)]
pub struct DeltaStore<T: Scalar> {
    /// Rows appended after the base column was indexed; the id of
    /// `appends[k]` is `base_len + k`.
    appends: Vec<T>,
    /// Deleted base-row ids, sorted.
    deletes: Vec<u64>,
    /// Positional overwrites of base rows.
    updates: BTreeMap<u64, T>,
    /// Length of the base column this delta applies to.
    base_len: u64,
}

impl<T: Scalar> DeltaStore<T> {
    /// Creates an empty delta for a base column of `base_len` rows.
    pub fn new(base_len: usize) -> Self {
        DeltaStore {
            appends: Vec::new(),
            deletes: Vec::new(),
            updates: BTreeMap::new(),
            base_len: base_len as u64,
        }
    }

    /// Length of the base column.
    pub fn base_len(&self) -> u64 {
        self.base_len
    }

    /// Logical row count: base + appends (deletes remain visible as holes
    /// in id space until merged, matching id stability requirements).
    pub fn logical_len(&self) -> u64 {
        self.base_len + self.appends.len() as u64
    }

    /// Number of pending changes of all kinds.
    pub fn pending(&self) -> usize {
        self.appends.len() + self.deletes.len() + self.updates.len()
    }

    /// Whether there are no pending changes.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Appends one new row; returns its id.
    pub fn append(&mut self, value: T) -> u64 {
        self.appends.push(value);
        self.base_len + self.appends.len() as u64 - 1
    }

    /// Appends a batch of rows; returns the id of the first.
    pub fn append_batch(&mut self, values: &[T]) -> u64 {
        let first = self.logical_len();
        self.appends.extend_from_slice(values);
        first
    }

    /// The appended rows, in append order.
    pub fn appends(&self) -> &[T] {
        &self.appends
    }

    /// Marks base row `id` deleted. Ids past the base column are rejected
    /// by debug assertion (delete an append by filtering it out instead).
    pub fn delete(&mut self, id: u64) {
        debug_assert!(id < self.base_len, "only base rows are deletable through the delta");
        if let Err(pos) = self.deletes.binary_search(&id) {
            self.deletes.insert(pos, id);
        }
        // A deleted row's pending update is moot.
        self.updates.remove(&id);
    }

    /// Whether base row `id` is deleted.
    pub fn is_deleted(&self, id: u64) -> bool {
        self.deletes.binary_search(&id).is_ok()
    }

    /// The deleted ids as a sorted list.
    pub fn deleted_ids(&self) -> IdList {
        IdList::from_sorted(self.deletes.clone())
    }

    /// Records an in-place overwrite of base row `id`.
    pub fn update(&mut self, id: u64, value: T) {
        debug_assert!(id < self.base_len, "only base rows are updatable through the delta");
        if !self.is_deleted(id) {
            self.updates.insert(id, value);
        }
    }

    /// The pending new value for base row `id`, if any.
    pub fn updated_value(&self, id: u64) -> Option<T> {
        self.updates.get(&id).copied()
    }

    /// Iterator over pending `(id, new_value)` overwrites, ascending by id.
    pub fn updates(&self) -> impl Iterator<Item = (u64, T)> + '_ {
        self.updates.iter().map(|(&id, &v)| (id, v))
    }

    /// The effective value of row `id` after the delta: updated value,
    /// appended value, or `base(id)`; `None` when deleted or out of range.
    pub fn effective_value(&self, id: u64, base: &[T]) -> Option<T> {
        if self.is_deleted(id) {
            return None;
        }
        if let Some(v) = self.updates.get(&id) {
            return Some(*v);
        }
        if id < self.base_len {
            return base.get(id as usize).copied();
        }
        self.appends.get((id - self.base_len) as usize).copied()
    }

    /// Merges a base-index result into the delta-aware final result:
    /// removes deleted ids, re-checks updated ids with `pred` on their new
    /// values, adds updated ids that *now* qualify, and appends qualifying
    /// new rows. `pred` is the same predicate the base result was built with.
    pub fn merge_result(&self, base_result: &IdList, pred: impl Fn(&T) -> bool) -> IdList {
        let mut out = Vec::with_capacity(base_result.len() + self.appends.len());
        // Walk the base result, dropping deletions and stale updates.
        for id in base_result.iter() {
            if self.is_deleted(id) {
                continue;
            }
            match self.updates.get(&id) {
                Some(v) => {
                    if pred(v) {
                        out.push(id);
                    }
                }
                None => out.push(id),
            }
        }
        // Updated rows that did not qualify before but do now.
        for (&id, v) in &self.updates {
            if pred(v) && !base_result.contains(id) {
                out.push(id);
            }
        }
        // Appended rows are scanned directly: by §4.1 appends would carry
        // their own imprints; at delta scale a scan is the honest cost.
        for (k, v) in self.appends.iter().enumerate() {
            if pred(v) {
                out.push(self.base_len + k as u64);
            }
        }
        out.sort_unstable();
        out.dedup();
        IdList::from_sorted(out)
    }

    /// Applies the delta to `base`, producing the consolidated column values
    /// (the periodic merge that resets the delta in a real system). Deleted
    /// rows are dropped, so ids are *renumbered* — callers must rebuild
    /// indexes afterwards, as the paper prescribes for saturated imprints.
    pub fn consolidate(&self, base: &[T]) -> Vec<T> {
        let mut out = Vec::with_capacity(base.len() + self.appends.len() - self.deletes.len());
        for (id, &v) in base.iter().enumerate() {
            let id = id as u64;
            if self.is_deleted(id) {
                continue;
            }
            out.push(self.updates.get(&id).copied().unwrap_or(v));
        }
        out.extend_from_slice(&self.appends);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<i32> {
        vec![10, 20, 30, 40, 50]
    }

    #[test]
    fn append_assigns_sequential_ids() {
        let mut d = DeltaStore::<i32>::new(5);
        assert_eq!(d.append(60), 5);
        assert_eq!(d.append(70), 6);
        assert_eq!(d.append_batch(&[80, 90]), 7);
        assert_eq!(d.logical_len(), 9);
        assert_eq!(d.appends(), &[60, 70, 80, 90]);
    }

    #[test]
    fn delete_and_is_deleted() {
        let mut d = DeltaStore::<i32>::new(5);
        d.delete(3);
        d.delete(1);
        d.delete(3); // idempotent
        assert!(d.is_deleted(1));
        assert!(d.is_deleted(3));
        assert!(!d.is_deleted(0));
        assert_eq!(d.deleted_ids().as_slice(), &[1, 3]);
    }

    #[test]
    fn update_then_delete_drops_update() {
        let mut d = DeltaStore::<i32>::new(5);
        d.update(2, 99);
        assert_eq!(d.updated_value(2), Some(99));
        d.delete(2);
        assert_eq!(d.updated_value(2), None);
        // Updating a deleted row is ignored.
        d.update(2, 7);
        assert_eq!(d.updated_value(2), None);
    }

    #[test]
    fn effective_value_priority() {
        let b = base();
        let mut d = DeltaStore::<i32>::new(b.len());
        d.update(0, 11);
        d.delete(1);
        d.append(60);
        assert_eq!(d.effective_value(0, &b), Some(11)); // updated
        assert_eq!(d.effective_value(1, &b), None); // deleted
        assert_eq!(d.effective_value(2, &b), Some(30)); // base
        assert_eq!(d.effective_value(5, &b), Some(60)); // append
        assert_eq!(d.effective_value(6, &b), None); // out of range
    }

    #[test]
    fn merge_result_full_flow() {
        // Base result of pred(v) = v >= 30 over [10,20,30,40,50]: ids 2,3,4.
        let pred = |v: &i32| *v >= 30;
        let base_result = IdList::from_sorted(vec![2, 3, 4]);
        let mut d = DeltaStore::<i32>::new(5);
        d.delete(3); // drop id 3
        d.update(4, 5); // id 4 no longer qualifies
        d.update(0, 35); // id 0 now qualifies
        d.append(99); // id 5 qualifies
        d.append(1); // id 6 does not
        let merged = d.merge_result(&base_result, pred);
        assert_eq!(merged.as_slice(), &[0, 2, 5]);
    }

    #[test]
    fn merge_result_no_changes_is_identity() {
        let d = DeltaStore::<i32>::new(5);
        let r = IdList::from_sorted(vec![1, 4]);
        assert_eq!(d.merge_result(&r, |v| *v > 0), r);
    }

    #[test]
    fn consolidate_applies_everything() {
        let b = base();
        let mut d = DeltaStore::<i32>::new(b.len());
        d.update(0, 11);
        d.delete(2);
        d.append(60);
        assert_eq!(d.consolidate(&b), vec![11, 20, 40, 50, 60]);
    }

    #[test]
    fn pending_counts() {
        let mut d = DeltaStore::<i32>::new(5);
        assert!(d.is_empty());
        d.append(1);
        d.delete(0);
        d.update(1, 2);
        assert_eq!(d.pending(), 3);
        assert!(!d.is_empty());
    }
}
