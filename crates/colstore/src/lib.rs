//! # colstore — a minimal columnar storage substrate
//!
//! This crate provides the storage layer that the
//! [column imprints](https://doi.org/10.1145/2463676.2465306) secondary
//! index (SIGMOD 2013) is built on. It models the essentials of a
//! MonetDB-style main-memory column store:
//!
//! * **Dense, cacheline-aligned columns** ([`Column`]): a column is a single
//!   dense array of fixed-width scalar values. Row ids are *not*
//!   materialized — they are derived from the position of a value in the
//!   array. Data is allocated on 64-byte boundaries ([`aligned::AlignedVec`])
//!   so that the "one imprint vector per cacheline" granularity of the index
//!   corresponds to real hardware cachelines.
//! * **Relations** ([`relation::Relation`]): a named bundle of equally-long
//!   columns with tuple reconstruction by id (late materialization).
//! * **Id lists** ([`idlist::IdList`], [`idlist::CachelineSet`]): sorted
//!   row-id result sets and candidate cacheline sets, with the merge-join
//!   style intersection used for multi-attribute conjunctive queries.
//! * **Delta structures** ([`delta::DeltaStore`]): pending
//!   inserts/deletes/in-place updates merged at query time, as columnar
//!   systems never update in place (paper §4.2).
//! * **Binary persistence** ([`storage`]): an explicit, checksummed
//!   little-endian page format for columns (and, in the `imprints` crate,
//!   for indexes), with no external serialization dependency.
//!
//! The crate is deliberately small: it implements exactly the facilities the
//! paper relies on, nothing more.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aligned;
pub mod column;
pub mod delta;
pub mod error;
pub mod idlist;
pub mod index;
pub mod predicate;
pub mod relation;
pub mod storage;
pub mod types;

pub use aligned::AlignedVec;
pub use column::Column;
pub use delta::DeltaStore;
pub use error::{Error, Result};
pub use idlist::{CachelineSet, IdList};
pub use index::{AccessStats, RangeIndex};
pub use predicate::{Bound, RangePredicate};
pub use relation::{Relation, Schema};
pub use types::{ColumnType, Scalar, Value};

/// The cacheline size, in bytes, assumed throughout the system.
///
/// The paper (§2.3) fixes this to the ubiquitous 64 bytes: "The size of the
/// cacheline is determined by the underlying hardware. In this work we assume
/// the commonly used size of 64 bytes." Every imprint vector covers exactly
/// one such cacheline worth of values.
pub const CACHELINE_BYTES: usize = 64;

/// Number of values of scalar type `T` that fit in one cacheline.
///
/// This is the `vpc` ("values per cacheline") constant of the paper's
/// Algorithms 1 and 3: 64 for 1-byte types, 32 for 2-byte, 16 for 4-byte and
/// 8 for 8-byte types.
pub const fn values_per_cacheline<T: Scalar>() -> usize {
    CACHELINE_BYTES / std::mem::size_of::<T>()
}

/// Number of cachelines needed to hold `len` values of type `T`.
///
/// The last cacheline may be partially filled; it still gets its own imprint
/// vector / zone.
pub const fn cacheline_count<T: Scalar>(len: usize) -> usize {
    len.div_ceil(values_per_cacheline::<T>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_per_cacheline_by_width() {
        assert_eq!(values_per_cacheline::<i8>(), 64);
        assert_eq!(values_per_cacheline::<u8>(), 64);
        assert_eq!(values_per_cacheline::<i16>(), 32);
        assert_eq!(values_per_cacheline::<u16>(), 32);
        assert_eq!(values_per_cacheline::<i32>(), 16);
        assert_eq!(values_per_cacheline::<u32>(), 16);
        assert_eq!(values_per_cacheline::<f32>(), 16);
        assert_eq!(values_per_cacheline::<i64>(), 8);
        assert_eq!(values_per_cacheline::<u64>(), 8);
        assert_eq!(values_per_cacheline::<f64>(), 8);
    }

    #[test]
    fn cacheline_count_rounds_up() {
        assert_eq!(cacheline_count::<i32>(0), 0);
        assert_eq!(cacheline_count::<i32>(1), 1);
        assert_eq!(cacheline_count::<i32>(16), 1);
        assert_eq!(cacheline_count::<i32>(17), 2);
        assert_eq!(cacheline_count::<f64>(8), 1);
        assert_eq!(cacheline_count::<f64>(9), 2);
        assert_eq!(cacheline_count::<u8>(64 * 10), 10);
    }
}
