//! Zonemap index (§2.1, §6).
//!
//! "Zonemaps are implemented as two arrays containing the min and max
//! values of each zone. The size of the zones is chosen to be equal to the
//! size that each imprint vector covers, i.e., the size of the cacheline."
//!
//! Query evaluation compares each zone's `[min, max]` with the predicate:
//! disjoint zones are skipped, fully-included zones emit all their ids
//! without value checks, overlapping zones are fetched and checked.
//!
//! The overlapping-zone value check routes through the shared refinement
//! kernels of [`imprints::simd`] — one compiled [`PredicateKernel`] per
//! query, SWAR or scalar per the ambient selection — and a predicate that
//! can match nothing skips every zone without probing.

use colstore::{AccessStats, Bound, Column, IdList, RangeIndex, RangePredicate, Scalar};
use imprints::simd::{self, PredicateKernel, RefineKernel};

/// Min/max-per-zone secondary index.
///
/// # Examples
///
/// ```
/// use colstore::{Column, RangeIndex, RangePredicate};
/// use baselines::ZoneMap;
///
/// let col: Column<i32> = (0..10_000).map(|i| i % 100).collect();
/// let zm = ZoneMap::build(&col);
/// let ids = zm.evaluate(&col, &RangePredicate::between(10, 20));
/// assert_eq!(ids.len(), 10_000 / 100 * 11);
/// ```
#[derive(Debug, Clone)]
pub struct ZoneMap<T: Scalar> {
    mins: Vec<T>,
    maxs: Vec<T>,
    rows: usize,
    values_per_zone: usize,
}

impl<T: Scalar> ZoneMap<T> {
    /// Builds a zonemap with cacheline-sized zones (the paper's choice).
    pub fn build(col: &Column<T>) -> Self {
        Self::build_with_zone(col, colstore::values_per_cacheline::<T>())
    }

    /// Builds a zonemap with `values_per_zone` values per zone.
    pub fn build_with_zone(col: &Column<T>, values_per_zone: usize) -> Self {
        assert!(values_per_zone > 0, "zone must hold at least one value");
        let n_zones = col.len().div_ceil(values_per_zone);
        let mut mins = Vec::with_capacity(n_zones);
        let mut maxs = Vec::with_capacity(n_zones);
        for zone in col.values().chunks(values_per_zone) {
            // Two comparisons per value, as the paper notes for the
            // construction cost.
            let mut min = zone[0];
            let mut max = zone[0];
            for &v in &zone[1..] {
                if v.lt_total(&min) {
                    min = v;
                }
                if max.lt_total(&v) {
                    max = v;
                }
            }
            mins.push(min);
            maxs.push(max);
        }
        ZoneMap { mins, maxs, rows: col.len(), values_per_zone }
    }

    /// Reassembles a zonemap from serialized parts, validating the
    /// geometry a file claims before trusting it (see
    /// [`crate::storage::read_zonemap`]).
    pub fn from_raw_parts(
        mins: Vec<T>,
        maxs: Vec<T>,
        rows: usize,
        values_per_zone: usize,
    ) -> std::result::Result<Self, String> {
        if values_per_zone == 0 {
            return Err("zone must hold at least one value".into());
        }
        if mins.len() != maxs.len() {
            return Err(format!("{} min bounds vs {} max bounds", mins.len(), maxs.len()));
        }
        if mins.len() != rows.div_ceil(values_per_zone) {
            return Err(format!(
                "{} zones cannot cover {rows} rows at {values_per_zone} values per zone",
                mins.len()
            ));
        }
        Ok(ZoneMap { mins, maxs, rows, values_per_zone })
    }

    /// Rows covered by this zonemap.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.mins.len()
    }

    /// Values covered by one zone.
    pub fn values_per_zone(&self) -> usize {
        self.values_per_zone
    }

    /// The `[min, max]` of zone `z`.
    pub fn zone_bounds(&self, z: usize) -> (T, T) {
        (self.mins[z], self.maxs[z])
    }

    /// Whether a zone `[zmin, zmax]` can contain a matching value.
    #[inline]
    fn overlaps(pred: &RangePredicate<T>, zmin: &T, zmax: &T) -> bool {
        let low_ok = match pred.low() {
            Bound::Unbounded => true,
            Bound::Inclusive(l) => l.le_total(zmax),
            Bound::Exclusive(l) => l.lt_total(zmax),
        };
        if !low_ok {
            return false;
        }
        match pred.high() {
            Bound::Unbounded => true,
            Bound::Inclusive(h) => zmin.le_total(h),
            Bound::Exclusive(h) => zmin.lt_total(h),
        }
    }

    /// Counts matching rows without materializing ids — the same zone
    /// walk as [`RangeIndex::evaluate_with_stats`], with fully-included
    /// zones contributing their cardinality directly and no id vector
    /// allocated.
    pub fn count_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (u64, AccessStats) {
        self.count_with_kernel(col, pred, simd::ambient_kernel())
    }

    /// [`ZoneMap::count_with_stats`] under an explicit refinement kernel
    /// (differential testing).
    pub fn count_with_kernel(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
        kernel: RefineKernel,
    ) -> (u64, AccessStats) {
        assert_eq!(col.len(), self.rows, "index does not cover this column");
        let mut stats = AccessStats::default();
        let kernel = PredicateKernel::with_kernel(pred, kernel);
        if kernel.is_empty() {
            stats.lines_skipped = self.mins.len() as u64;
            return (0, stats);
        }
        let mut total = 0u64;
        let values = col.values();
        let vpz = self.values_per_zone as u64;
        let rows = self.rows as u64;
        for z in 0..self.mins.len() {
            stats.index_probes += 1;
            let (zmin, zmax) = (&self.mins[z], &self.maxs[z]);
            if !Self::overlaps(pred, zmin, zmax) {
                stats.lines_skipped += 1;
                continue;
            }
            let start = z as u64 * vpz;
            let end = ((z as u64 + 1) * vpz).min(rows);
            if Self::fully_inside(pred, zmin, zmax) {
                total += end - start;
            } else {
                stats.lines_fetched += 1;
                total += kernel.count_matches(values, start..end, &mut stats.value_comparisons);
            }
        }
        (total, stats)
    }

    /// [`RangeIndex::evaluate_with_stats`] under an explicit refinement
    /// kernel (differential testing).
    pub fn evaluate_with_kernel(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
        kernel: RefineKernel,
    ) -> (IdList, AccessStats) {
        assert_eq!(col.len(), self.rows, "index does not cover this column");
        let mut stats = AccessStats::default();
        let kernel = PredicateKernel::with_kernel(pred, kernel);
        let mut res: Vec<u64> = Vec::new();
        // Satellite accounting fix: an impossible predicate examines no
        // zone and no value — every zone is "skipped", matching the
        // imprint evaluator's empty-mask early-out shape.
        if kernel.is_empty() {
            stats.lines_skipped = self.mins.len() as u64;
            return (IdList::from_sorted(res), stats);
        }
        let values = col.values();
        let vpz = self.values_per_zone as u64;
        let rows = self.rows as u64;
        for z in 0..self.mins.len() {
            stats.index_probes += 1;
            let (zmin, zmax) = (&self.mins[z], &self.maxs[z]);
            if !Self::overlaps(pred, zmin, zmax) {
                stats.lines_skipped += 1;
                continue;
            }
            let start = z as u64 * vpz;
            let end = ((z as u64 + 1) * vpz).min(rows);
            if Self::fully_inside(pred, zmin, zmax) {
                res.extend(start..end);
            } else {
                stats.lines_fetched += 1;
                kernel.append_matches(values, start..end, &mut res, &mut stats.value_comparisons);
            }
        }
        (IdList::from_sorted(res), stats)
    }

    /// Whether every value of a zone `[zmin, zmax]` matches.
    #[inline]
    fn fully_inside(pred: &RangePredicate<T>, zmin: &T, zmax: &T) -> bool {
        let low_ok = match pred.low() {
            Bound::Unbounded => true,
            Bound::Inclusive(l) => l.le_total(zmin),
            Bound::Exclusive(l) => l.lt_total(zmin),
        };
        if !low_ok {
            return false;
        }
        match pred.high() {
            Bound::Unbounded => true,
            Bound::Inclusive(h) => zmax.le_total(h),
            Bound::Exclusive(h) => zmax.lt_total(h),
        }
    }
}

impl<T: Scalar> colstore::index::BuildableIndex<T> for ZoneMap<T> {
    fn build_index(col: &Column<T>) -> Self {
        ZoneMap::build(col)
    }
}

impl<T: Scalar> RangeIndex<T> for ZoneMap<T> {
    fn name(&self) -> &'static str {
        "zonemap"
    }

    fn size_bytes(&self) -> usize {
        // Two value arrays, aligned with the zone numbering.
        2 * self.mins.len() * std::mem::size_of::<T>() + 2 * std::mem::size_of::<usize>()
    }

    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats) {
        self.evaluate_with_kernel(col, pred, simd::ambient_kernel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle<T: Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> Vec<u64> {
        col.values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn zones_are_cacheline_sized() {
        let col: Column<i32> = (0..1000).collect();
        let zm = ZoneMap::build(&col);
        assert_eq!(zm.values_per_zone(), 16);
        assert_eq!(zm.zone_count(), 63);
        assert_eq!(zm.zone_bounds(0), (0, 15));
        assert_eq!(zm.zone_bounds(62), (992, 999));
    }

    #[test]
    fn figure_1_zonemap() {
        // The example column of Figure 1, zones of 3 values.
        let col: Column<i32> = Column::from(vec![1, 8, 4, 1, 6, 2, 3, 7, 2, 4, 5, 6, 8, 7, 1]);
        let zm = ZoneMap::build_with_zone(&col, 3);
        assert_eq!(zm.zone_count(), 5);
        assert_eq!(zm.zone_bounds(0), (1, 8));
        assert_eq!(zm.zone_bounds(1), (1, 6));
        assert_eq!(zm.zone_bounds(2), (2, 7));
        assert_eq!(zm.zone_bounds(3), (4, 6));
        assert_eq!(zm.zone_bounds(4), (1, 8));
    }

    #[test]
    fn matches_oracle_on_many_predicates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let col: Column<i64> = (0..25_000).map(|_| rng.gen_range(-500..500)).collect();
        let zm = ZoneMap::build(&col);
        for _ in 0..25 {
            let a = rng.gen_range(-600..600);
            let b = rng.gen_range(-600..600);
            let pred = RangePredicate::between(a.min(b), a.max(b));
            assert_eq!(zm.evaluate(&col, &pred).as_slice(), oracle(&col, &pred));
        }
        for pred in [
            RangePredicate::all(),
            RangePredicate::less_than(0),
            RangePredicate::at_least(499),
            RangePredicate::between(10, 5),
        ] {
            assert_eq!(zm.evaluate(&col, &pred).as_slice(), oracle(&col, &pred));
        }
    }

    #[test]
    fn skips_disjoint_zones_on_clustered_data() {
        let col: Column<i32> = (0..64_000).map(|i| i / 100).collect();
        let zm = ZoneMap::build(&col);
        let (ids, stats) = zm.evaluate_with_stats(&col, &RangePredicate::between(100, 101));
        assert_eq!(ids.len(), 200);
        assert_eq!(stats.index_probes as usize, zm.zone_count());
        assert!(stats.lines_skipped > stats.index_probes * 9 / 10);
    }

    #[test]
    fn fully_inside_zones_avoid_comparisons() {
        let col: Column<i32> = (0..64_000).collect();
        let zm = ZoneMap::build(&col);
        let (ids, stats) = zm.evaluate_with_stats(&col, &RangePredicate::between(1000, 50_000));
        assert_eq!(ids.len(), 49_001);
        // Only the two border zones need value checks.
        assert!(stats.value_comparisons <= 2 * zm.values_per_zone() as u64);
    }

    #[test]
    fn skew_defeats_zonemaps() {
        // Every zone contains the domain min and max: zonemaps filter
        // nothing (the paper's §2.2 motivating pathology)...
        let col: Column<i32> = (0..16_000)
            .map(|i| match i % 16 {
                0 => 0,
                1 => 1000,
                _ => 500,
            })
            .collect();
        let zm = ZoneMap::build(&col);
        let (_, stats) = zm.evaluate_with_stats(&col, &RangePredicate::between(400, 600));
        assert_eq!(stats.lines_skipped, 0, "zonemap cannot skip any zone here");
        assert_eq!(stats.value_comparisons, 16_000);
    }

    #[test]
    fn count_agrees_with_evaluate_without_materializing() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        let col: Column<i64> = (0..20_000).map(|_| rng.gen_range(-500..500)).collect();
        let zm = ZoneMap::build(&col);
        for pred in [
            RangePredicate::between(-100, 100),
            RangePredicate::all(),
            RangePredicate::between(10, 5),
            RangePredicate::at_least(499),
        ] {
            let (ids, estats) = zm.evaluate_with_stats(&col, &pred);
            let (n, cstats) = zm.count_with_stats(&col, &pred);
            assert_eq!(n as usize, ids.len(), "{pred}");
            assert_eq!(estats, cstats, "count must do the same zone walk: {pred}");
        }
    }

    /// Satellite regression: an impossible predicate must not be billed a
    /// zone's worth of comparisons per overlapping-looking zone (the old
    /// walk fetched and "compared" zones an empty range can never match).
    #[test]
    fn empty_predicate_skips_all_zones_without_comparisons() {
        let col: Column<i32> = (0..10_000).collect();
        let zm = ZoneMap::build(&col);
        for kernel in [RefineKernel::Scalar, RefineKernel::Swar] {
            let (ids, stats) =
                zm.evaluate_with_kernel(&col, &RangePredicate::between(9, 3), kernel);
            assert!(ids.is_empty());
            assert_eq!(stats.value_comparisons, 0, "{kernel:?}");
            assert_eq!(stats.lines_fetched, 0, "{kernel:?}");
            assert_eq!(stats.lines_skipped as usize, zm.zone_count(), "{kernel:?}");
        }
    }

    /// Scalar and SWAR zone walks agree byte-for-byte on ids and stats.
    #[test]
    fn zonemap_kernels_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(29);
        let col: Column<u32> = (0..20_011).map(|_| rng.gen_range(0..5000)).collect();
        let zm = ZoneMap::build(&col);
        for _ in 0..20 {
            let a = rng.gen_range(0..5500u32);
            let b = rng.gen_range(0..5500u32);
            let pred = RangePredicate::between(a.min(b), a.max(b));
            let s = zm.evaluate_with_kernel(&col, &pred, RefineKernel::Scalar);
            let v = zm.evaluate_with_kernel(&col, &pred, RefineKernel::Swar);
            assert_eq!(s, v, "{pred}");
            let sc = zm.count_with_kernel(&col, &pred, RefineKernel::Scalar);
            let vc = zm.count_with_kernel(&col, &pred, RefineKernel::Swar);
            assert_eq!(sc, vc, "{pred}");
            assert_eq!(sc.0 as usize, s.0.len(), "{pred}");
        }
    }

    #[test]
    fn float_zones_with_nan() {
        let mut vals: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        vals[500] = f64::NAN;
        let col: Column<f64> = Column::from(vals);
        let zm = ZoneMap::build(&col);
        for pred in [
            RangePredicate::between(100.0, 600.0),
            RangePredicate::at_least(1500.0),
            RangePredicate::all(),
        ] {
            assert_eq!(zm.evaluate(&col, &pred).as_slice(), oracle(&col, &pred));
        }
    }

    #[test]
    fn empty_column() {
        let col: Column<u8> = Column::new();
        let zm = ZoneMap::build(&col);
        assert_eq!(zm.zone_count(), 0);
        assert!(zm.evaluate(&col, &RangePredicate::all()).is_empty());
    }

    #[test]
    fn size_accounting() {
        let col: Column<i64> = (0..8000).collect();
        let zm = ZoneMap::build(&col);
        // 1000 zones × 2 arrays × 8 bytes.
        assert_eq!(zm.size_bytes(), 1000 * 2 * 8 + 16);
        assert_eq!(zm.name(), "zonemap");
    }
}
