//! Word-Aligned Hybrid (WAH) compressed bitvectors.
//!
//! The state-of-the-art bitmap compression the paper compares against
//! (Wu, Otoo & Shoshani 2002), "with word size 32 bits, as described in
//! \[23\]". A WAH vector is a sequence of 32-bit words:
//!
//! ```text
//! literal word:  0 b30 b29 … b0        — 31 verbatim bits
//! fill word:     1 f  c29 … c0         — c groups of 31 identical bits f
//! ```
//!
//! Compression is decided greedily: whenever 31 accumulated bits are all
//! equal they extend (or start) a fill word, otherwise they are emitted as
//! a literal.

use std::fmt;

/// Number of payload bits per WAH word.
pub const GROUP_BITS: u64 = 31;
const LITERAL_MASK: u32 = (1 << 31) - 1; // low 31 bits
const FILL_FLAG: u32 = 1 << 31;
const FILL_VALUE: u32 = 1 << 30;
const MAX_FILL_GROUPS: u32 = (1 << 30) - 1;

/// A decoded piece of a WAH vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// `groups × 31` identical bits of value `bit`.
    Fill {
        /// The repeated bit.
        bit: bool,
        /// Number of 31-bit groups.
        groups: u32,
    },
    /// One 31-bit literal (LSB = first bit); for the trailing partial
    /// group, only the low `bits` are meaningful.
    Literal {
        /// The payload (low 31 bits).
        word: u32,
        /// Valid bit count (31 except possibly for the trailing group).
        bits: u32,
    },
}

/// An append-only WAH-compressed bitvector.
///
/// # Examples
///
/// ```
/// use baselines::WahVector;
///
/// let mut v = WahVector::new();
/// v.append_run(false, 1000);
/// v.push(true);
/// v.append_run(false, 999);
/// assert_eq!(v.len(), 2000);
/// assert_eq!(v.ones().collect::<Vec<_>>(), vec![1000]);
/// assert!(v.size_bytes() < 2000 / 8); // compressed below the plain bitmap
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct WahVector {
    words: Vec<u32>,
    /// Bits accumulated toward the next 31-bit group (low `active_bits`).
    active: u32,
    active_bits: u32,
    len: u64,
}

impl WahVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        WahVector::default()
    }

    /// Total bits appended.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no bit has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (full words plus the partial group, plus
    /// the length field — what the index size metric charges).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4 + if self.active_bits > 0 { 4 } else { 0 } + 8
    }

    /// Number of encoded 32-bit words (excluding the active partial group).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Appends a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.active |= (bit as u32) << self.active_bits;
        self.active_bits += 1;
        self.len += 1;
        if self.active_bits == GROUP_BITS as u32 {
            self.flush_group();
        }
    }

    /// Appends `count` copies of `bit`; fill runs are encoded in O(1) per
    /// 2³⁰ groups rather than per bit.
    pub fn append_run(&mut self, bit: bool, count: u64) {
        let mut remaining = count;
        // Top up the current partial group bit-by-bit.
        while self.active_bits != 0 && remaining > 0 {
            self.push(bit);
            remaining -= 1;
        }
        // Whole groups go straight to fill words.
        let groups = remaining / GROUP_BITS;
        if groups > 0 {
            self.push_fill(bit, groups);
            self.len += groups * GROUP_BITS;
            remaining -= groups * GROUP_BITS;
        }
        for _ in 0..remaining {
            self.push(bit);
        }
    }

    /// Appends zeros until the vector is `len` bits long (no-op when
    /// already there).
    ///
    /// # Panics
    /// Panics if the vector is already longer than `len`.
    pub fn pad_to(&mut self, len: u64) {
        assert!(self.len <= len, "cannot shrink a WAH vector");
        self.append_run(false, len - self.len);
    }

    fn flush_group(&mut self) {
        debug_assert_eq!(self.active_bits, GROUP_BITS as u32);
        let g = self.active & LITERAL_MASK;
        self.active = 0;
        self.active_bits = 0;
        if g == 0 {
            self.push_fill(false, 1);
        } else if g == LITERAL_MASK {
            self.push_fill(true, 1);
        } else {
            self.words.push(g);
        }
    }

    fn push_fill(&mut self, bit: bool, mut groups: u64) {
        debug_assert_eq!(self.active_bits, 0);
        // Extend the trailing fill word of the same polarity if possible.
        if let Some(last) = self.words.last_mut() {
            if *last & FILL_FLAG != 0 && (*last & FILL_VALUE != 0) == bit {
                let have = *last & MAX_FILL_GROUPS;
                let room = (MAX_FILL_GROUPS - have) as u64;
                let take = room.min(groups);
                *last += take as u32;
                groups -= take;
            }
        }
        while groups > 0 {
            let take = groups.min(MAX_FILL_GROUPS as u64);
            self.words.push(FILL_FLAG | (if bit { FILL_VALUE } else { 0 }) | take as u32);
            groups -= take;
        }
    }

    /// Iterates over the decoded segments, in order.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        let tail = (self.active_bits > 0)
            .then_some(Segment::Literal { word: self.active, bits: self.active_bits });
        self.words
            .iter()
            .map(|&w| {
                if w & FILL_FLAG != 0 {
                    Segment::Fill { bit: w & FILL_VALUE != 0, groups: w & MAX_FILL_GROUPS }
                } else {
                    Segment::Literal { word: w, bits: GROUP_BITS as u32 }
                }
            })
            .chain(tail)
    }

    /// Iterates over the positions of the set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = u64> + '_ {
        let mut pos = 0u64;
        self.segments().flat_map(move |seg| {
            let start = pos;
            match seg {
                Segment::Fill { bit, groups } => {
                    let n = groups as u64 * GROUP_BITS;
                    pos += n;
                    SegmentOnes::Fill { next: start, end: if bit { start + n } else { start } }
                }
                Segment::Literal { word, bits } => {
                    pos += bits as u64;
                    SegmentOnes::Literal { word, base: start }
                }
            }
        })
    }

    /// Total set bits.
    pub fn count_ones(&self) -> u64 {
        self.segments()
            .map(|seg| match seg {
                Segment::Fill { bit: true, groups } => groups as u64 * GROUP_BITS,
                Segment::Fill { bit: false, .. } => 0,
                Segment::Literal { word, .. } => word.count_ones() as u64,
            })
            .sum()
    }

    /// Emits one 31-bit group (or the trailing partial) onto a vector that
    /// is group-aligned (`active_bits == 0`), re-deriving fills greedily.
    fn emit_group(&mut self, word: u32, bits: u32) {
        debug_assert_eq!(self.active_bits, 0);
        debug_assert!(bits >= 1 && bits <= GROUP_BITS as u32);
        let valid = if bits == GROUP_BITS as u32 { LITERAL_MASK } else { (1 << bits) - 1 };
        let w = word & valid;
        if bits == GROUP_BITS as u32 {
            if w == 0 {
                self.push_fill(false, 1);
            } else if w == LITERAL_MASK {
                self.push_fill(true, 1);
            } else {
                self.words.push(w);
            }
            self.len += GROUP_BITS;
        } else {
            self.active = w;
            self.active_bits = bits;
            self.len += bits as u64;
        }
    }

    /// Combines two equal-length vectors segment-by-segment with a bitwise
    /// word operation, never materializing either side: fill×fill runs
    /// collapse in O(1) per run pair, literals combine word-wise, and the
    /// output re-compresses greedily. The work done is proportional to
    /// `self.word_count() + other.word_count()`, not to the bit length —
    /// this is the run-wise AND/OR of compressed-bitmap query processing.
    fn combine(&self, other: &Self, op: impl Fn(u32, u32) -> u32) -> WahVector {
        assert_eq!(self.len, other.len, "combine requires equal-length vectors");
        let expand = |bit: bool| if bit { LITERAL_MASK } else { 0 };
        let mut out = WahVector::new();
        let mut ia = self.segments();
        let mut ib = other.segments();
        let (mut cur_a, mut cur_b) = (ia.next(), ib.next());
        while let (Some(sa), Some(sb)) = (cur_a, cur_b) {
            match (sa, sb) {
                (Segment::Fill { bit: ba, groups: ga }, Segment::Fill { bit: bb, groups: gb }) => {
                    let n = ga.min(gb);
                    out.push_fill(op(expand(ba), expand(bb)) & LITERAL_MASK != 0, n as u64);
                    out.len += n as u64 * GROUP_BITS;
                    cur_a = if ga > n {
                        Some(Segment::Fill { bit: ba, groups: ga - n })
                    } else {
                        ia.next()
                    };
                    cur_b = if gb > n {
                        Some(Segment::Fill { bit: bb, groups: gb - n })
                    } else {
                        ib.next()
                    };
                }
                (Segment::Fill { bit: ba, groups: ga }, Segment::Literal { word, bits }) => {
                    debug_assert_eq!(bits, GROUP_BITS as u32, "fill cannot align with a partial");
                    out.emit_group(op(expand(ba), word), bits);
                    cur_a = if ga > 1 {
                        Some(Segment::Fill { bit: ba, groups: ga - 1 })
                    } else {
                        ia.next()
                    };
                    cur_b = ib.next();
                }
                (Segment::Literal { word, bits }, Segment::Fill { bit: bb, groups: gb }) => {
                    debug_assert_eq!(bits, GROUP_BITS as u32, "fill cannot align with a partial");
                    out.emit_group(op(word, expand(bb)), bits);
                    cur_a = ia.next();
                    cur_b = if gb > 1 {
                        Some(Segment::Fill { bit: bb, groups: gb - 1 })
                    } else {
                        ib.next()
                    };
                }
                (
                    Segment::Literal { word: wa, bits: xa },
                    Segment::Literal { word: wb, bits: xb },
                ) => {
                    debug_assert_eq!(xa, xb, "equal-length vectors have aligned partials");
                    out.emit_group(op(wa, wb), xa);
                    cur_a = ia.next();
                    cur_b = ib.next();
                }
            }
        }
        debug_assert!(cur_a.is_none() && cur_b.is_none());
        debug_assert_eq!(out.len, self.len);
        out
    }

    /// Bitwise AND with `other` run-wise, without decompressing either
    /// vector — the conjunction primitive of the WAH access path.
    ///
    /// # Panics
    /// Panics if the vectors differ in bit length.
    pub fn and(&self, other: &Self) -> WahVector {
        self.combine(other, |a, b| a & b)
    }

    /// Bitwise OR with `other` run-wise, without decompression — unions
    /// the per-bin vectors of an IN-list / OR group.
    ///
    /// # Panics
    /// Panics if the vectors differ in bit length.
    pub fn or(&self, other: &Self) -> WahVector {
        self.combine(other, |a, b| a | b)
    }

    /// ORs the set bits into an uncompressed `u64`-word bitvector (the
    /// id-aligned result vector of §6.3). Returns the number of WAH words
    /// examined (the index-probe count of Figure 11).
    pub fn or_into(&self, dst: &mut [u64]) -> u64 {
        let mut probes = 0u64;
        let mut pos = 0u64;
        for seg in self.segments() {
            probes += 1;
            match seg {
                Segment::Fill { bit, groups } => {
                    let n = groups as u64 * GROUP_BITS;
                    if bit {
                        set_range(dst, pos, pos + n);
                    }
                    pos += n;
                }
                Segment::Literal { mut word, bits } => {
                    while word != 0 {
                        let b = word.trailing_zeros() as u64;
                        let p = pos + b;
                        dst[(p / 64) as usize] |= 1 << (p % 64);
                        word &= word - 1;
                    }
                    pos += bits as u64;
                }
            }
        }
        probes
    }
}

enum SegmentOnes {
    Fill { next: u64, end: u64 },
    Literal { word: u32, base: u64 },
}

impl Iterator for SegmentOnes {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        match self {
            SegmentOnes::Fill { next, end } => {
                if next < end {
                    let p = *next;
                    *next += 1;
                    Some(p)
                } else {
                    None
                }
            }
            SegmentOnes::Literal { word, base } => {
                if *word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros();
                    *word &= *word - 1;
                    Some(*base + b as u64)
                }
            }
        }
    }
}

fn set_range(dst: &mut [u64], start: u64, end: u64) {
    if start >= end {
        return;
    }
    let (first_word, first_bit) = ((start / 64) as usize, start % 64);
    let (last_word, last_bit) = (((end - 1) / 64) as usize, (end - 1) % 64);
    if first_word == last_word {
        let mask = (u64::MAX >> (63 - last_bit)) & (u64::MAX << first_bit);
        dst[first_word] |= mask;
        return;
    }
    dst[first_word] |= u64::MAX << first_bit;
    for w in &mut dst[first_word + 1..last_word] {
        *w = u64::MAX;
    }
    dst[last_word] |= u64::MAX >> (63 - last_bit);
}

impl fmt::Debug for WahVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WahVector {{ len: {}, words: {}, ones: {} }}",
            self.len,
            self.words.len(),
            self.count_ones()
        )
    }
}

impl FromIterator<bool> for WahVector {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = WahVector::new();
        for b in iter {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bools(v: &WahVector) -> Vec<bool> {
        let mut out = vec![false; v.len() as usize];
        for p in v.ones() {
            out[p as usize] = true;
        }
        out
    }

    #[test]
    fn empty_vector() {
        let v = WahVector::new();
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.ones().count(), 0);
        assert_eq!(v.word_count(), 0);
    }

    #[test]
    fn push_roundtrip_short() {
        let bits = [true, false, false, true, true];
        let v: WahVector = bits.iter().copied().collect();
        assert_eq!(v.len(), 5);
        assert_eq!(to_bools(&v), bits);
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![0, 3, 4]);
    }

    #[test]
    fn full_literal_group() {
        // 31 mixed bits -> exactly one literal word.
        let bits: Vec<bool> = (0..31).map(|i| i % 3 == 0).collect();
        let v: WahVector = bits.iter().copied().collect();
        assert_eq!(v.word_count(), 1);
        assert_eq!(to_bools(&v), bits);
    }

    #[test]
    fn zero_run_compresses_to_one_fill() {
        let mut v = WahVector::new();
        v.append_run(false, 31 * 1000);
        assert_eq!(v.word_count(), 1, "one fill word for 1000 groups");
        assert_eq!(v.len(), 31_000);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn ones_run_compresses() {
        let mut v = WahVector::new();
        v.append_run(true, 31 * 50);
        assert_eq!(v.word_count(), 1);
        assert_eq!(v.count_ones(), 31 * 50);
        assert_eq!(v.ones().count() as u64, 31 * 50);
    }

    #[test]
    fn adjacent_fills_merge() {
        let mut v = WahVector::new();
        v.append_run(false, 31);
        v.append_run(false, 62);
        assert_eq!(v.word_count(), 1);
        v.append_run(true, 31);
        assert_eq!(v.word_count(), 2);
    }

    #[test]
    fn implicit_fill_from_pushed_bits() {
        // 62 pushed zeros become a 2-group zero fill, not two literals.
        let mut v = WahVector::new();
        for _ in 0..62 {
            v.push(false);
        }
        assert_eq!(v.word_count(), 1);
        assert!(matches!(v.segments().next(), Some(Segment::Fill { bit: false, groups: 2 })));
    }

    #[test]
    fn sparse_ones_roundtrip() {
        let mut v = WahVector::new();
        let positions = [0u64, 100, 101, 3100, 99_999];
        let mut len = 0;
        for &p in &positions {
            v.append_run(false, p - len);
            v.push(true);
            len = p + 1;
        }
        assert_eq!(v.ones().collect::<Vec<_>>(), positions);
        assert_eq!(v.count_ones(), 5);
        assert!(v.size_bytes() < 200, "sparse vector must compress well");
    }

    #[test]
    fn pad_to_extends_with_zeros() {
        let mut v = WahVector::new();
        v.push(true);
        v.pad_to(1000);
        assert_eq!(v.len(), 1000);
        assert_eq!(v.count_ones(), 1);
        v.pad_to(1000); // no-op
        assert_eq!(v.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn pad_to_rejects_shrink() {
        let mut v = WahVector::new();
        v.append_run(false, 10);
        v.pad_to(5);
    }

    #[test]
    fn randomized_roundtrip_against_vec_bool() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let mut reference = Vec::new();
            let mut v = WahVector::new();
            for _ in 0..rng.gen_range(1..50) {
                if rng.gen_bool(0.5) {
                    let bit = rng.gen_bool(0.3);
                    let run = rng.gen_range(1..200);
                    v.append_run(bit, run);
                    reference.extend(std::iter::repeat_n(bit, run as usize));
                } else {
                    let bit = rng.gen_bool(0.5);
                    v.push(bit);
                    reference.push(bit);
                }
            }
            assert_eq!(v.len() as usize, reference.len());
            assert_eq!(to_bools(&v), reference);
            assert_eq!(v.count_ones() as usize, reference.iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn or_into_matches_ones() {
        let mut v = WahVector::new();
        v.append_run(false, 40);
        v.append_run(true, 100);
        v.push(false);
        v.push(true);
        let n = v.len();
        let mut dst = vec![0u64; n.div_ceil(64) as usize];
        let probes = v.or_into(&mut dst);
        assert!(probes >= 1);
        let from_or: Vec<u64> =
            (0..n).filter(|&p| dst[(p / 64) as usize] & (1 << (p % 64)) != 0).collect();
        assert_eq!(from_or, v.ones().collect::<Vec<_>>());
    }

    #[test]
    fn set_range_word_boundaries() {
        let mut dst = vec![0u64; 3];
        set_range(&mut dst, 10, 10); // empty
        assert_eq!(dst, vec![0, 0, 0]);
        set_range(&mut dst, 0, 64);
        assert_eq!(dst[0], u64::MAX);
        let mut dst = vec![0u64; 3];
        set_range(&mut dst, 63, 65);
        assert_eq!(dst[0], 1 << 63);
        assert_eq!(dst[1], 1);
        let mut dst = vec![0u64; 3];
        set_range(&mut dst, 10, 150);
        let total: u32 = dst.iter().map(|w| w.count_ones()).sum();
        assert_eq!(total, 140);
    }

    #[test]
    fn and_or_combine_runs_without_decompression() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..40 {
            // Build two equal-length vectors from different run structures
            // (including lengths that leave a ragged partial group).
            let len = rng.gen_range(1..5000u64);
            let make = |rng: &mut StdRng| {
                let mut v = WahVector::new();
                while v.len() < len {
                    let bit = rng.gen_bool(0.4);
                    let run = rng.gen_range(1..400u64).min(len - v.len());
                    if rng.gen_bool(0.7) {
                        v.append_run(bit, run);
                    } else {
                        for _ in 0..run {
                            v.push(rng.gen_bool(0.5));
                        }
                    }
                }
                v
            };
            let a = make(&mut rng);
            let b = make(&mut rng);
            let (ba, bb) = (to_bools(&a), to_bools(&b));
            let anded = a.and(&b);
            let ored = a.or(&b);
            assert_eq!(anded.len(), len);
            assert_eq!(ored.len(), len);
            let expect_and: Vec<bool> = ba.iter().zip(&bb).map(|(x, y)| *x && *y).collect();
            let expect_or: Vec<bool> = ba.iter().zip(&bb).map(|(x, y)| *x || *y).collect();
            assert_eq!(to_bools(&anded), expect_and);
            assert_eq!(to_bools(&ored), expect_or);
        }
        // Fill×fill stays O(runs): two long anti-aligned fills AND to one
        // fill word, not thousands of literals.
        let mut x = WahVector::new();
        x.append_run(true, 31 * 10_000);
        let mut y = WahVector::new();
        y.append_run(false, 31 * 4_000);
        y.append_run(true, 31 * 6_000);
        let z = x.and(&y);
        assert_eq!(z.count_ones(), 31 * 6_000);
        assert!(z.word_count() <= 2, "AND of fills must stay compressed");
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn combine_rejects_length_mismatch() {
        let mut a = WahVector::new();
        a.append_run(false, 10);
        let mut b = WahVector::new();
        b.append_run(false, 11);
        let _ = a.and(&b);
    }

    #[test]
    fn giant_fill_splits_words() {
        let mut v = WahVector::new();
        let groups = (MAX_FILL_GROUPS as u64) + 5;
        v.append_run(false, groups * GROUP_BITS);
        assert_eq!(v.word_count(), 2);
        assert_eq!(v.len(), groups * GROUP_BITS);
    }

    #[test]
    fn alternating_bits_do_not_compress() {
        let v: WahVector = (0..31 * 100).map(|i| i % 2 == 0).collect();
        assert_eq!(v.word_count(), 100, "alternating bits are all literals");
        assert_eq!(v.count_ones(), 31 * 100 / 2); // ones at even positions of 3100 bits
    }
}
