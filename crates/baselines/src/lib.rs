//! # baselines — comparator secondary indexes
//!
//! The three evaluation baselines of the paper (§6), "coded with the same
//! rigidity" as the imprints index and answering the identical
//! [`colstore::RangePredicate`] contract through
//! [`colstore::RangeIndex`]:
//!
//! * [`ZoneMap`] — min/max per cacheline-sized zone;
//! * [`WahBitmap`] — bit-binned bitmap index, one WAH-compressed bitvector
//!   per histogram bin, sharing the *same* binning as imprints;
//! * [`SeqScan`] — the sequential-scan pseudo-index used as the absolute
//!   baseline.
//!
//! [`wah`] contains the Word-Aligned Hybrid compressed bitvector itself
//! (Wu, Otoo & Shoshani, "Compressing Bitmap Indexes for Faster Search
//! Operations"), implemented with 32-bit words as in the paper's §6 setup.

#![warn(missing_docs)]

pub mod bitmap;
pub mod scan;
pub mod wah;
pub mod zonemap;

pub use bitmap::WahBitmap;
pub use scan::SeqScan;
pub use wah::WahVector;
pub use zonemap::ZoneMap;
