//! # baselines — comparator secondary indexes
//!
//! The three evaluation baselines of the paper (§6), "coded with the same
//! rigidity" as the imprints index and answering the identical
//! [`colstore::RangePredicate`] contract through
//! [`colstore::RangeIndex`]:
//!
//! * [`ZoneMap`] — min/max per cacheline-sized zone;
//! * [`WahBitmap`] — bit-binned bitmap index, one WAH-compressed bitvector
//!   per histogram bin, sharing the *same* binning as imprints;
//! * [`SeqScan`] — the sequential-scan pseudo-index used as the absolute
//!   baseline.
//!
//! [`wah`] contains the Word-Aligned Hybrid compressed bitvector itself
//! (Wu, Otoo & Shoshani, "Compressing Bitmap Indexes for Faster Search
//! Operations"), implemented with 32-bit words as in the paper's §6 setup.

#![warn(missing_docs)]

pub mod bitmap;
pub mod scan;
pub mod storage;
pub mod wah;
pub mod zonemap;

pub use bitmap::WahBitmap;
pub use scan::SeqScan;
pub use wah::WahVector;
pub use zonemap::ZoneMap;

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::index::BuildableIndex;
    use colstore::{Column, IdList, RangePredicate};

    /// The pluggable-access-path contract: any `BuildableIndex` can be
    /// instantiated from a column alone and must answer identically.
    fn build_and_eval<I: BuildableIndex<i32>>(col: &Column<i32>) -> IdList {
        I::build_index(col).evaluate(col, &RangePredicate::between(100, 200))
    }

    #[test]
    fn every_access_path_builds_generically_and_agrees() {
        let col: Column<i32> = (0..10_000).map(|i| (i * 7) % 1000).collect();
        let scan = build_and_eval::<SeqScan>(&col);
        assert_eq!(build_and_eval::<ZoneMap<i32>>(&col), scan);
        assert_eq!(build_and_eval::<WahBitmap<i32>>(&col), scan);
        assert_eq!(build_and_eval::<imprints::ColumnImprints<i32>>(&col), scan);
        assert!(!scan.is_empty());
    }
}
