//! Binary persistence of a zonemap index.
//!
//! Sealed segments persist the zonemap next to the imprint so a restart
//! can recover the full adaptive path set without re-scanning the column.
//! The format reuses the checksummed [`colstore::storage`] primitives:
//!
//! ```text
//! magic "CIMZ" | version u16 | type tag u8 | pad u8
//! | values_per_zone u32 | rows u64
//! | n_zones u64 | mins: n × scalar | maxs: n × scalar
//! | crc32
//! ```

use std::io::{Read, Write};

use colstore::storage::{Reader, Writer};
use colstore::{ColumnType, Error, Result, Scalar};

use crate::ZoneMap;

/// Magic bytes identifying a zonemap file.
pub const ZONE_MAGIC: [u8; 4] = *b"CIMZ";
/// Current zonemap file format version.
pub const ZONE_VERSION: u16 = 1;

/// Serializes `zm` to `out`.
pub fn write_zonemap<T: Scalar, W: Write>(zm: &ZoneMap<T>, out: &mut W) -> Result<()> {
    let mut w = Writer::new();
    w.put_u16(ZONE_VERSION);
    w.put_u8(T::TYPE.tag());
    w.put_u8(0);
    w.put_u32(zm.values_per_zone() as u32);
    w.put_u64(zm.rows() as u64);
    w.put_u64(zm.zone_count() as u64);
    for z in 0..zm.zone_count() {
        w.put_scalar(zm.zone_bounds(z).0);
    }
    for z in 0..zm.zone_count() {
        w.put_scalar(zm.zone_bounds(z).1);
    }
    w.finish(&ZONE_MAGIC, out)
}

/// Deserializes a zonemap written by [`write_zonemap`]; validates magic,
/// checksum, scalar type and zone geometry before allocating.
pub fn read_zonemap<T: Scalar, R: Read>(input: &mut R) -> Result<ZoneMap<T>> {
    let mut r = Reader::open(&ZONE_MAGIC, input)?;
    let version = r.get_u16()?;
    if version != ZONE_VERSION {
        return Err(Error::Corrupt(format!("unsupported zonemap version {version}")));
    }
    let tag = r.get_u8()?;
    let ty = ColumnType::from_tag(tag)
        .ok_or_else(|| Error::Corrupt(format!("unknown type tag {tag}")))?;
    if ty != T::TYPE {
        return Err(Error::Mismatch(format!("file maps {ty}, requested {}", T::TYPE)));
    }
    let _pad = r.get_u8()?;
    let values_per_zone = r.get_u32()? as usize;
    let rows = r.get_u64()? as usize;
    // Each zone contributes a min and a max bound at the scalar's width.
    let n_zones = r.get_count(2 * std::mem::size_of::<T>(), "zone")?;
    let mut mins = Vec::with_capacity(n_zones);
    for _ in 0..n_zones {
        mins.push(r.get_scalar::<T>()?);
    }
    let mut maxs = Vec::with_capacity(n_zones);
    for _ in 0..n_zones {
        maxs.push(r.get_scalar::<T>()?);
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    ZoneMap::from_raw_parts(mins, maxs, rows, values_per_zone).map_err(Error::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use colstore::{Column, RangeIndex, RangePredicate};

    fn roundtrip<T: Scalar>(zm: &ZoneMap<T>) -> ZoneMap<T> {
        let mut bytes = Vec::new();
        write_zonemap(zm, &mut bytes).unwrap();
        read_zonemap::<T, _>(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let col: Column<i32> = (0..12_345).map(|i| (i * 13) % 777).collect();
        let zm = ZoneMap::build(&col);
        let back = roundtrip(&zm);
        assert_eq!(back.rows(), zm.rows());
        assert_eq!(back.zone_count(), zm.zone_count());
        assert_eq!(back.values_per_zone(), zm.values_per_zone());
        for z in 0..zm.zone_count() {
            assert_eq!(back.zone_bounds(z), zm.zone_bounds(z));
        }
        let pred = RangePredicate::between(10, 100);
        assert_eq!(back.evaluate(&col, &pred), zm.evaluate(&col, &pred));
    }

    #[test]
    fn roundtrip_partial_tail_and_empty() {
        let col: Column<u16> = (0..999).map(|i| i as u16).collect();
        let back = roundtrip(&ZoneMap::build(&col));
        assert_eq!(back.rows(), 999);

        let empty: Column<f32> = Column::new();
        let back = roundtrip(&ZoneMap::build(&empty));
        assert_eq!(back.zone_count(), 0);
    }

    #[test]
    fn wrong_type_rejected() {
        let col: Column<i32> = (0..100).collect();
        let mut bytes = Vec::new();
        write_zonemap(&ZoneMap::build(&col), &mut bytes).unwrap();
        let err = read_zonemap::<u64, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Mismatch(_)));
    }

    #[test]
    fn geometry_lies_rejected() {
        // A CRC-valid file whose zone count disagrees with rows/vpz.
        let mut w = Writer::new();
        w.put_u16(ZONE_VERSION);
        w.put_u8(ColumnType::I32.tag());
        w.put_u8(0);
        w.put_u32(16);
        w.put_u64(1000); // 1000 rows at 16/zone needs 63 zones, not 1
        w.put_u64(1);
        w.put_scalar(0i32);
        w.put_scalar(9i32);
        let mut bytes = Vec::new();
        w.finish(&ZONE_MAGIC, &mut bytes).unwrap();
        let err = read_zonemap::<i32, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err}");
    }

    #[test]
    fn crafted_zone_count_rejected_before_allocating() {
        let mut w = Writer::new();
        w.put_u16(ZONE_VERSION);
        w.put_u8(ColumnType::I32.tag());
        w.put_u8(0);
        w.put_u32(16);
        w.put_u64(1000);
        w.put_u64(u64::MAX);
        let mut bytes = Vec::new();
        w.finish(&ZONE_MAGIC, &mut bytes).unwrap();
        let err = read_zonemap::<i32, _>(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err}");
    }
}
