//! Bit-binned bitmap index with WAH compression (§6).
//!
//! "For the bit-binning approach of bitmaps, the bins used are identical to
//! those used for the imprints index … Using this binning scheme, each
//! value of the column sets the appropriate bit on a vector large enough to
//! hold all records. To compress the resulting bit-vectors we apply WAH
//! compression with word size 32 bits."
//!
//! Query evaluation (§6.3): the bins overlapping the query are decoded; the
//! result is merged through "another bit-vector aligned with the id's" so
//! no final merge/sort is needed, then ids are materialized in order. Edge
//! bins (not fully inside the range) additionally check each candidate
//! value for false positives.

use colstore::{AccessStats, Column, IdList, RangeIndex, RangePredicate, Scalar};
use imprints::binning::Binning;
use imprints::builder::BuildOptions;
use imprints::simd::{self, PredicateKernel, RefineKernel};
use imprints::Bound;

use crate::wah::WahVector;

/// A bit-binned, WAH-compressed bitmap secondary index.
///
/// # Examples
///
/// ```
/// use colstore::{Column, RangeIndex, RangePredicate};
/// use baselines::WahBitmap;
///
/// let col: Column<i32> = (0..10_000).map(|i| (i * 13) % 500).collect();
/// let bm = WahBitmap::build(&col);
/// let ids = bm.evaluate(&col, &RangePredicate::between(100, 200));
/// assert!(ids.iter().all(|id| (100..=200).contains(&col.get(id as usize).unwrap())));
/// ```
#[derive(Debug, Clone)]
pub struct WahBitmap<T: Scalar> {
    binning: Binning<T>,
    vectors: Vec<WahVector>,
    rows: usize,
}

impl<T: Scalar> WahBitmap<T> {
    /// Builds the bitmap with the same default sampling/binning as the
    /// imprints index.
    pub fn build(col: &Column<T>) -> Self {
        let opts = BuildOptions::default();
        let binning = Binning::from_column(col, opts.sample_size, opts.seed);
        Self::build_with_binning(col, binning)
    }

    /// Builds the bitmap over an explicit binning (the evaluation shares
    /// one binning between imprints and WAH for fairness).
    pub fn build_with_binning(col: &Column<T>, binning: Binning<T>) -> Self {
        let bins = binning.bins();
        let mut vectors = vec![WahVector::new(); bins];
        for (row, &v) in col.values().iter().enumerate() {
            let bin = binning.bin_of(v);
            let vec = &mut vectors[bin];
            // Deferred zero runs keep construction O(n): each row appends
            // one run + one bit to exactly one vector.
            vec.pad_to(row as u64);
            vec.push(true);
        }
        for vec in &mut vectors {
            vec.pad_to(col.len() as u64);
        }
        WahBitmap { binning, vectors, rows: col.len() }
    }

    /// The shared histogram binning.
    pub fn binning(&self) -> &Binning<T> {
        &self.binning
    }

    /// Number of bin vectors.
    pub fn bin_count(&self) -> usize {
        self.vectors.len()
    }

    /// The WAH vector of bin `i`.
    pub fn bin_vector(&self, i: usize) -> &WahVector {
        &self.vectors[i]
    }

    /// Compressed words across all bins (compressibility metric).
    pub fn total_words(&self) -> usize {
        self.vectors.iter().map(WahVector::word_count).sum()
    }

    /// The compressed candidate superset for a union of range terms: the
    /// run-wise OR ([`WahVector::or`]) of every bin vector overlapping any
    /// term, never decompressed. Edge bins are included, so set bits are
    /// *candidates* — they still need the false-positive value check. A
    /// conjunction plan ANDs these vectors across predicates
    /// ([`WahVector::and`]) before touching any data. Returns `None` when
    /// no bin overlaps (no row can match); bumps `probes` by the
    /// compressed words examined.
    pub fn candidate_vector(
        &self,
        terms: &[RangePredicate<T>],
        probes: &mut u64,
    ) -> Option<WahVector> {
        let masks = imprints::masks::make_masks_union(&self.binning, terms);
        let mut acc: Option<WahVector> = None;
        for (bin, vec) in self.vectors.iter().enumerate() {
            if masks.mask & (1u64 << bin) == 0 {
                continue;
            }
            *probes += vec.word_count() as u64 + 1;
            acc = Some(match acc {
                None => vec.clone(),
                Some(a) => a.or(vec),
            });
        }
        acc
    }

    /// Counts matching rows without materializing ids — the same bin walk
    /// and the same [`AccessStats`] as
    /// [`RangeIndex::evaluate_with_stats`], but the id-aligned result
    /// bitvector is popcounted instead of being turned into an id list.
    pub fn count_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (u64, AccessStats) {
        self.count_with_kernel(col, pred, simd::ambient_kernel())
    }

    /// [`WahBitmap::count_with_stats`] under an explicit refinement kernel
    /// (differential testing).
    pub fn count_with_kernel(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
        kernel: RefineKernel,
    ) -> (u64, AccessStats) {
        let (result, stats) = self.result_bitvector(col, pred, kernel);
        (result.iter().map(|w| w.count_ones() as u64).sum(), stats)
    }

    /// [`RangeIndex::evaluate_with_stats`] under an explicit refinement
    /// kernel (differential testing).
    pub fn evaluate_with_kernel(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
        kernel: RefineKernel,
    ) -> (IdList, AccessStats) {
        let (result, stats) = self.result_bitvector(col, pred, kernel);
        // Materialize ids in ascending order from the result bitvector.
        let mut res = Vec::new();
        for (w, &word) in result.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let b = word.trailing_zeros() as u64;
                res.push(w as u64 * 64 + b);
                word &= word - 1;
            }
        }
        (IdList::from_sorted(res), stats)
    }

    /// The shared evaluation kernel (§6.3): decodes the bins overlapping
    /// `pred` into one id-aligned result bitvector, value-checking edge
    /// bins. Edge-bin candidates are scattered ids (set bits of a WAH
    /// vector), so they take the refinement kernel's per-value check.
    fn result_bitvector(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
        kernel: RefineKernel,
    ) -> (Vec<u64>, AccessStats) {
        assert_eq!(col.len(), self.rows, "index does not cover this column");
        let mut stats = AccessStats::default();
        let kernel = PredicateKernel::with_kernel(pred, kernel);
        if kernel.is_empty() || self.rows == 0 {
            // Both callers only iterate the words, so skip the allocation.
            return (Vec::new(), stats);
        }
        let mut result = vec![0u64; self.rows.div_ceil(64)];
        let bins = self.binning.bins();
        let bin_lo = match pred.low() {
            Bound::Unbounded => 0,
            Bound::Inclusive(l) | Bound::Exclusive(l) => self.binning.bin_of(*l),
        };
        let bin_hi = match pred.high() {
            Bound::Unbounded => bins - 1,
            Bound::Inclusive(h) | Bound::Exclusive(h) => self.binning.bin_of(*h),
        };
        let values = col.values();
        for bin in bin_lo..=bin_hi {
            let vec = &self.vectors[bin];
            if self.binning.bin_fully_inside(bin, pred.low(), pred.high()) {
                // Inner bin: every set bit qualifies.
                stats.index_probes += vec.or_into(&mut result);
            } else {
                // Edge bin: candidates need the false-positive check.
                stats.index_probes += vec.word_count() as u64 + 1;
                for id in vec.ones() {
                    stats.value_comparisons += 1;
                    if kernel.matches(&values[id as usize]) {
                        result[(id / 64) as usize] |= 1 << (id % 64);
                    }
                }
            }
        }
        (result, stats)
    }
}

impl<T: Scalar> colstore::index::BuildableIndex<T> for WahBitmap<T> {
    fn build_index(col: &Column<T>) -> Self {
        WahBitmap::build(col)
    }
}

impl<T: Scalar> RangeIndex<T> for WahBitmap<T> {
    fn name(&self) -> &'static str {
        "wah"
    }

    fn size_bytes(&self) -> usize {
        self.vectors.iter().map(WahVector::size_bytes).sum::<usize>()
            + std::mem::size_of::<T>() * imprints::MAX_BINS
            + std::mem::size_of::<usize>()
    }

    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats) {
        self.evaluate_with_kernel(col, pred, simd::ambient_kernel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle<T: Scalar>(col: &Column<T>, pred: &RangePredicate<T>) -> Vec<u64> {
        col.values()
            .iter()
            .enumerate()
            .filter(|(_, v)| pred.matches(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    #[test]
    fn each_row_sets_exactly_one_bin() {
        let col: Column<i32> = (0..5000).map(|i| i % 77).collect();
        let bm = WahBitmap::build(&col);
        let total: u64 = (0..bm.bin_count()).map(|i| bm.bin_vector(i).count_ones()).sum();
        assert_eq!(total, 5000);
        for i in 0..bm.bin_count() {
            assert_eq!(bm.bin_vector(i).len(), 5000);
        }
    }

    #[test]
    fn matches_oracle_many_predicates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        let col: Column<i64> = (0..20_000).map(|_| rng.gen_range(0..3000)).collect();
        let bm = WahBitmap::build(&col);
        for _ in 0..25 {
            let a = rng.gen_range(-100..3100);
            let b = rng.gen_range(-100..3100);
            let pred = RangePredicate::between(a.min(b), a.max(b));
            assert_eq!(bm.evaluate(&col, &pred).as_slice(), oracle(&col, &pred), "{pred}");
        }
        for pred in [
            RangePredicate::all(),
            RangePredicate::less_than(500),
            RangePredicate::at_least(2999),
            RangePredicate::equals(1234),
            RangePredicate::between(7, 3),
        ] {
            assert_eq!(bm.evaluate(&col, &pred).as_slice(), oracle(&col, &pred), "{pred}");
        }
    }

    #[test]
    fn float_bitmap_with_specials() {
        let mut vals: Vec<f64> = (0..4000).map(|i| (i as f64).sqrt()).collect();
        vals[7] = f64::NAN;
        vals[8] = f64::NEG_INFINITY;
        let col: Column<f64> = Column::from(vals);
        let bm = WahBitmap::build(&col);
        for pred in [
            RangePredicate::between(10.0, 30.0),
            RangePredicate::less_than(1.0),
            RangePredicate::all(),
        ] {
            assert_eq!(bm.evaluate(&col, &pred).as_slice(), oracle(&col, &pred));
        }
    }

    #[test]
    fn low_cardinality_compresses_well() {
        // Two distinct values in long runs: WAH at its best.
        let col: Column<u8> = (0..100_000).map(|i| (i / 50_000) as u8).collect();
        let bm = WahBitmap::build(&col);
        assert!(
            bm.size_bytes() < 2000,
            "two-value clustered column should compress to almost nothing, got {}",
            bm.size_bytes()
        );
    }

    #[test]
    fn random_data_defeats_wah() {
        // Uniform random doubles: literals everywhere, ~64 bits per value
        // across the bin vectors (the paper's §6.2 WAH pathology).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let col: Column<f64> = (0..50_000).map(|_| rng.gen::<f64>()).collect();
        let bm = WahBitmap::build(&col);
        let column_bytes = col.data_bytes();
        assert!(
            bm.size_bytes() > column_bytes / 4,
            "uniform data should make WAH large: {} vs column {}",
            bm.size_bytes(),
            column_bytes
        );
    }

    #[test]
    fn inner_bins_need_no_comparisons() {
        let col: Column<i32> = (0..50_000).map(|i| i % 1000).collect();
        let bm = WahBitmap::build(&col);
        // A range spanning the full domain: everything inner.
        let (ids, stats) = bm.evaluate_with_stats(&col, &RangePredicate::all());
        assert_eq!(ids.len(), 50_000);
        assert_eq!(stats.value_comparisons, 0);
    }

    #[test]
    fn shares_binning_with_imprints() {
        let col: Column<i32> = (0..30_000).map(|i| (i * 7) % 900).collect();
        let idx = imprints::ColumnImprints::build(&col);
        let bm = WahBitmap::build_with_binning(&col, idx.binning().clone());
        assert_eq!(bm.binning().borders(), idx.binning().borders());
        let pred = RangePredicate::between(100, 200);
        assert_eq!(bm.evaluate(&col, &pred), idx.evaluate(&col, &pred));
    }

    #[test]
    fn empty_column() {
        let col: Column<i16> = Column::new();
        let bm = WahBitmap::build(&col);
        assert!(bm.evaluate(&col, &RangePredicate::all()).is_empty());
    }

    #[test]
    fn candidate_vector_covers_all_matches_and_ands_runwise() {
        let col: Column<i32> = (0..20_000).map(|i| (i * 13) % 640).collect();
        let other: Column<i32> = (0..20_000).map(|i| (i * 7) % 640).collect();
        let bm = WahBitmap::build(&col);
        let bm2 = WahBitmap::build_with_binning(&other, bm.binning().clone());
        let pa = RangePredicate::between(100, 160);
        let pb = RangePredicate::between(300, 360);
        let mut probes = 0u64;
        let ca = bm.candidate_vector(&[pa], &mut probes).unwrap();
        let cb = bm2.candidate_vector(&[pb], &mut probes).unwrap();
        assert!(probes > 0);
        // Candidates are supersets of the true matches.
        let in_vec = |v: &WahVector, id: u64| v.ones().any(|p| p == id);
        for id in oracle(&col, &pa) {
            assert!(in_vec(&ca, id), "match {id} lost from candidates");
        }
        // The run-wise AND is a superset of the conjunction's matches and
        // a subset of both sides.
        let joint = ca.and(&cb);
        let joint_set: std::collections::HashSet<u64> = joint.ones().collect();
        for id in 0..col.len() as u64 {
            let truth =
                pa.matches(&col.values()[id as usize]) && pb.matches(&other.values()[id as usize]);
            if truth {
                assert!(joint_set.contains(&id), "conjunction match {id} lost");
            }
        }
        for &id in &joint_set {
            assert!(in_vec(&ca, id) && in_vec(&cb, id));
        }
        // A union of terms covers both terms' matches; an impossible set
        // yields no candidates.
        let mut p2 = 0u64;
        let union = bm.candidate_vector(&[pa, pb], &mut p2).unwrap();
        for id in oracle(&col, &pa).into_iter().chain(oracle(&col, &pb)) {
            assert!(in_vec(&union, id));
        }
        assert!(bm.candidate_vector(&[RangePredicate::between(9, 3)], &mut p2).is_none());
    }

    #[test]
    fn probes_exceed_zonemap_style_probes() {
        // WAH probes count decoded words across all relevant bins: for a
        // mid-selectivity query this is far more than one probe per line.
        let col: Column<i32> = (0..64_000).map(|i| (i * 31) % 4096).collect();
        let bm = WahBitmap::build(&col);
        let (_, stats) = bm.evaluate_with_stats(&col, &RangePredicate::between(1000, 3000));
        let lines = colstore::cacheline_count::<i32>(col.len()) as u64;
        assert!(
            stats.index_probes > lines,
            "WAH probes {} should exceed the {} cachelines",
            stats.index_probes,
            lines
        );
    }
}
