//! Sequential scan baseline (§6).
//!
//! The absolute reference point of the evaluation: check every value,
//! materialize every qualifying id. Zero index storage, zero index probes,
//! one comparison per row. Modern optimizers fall back to this plan for
//! low-selectivity predicates — exactly the crossover Figures 8–10 chart.

use colstore::{AccessStats, Column, IdList, RangeIndex, RangePredicate, Scalar};

/// The sequential-scan pseudo-index.
///
/// # Examples
///
/// ```
/// use colstore::{Column, RangeIndex, RangePredicate};
/// use baselines::SeqScan;
///
/// let col: Column<i32> = (0..100).collect();
/// let ids = SeqScan::new(&col).evaluate(&col, &RangePredicate::less_than(3));
/// assert_eq!(ids.as_slice(), &[0, 1, 2]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SeqScan {
    rows: usize,
}

impl SeqScan {
    /// Creates the scan "index" for a column (records only the row count,
    /// used for the coverage assertion).
    pub fn new<T: Scalar>(col: &Column<T>) -> Self {
        SeqScan { rows: col.len() }
    }

    /// Counts matching rows without materializing ids, reporting exactly
    /// the [`AccessStats`] of [`RangeIndex::evaluate_with_stats`] — the
    /// count and evaluate arms of an adaptive engine must be
    /// indistinguishable to probe/comparison accounting.
    pub fn count_with_stats<T: Scalar>(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (u64, AccessStats) {
        assert_eq!(col.len(), self.rows, "scan bound to a different column");
        let stats = AccessStats {
            value_comparisons: col.len() as u64,
            lines_fetched: col.cacheline_count() as u64,
            ..AccessStats::default()
        };
        (col.values().iter().filter(|v| pred.matches(v)).count() as u64, stats)
    }
}

impl<T: Scalar> colstore::index::BuildableIndex<T> for SeqScan {
    fn build_index(col: &Column<T>) -> Self {
        SeqScan::new(col)
    }
}

impl<T: Scalar> RangeIndex<T> for SeqScan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats) {
        assert_eq!(col.len(), self.rows, "scan bound to a different column");
        let stats = AccessStats {
            value_comparisons: col.len() as u64,
            lines_fetched: col.cacheline_count() as u64,
            ..AccessStats::default()
        };
        let mut res = Vec::new();
        for (id, v) in col.values().iter().enumerate() {
            if pred.matches(v) {
                res.push(id as u64);
            }
        }
        (IdList::from_sorted(res), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_everything() {
        let col: Column<i32> = (0..1000).map(|i| i % 10).collect();
        let scan = SeqScan::new(&col);
        let (ids, stats) = scan.evaluate_with_stats(&col, &RangePredicate::equals(3));
        assert_eq!(ids.len(), 100);
        assert_eq!(stats.value_comparisons, 1000);
        assert_eq!(stats.index_probes, 0);
        assert_eq!(<SeqScan as RangeIndex<i32>>::size_bytes(&scan), 0);
    }

    #[test]
    fn scan_empty_predicate() {
        let col: Column<f32> = (0..100).map(|i| i as f32).collect();
        let scan = SeqScan::new(&col);
        assert!(scan.evaluate(&col, &RangePredicate::between(5.0, 1.0)).is_empty());
    }

    #[test]
    fn scan_name() {
        let col: Column<u8> = Column::new();
        let scan = SeqScan::new(&col);
        assert_eq!(<SeqScan as RangeIndex<u8>>::name(&scan), "scan");
    }
}
