//! Sequential scan baseline (§6).
//!
//! The absolute reference point of the evaluation: check every value,
//! materialize every qualifying id. Zero index storage, zero index probes,
//! one comparison per row. Modern optimizers fall back to this plan for
//! low-selectivity predicates — exactly the crossover Figures 8–10 chart.
//!
//! The full-column value check routes through the shared refinement
//! kernels of [`imprints::simd`]: one compiled [`PredicateKernel`] per
//! scan, weeding either by the `u64`-word SWAR kernel or the scalar
//! oracle loop. A predicate that can match nothing examines no data and
//! reports zero comparisons/fetches.

use colstore::{AccessStats, Column, IdList, RangeIndex, RangePredicate, Scalar};
use imprints::simd::{self, PredicateKernel, RefineKernel};

/// The sequential-scan pseudo-index.
///
/// # Examples
///
/// ```
/// use colstore::{Column, RangeIndex, RangePredicate};
/// use baselines::SeqScan;
///
/// let col: Column<i32> = (0..100).collect();
/// let ids = SeqScan::new(&col).evaluate(&col, &RangePredicate::less_than(3));
/// assert_eq!(ids.as_slice(), &[0, 1, 2]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SeqScan {
    rows: usize,
}

impl SeqScan {
    /// Creates the scan "index" for a column (records only the row count,
    /// used for the coverage assertion).
    pub fn new<T: Scalar>(col: &Column<T>) -> Self {
        SeqScan { rows: col.len() }
    }

    /// Counts matching rows without materializing ids, reporting exactly
    /// the [`AccessStats`] of [`RangeIndex::evaluate_with_stats`] — the
    /// count and evaluate arms of an adaptive engine must be
    /// indistinguishable to probe/comparison accounting.
    pub fn count_with_stats<T: Scalar>(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (u64, AccessStats) {
        self.count_with_kernel(col, pred, simd::ambient_kernel())
    }

    /// [`SeqScan::count_with_stats`] under an explicit refinement kernel
    /// (differential testing).
    pub fn count_with_kernel<T: Scalar>(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
        kernel: RefineKernel,
    ) -> (u64, AccessStats) {
        assert_eq!(col.len(), self.rows, "scan bound to a different column");
        let kernel = PredicateKernel::with_kernel(pred, kernel);
        let mut stats = AccessStats::default();
        let n =
            kernel.count_matches(col.values(), 0..col.len() as u64, &mut stats.value_comparisons);
        if stats.value_comparisons > 0 {
            stats.lines_fetched = col.cacheline_count() as u64;
        }
        (n, stats)
    }

    /// [`RangeIndex::evaluate_with_stats`] under an explicit refinement
    /// kernel (differential testing).
    pub fn evaluate_with_kernel<T: Scalar>(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
        kernel: RefineKernel,
    ) -> (IdList, AccessStats) {
        assert_eq!(col.len(), self.rows, "scan bound to a different column");
        let kernel = PredicateKernel::with_kernel(pred, kernel);
        let mut stats = AccessStats::default();
        let mut res = Vec::new();
        kernel.append_matches(
            col.values(),
            0..col.len() as u64,
            &mut res,
            &mut stats.value_comparisons,
        );
        if stats.value_comparisons > 0 {
            stats.lines_fetched = col.cacheline_count() as u64;
        }
        (IdList::from_sorted(res), stats)
    }
}

impl<T: Scalar> colstore::index::BuildableIndex<T> for SeqScan {
    fn build_index(col: &Column<T>) -> Self {
        SeqScan::new(col)
    }
}

impl<T: Scalar> RangeIndex<T> for SeqScan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn evaluate_with_stats(
        &self,
        col: &Column<T>,
        pred: &RangePredicate<T>,
    ) -> (IdList, AccessStats) {
        self.evaluate_with_kernel(col, pred, simd::ambient_kernel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_everything() {
        let col: Column<i32> = (0..1000).map(|i| i % 10).collect();
        let scan = SeqScan::new(&col);
        let (ids, stats) = scan.evaluate_with_stats(&col, &RangePredicate::equals(3));
        assert_eq!(ids.len(), 100);
        assert_eq!(stats.value_comparisons, 1000);
        assert_eq!(stats.index_probes, 0);
        assert_eq!(<SeqScan as RangeIndex<i32>>::size_bytes(&scan), 0);
    }

    #[test]
    fn scan_empty_predicate() {
        let col: Column<f32> = (0..100).map(|i| i as f32).collect();
        let scan = SeqScan::new(&col);
        assert!(scan.evaluate(&col, &RangePredicate::between(5.0, 1.0)).is_empty());
    }

    /// Satellite regression: a predicate that can match nothing examines
    /// no values, so the scan bills zero comparisons and zero fetched
    /// lines instead of a full column's worth of phantom work.
    #[test]
    fn scan_empty_predicate_reports_zero_comparisons() {
        let col: Column<i64> = (0..1000).collect();
        let scan = SeqScan::new(&col);
        for kernel in [RefineKernel::Scalar, RefineKernel::Swar] {
            let (ids, stats) =
                scan.evaluate_with_kernel(&col, &RangePredicate::between(5, 1), kernel);
            assert!(ids.is_empty());
            assert_eq!(stats, AccessStats::default(), "{kernel:?}");
            let (n, cstats) = scan.count_with_kernel(&col, &RangePredicate::between(5, 1), kernel);
            assert_eq!((n, cstats), (0, AccessStats::default()), "{kernel:?}");
        }
    }

    /// Scalar and SWAR scans agree byte-for-byte on ids and statistics.
    #[test]
    fn scan_kernels_agree() {
        let col: Column<i16> = (0..5003).map(|i| (i % 300) as i16 - 150).collect();
        let scan = SeqScan::new(&col);
        for pred in [
            RangePredicate::between(-20, 20),
            RangePredicate::equals(0),
            RangePredicate::all(),
            RangePredicate::less_than(i16::MIN + 1),
        ] {
            let s = scan.evaluate_with_kernel(&col, &pred, RefineKernel::Scalar);
            let v = scan.evaluate_with_kernel(&col, &pred, RefineKernel::Swar);
            assert_eq!(s, v, "{pred}");
            let sc = scan.count_with_kernel(&col, &pred, RefineKernel::Scalar);
            let vc = scan.count_with_kernel(&col, &pred, RefineKernel::Swar);
            assert_eq!(sc, vc, "{pred}");
            assert_eq!(sc.0 as usize, s.0.len(), "{pred}");
        }
    }

    #[test]
    fn scan_name() {
        let col: Column<u8> = Column::new();
        let scan = SeqScan::new(&col);
        assert_eq!(<SeqScan as RangeIndex<u8>>::name(&scan), "scan");
    }
}
