//! Criterion micro-benchmarks: index construction (Figure 5, bottom row).
//!
//! The paper's ranking to reproduce: zonemap fastest (2 comparisons per
//! value), imprints in between (a `get_bin` search per value), WAH slowest
//! (bit bookkeeping per value across the binned vectors). Plus the §7
//! multi-core extension: parallel vs serial imprint construction.

use baselines::{WahBitmap, ZoneMap};
use colstore::Column;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imprints::builder::BuildOptions;
use imprints::{parallel, ColumnImprints};

const ROWS: usize = 1 << 20;

fn clustered_column() -> Column<i32> {
    (0..ROWS as i32).map(|i| i / 64).collect()
}

fn random_column() -> Column<i32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    (0..ROWS).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.sample_size(10);
    for (data_name, col) in [("clustered", clustered_column()), ("random", random_column())] {
        g.bench_with_input(BenchmarkId::new("imprints", data_name), &col, |b, col| {
            b.iter(|| ColumnImprints::build(col))
        });
        g.bench_with_input(BenchmarkId::new("zonemap", data_name), &col, |b, col| {
            b.iter(|| ZoneMap::build(col))
        });
        g.bench_with_input(BenchmarkId::new("wah", data_name), &col, |b, col| {
            b.iter(|| WahBitmap::build(col))
        });
    }
    g.finish();
}

fn bench_parallel_build(c: &mut Criterion) {
    let col = random_column();
    let mut g = c.benchmark_group("parallel_build");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| parallel::build_parallel(&col, BuildOptions::default(), t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_construction, bench_parallel_build);
criterion_main!(benches);
