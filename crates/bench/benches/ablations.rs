//! Criterion micro-benchmarks: the design-choice ablations of DESIGN.md §7.
//!
//! 1. `get_bin`: unrolled branch-parallel binary search vs the portable
//!    `partition_point` (§2.5 claims ~3× for the unrolled form in C).
//! 2. Imprint block granularity: 64 B cachelines vs 128/256/512 B blocks.
//! 3. The `innermask` fast path on vs off.
//! 4. Row-wise RLE compression: `Compressor` vs storing raw vectors.

use colstore::{Column, RangeIndex, RangePredicate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imprints::builder::{BuildOptions, Compressor};
use imprints::{query, Binning, ColumnImprints};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_get_bin(c: &mut Criterion) {
    let sample: Vec<i64> = (0..100_000).map(|i| i * 7).collect();
    let binning = Binning::from_sorted_sample(&sample);
    let mut rng = StdRng::seed_from_u64(3);
    let probes: Vec<i64> = (0..4096).map(|_| rng.gen_range(-1000..800_000)).collect();
    let mut g = c.benchmark_group("get_bin");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("unrolled", |b| {
        b.iter(|| probes.iter().map(|&v| binning.bin_of(v)).sum::<usize>())
    });
    g.bench_function("portable", |b| {
        b.iter(|| probes.iter().map(|&v| binning.bin_of_portable(v)).sum::<usize>())
    });
    g.finish();
}

fn bench_block_granularity(c: &mut Criterion) {
    let rows = 1 << 20;
    let col: Column<i64> = (0..rows as i64).map(|i| i / 16).collect();
    let pred = RangePredicate::between(1000, 4000);
    let mut g = c.benchmark_group("block_bytes");
    g.throughput(Throughput::Elements(rows as u64));
    g.sample_size(20);
    for block in [64usize, 128, 256, 512] {
        let idx = ColumnImprints::build_with(
            &col,
            BuildOptions { block_bytes: block, ..Default::default() },
        );
        g.bench_with_input(BenchmarkId::new("build", block), &block, |b, &blk| {
            b.iter(|| {
                ColumnImprints::build_with(
                    &col,
                    BuildOptions { block_bytes: blk, ..Default::default() },
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("query", block), &idx, |b, idx| {
            b.iter(|| idx.evaluate(&col, &pred))
        });
    }
    g.finish();
}

fn bench_innermask(c: &mut Criterion) {
    let rows = 1 << 20;
    let col: Column<i64> = (0..rows as i64).collect();
    let idx = ColumnImprints::build(&col);
    // A wide range: most qualifying lines are fully covered, so the fast
    // path saves one comparison per emitted value.
    let pred = RangePredicate::between(rows as i64 / 10, rows as i64 * 9 / 10);
    let mut g = c.benchmark_group("innermask");
    g.throughput(Throughput::Elements(rows as u64));
    g.sample_size(20);
    g.bench_function("on", |b| b.iter(|| query::evaluate(&idx, &col, &pred)));
    g.bench_function("off", |b| b.iter(|| query::evaluate_no_innermask(&idx, &col, &pred)));
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    // Streams of imprint vectors with different run structures.
    let mut rng = StdRng::seed_from_u64(8);
    let clustered: Vec<u64> = {
        let mut out = Vec::new();
        while out.len() < 1 << 18 {
            let v = 1u64 << rng.gen_range(0..64);
            let run = rng.gen_range(1..200);
            out.extend(std::iter::repeat_n(v, run));
        }
        out
    };
    let random: Vec<u64> = (0..1 << 18).map(|_| rng.gen()).collect();
    let mut g = c.benchmark_group("rle_compression");
    for (name, stream) in [("clustered", &clustered), ("random", &random)] {
        g.throughput(Throughput::Elements(stream.len() as u64));
        g.bench_with_input(BenchmarkId::new("compressor", name), stream, |b, s| {
            b.iter(|| {
                let mut comp = Compressor::new();
                for &v in s.iter() {
                    comp.push_line(v);
                }
                comp.imprints().len()
            })
        });
        g.bench_with_input(BenchmarkId::new("raw_vec", name), stream, |b, s| {
            b.iter(|| {
                let mut raw = Vec::with_capacity(s.len());
                for &v in s.iter() {
                    raw.push(v);
                }
                raw.len()
            })
        });
    }
    g.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    use imprints::multilevel::MultiLevelImprints;
    // Drift + noise data whose per-line imprints defeat the RLE: the case
    // the §7 multi-level organization targets.
    let n: u64 = 1 << 20;
    let col: Column<i64> =
        (0..n).map(|i| ((i * 59_500 / n) + i.wrapping_mul(2_654_435_761) % 2_500) as i64).collect();
    let base = ColumnImprints::build(&col);
    let ml = MultiLevelImprints::from_base(base.clone(), 64);
    let pred = RangePredicate::between(0, 3000);
    let mut g = c.benchmark_group("multilevel");
    g.throughput(Throughput::Elements(n));
    g.sample_size(20);
    g.bench_function("flat", |b| b.iter(|| base.evaluate(&col, &pred)));
    g.bench_function("two_level", |b| b.iter(|| ml.evaluate(&col, &pred)));
    g.finish();
}

fn bench_binning_strategy(c: &mut Criterion) {
    use imprints::BinningStrategy;
    // Zipf-skewed data: equi-height adapts its borders, equi-width wastes
    // most bins on the empty tail of the domain.
    let mut rng = StdRng::seed_from_u64(12);
    let col: Column<i64> = (0..1 << 20)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0001..1.0);
            (1.0 / u).min(1e6) as i64 // heavy-tailed
        })
        .collect();
    let pred = RangePredicate::between(2, 5);
    let mut g = c.benchmark_group("binning_strategy");
    g.sample_size(20);
    for (name, strategy) in
        [("equi_height", BinningStrategy::EquiHeight), ("equi_width", BinningStrategy::EquiWidth)]
    {
        let idx = ColumnImprints::build_with(&col, BuildOptions { strategy, ..Default::default() });
        g.bench_function(BenchmarkId::new("query", name), |b| b.iter(|| idx.evaluate(&col, &pred)));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_get_bin,
    bench_block_granularity,
    bench_innermask,
    bench_compression,
    bench_multilevel,
    bench_binning_strategy
);
criterion_main!(benches);
