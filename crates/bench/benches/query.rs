//! Criterion micro-benchmarks: range-query evaluation (Figures 8–10).
//!
//! Benches each competitor at a very selective (1%), a medium (40%) and a
//! non-selective (95%) predicate over a clustered and an unclustered
//! column. The paper's shape: imprints win big on selective queries over
//! clustered data, converge to scan as selectivity drops, and WAH pays its
//! decompression overhead in main memory.

use baselines::{SeqScan, WahBitmap, ZoneMap};
use colstore::{Column, RangeIndex, RangePredicate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imprints::ColumnImprints;

const ROWS: usize = 1 << 20;

fn columns() -> Vec<(&'static str, Column<i64>)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let clustered: Column<i64> = (0..ROWS as i64).map(|i| i / 16).collect();
    let mut rng = StdRng::seed_from_u64(9);
    let random: Column<i64> = (0..ROWS).map(|_| rng.gen_range(0..(ROWS as i64 / 16))).collect();
    vec![("clustered", clustered), ("random", random)]
}

/// A predicate returning ~`sel` of the rows of a column over 0..ROWS/16.
fn predicate(sel: f64) -> RangePredicate<i64> {
    let domain = (ROWS / 16) as i64;
    let span = (domain as f64 * sel) as i64;
    let lo = domain / 4;
    RangePredicate::between(lo, lo + span.max(0))
}

fn bench_query(c: &mut Criterion) {
    for (data_name, col) in columns() {
        let imprints = ColumnImprints::build(&col);
        let zonemap = ZoneMap::build(&col);
        let wah = WahBitmap::build_with_binning(&col, imprints.binning().clone());
        let scan = SeqScan::new(&col);
        for sel in [0.01, 0.4, 0.95] {
            let pred = predicate(sel);
            let mut g = c.benchmark_group(format!("query/{data_name}/sel{sel}"));
            g.throughput(Throughput::Elements(ROWS as u64));
            g.sample_size(20);
            g.bench_function(BenchmarkId::from_parameter("scan"), |b| {
                b.iter(|| scan.evaluate(&col, &pred))
            });
            g.bench_function(BenchmarkId::from_parameter("imprints"), |b| {
                b.iter(|| imprints.evaluate(&col, &pred))
            });
            g.bench_function(BenchmarkId::from_parameter("zonemap"), |b| {
                b.iter(|| zonemap.evaluate(&col, &pred))
            });
            g.bench_function(BenchmarkId::from_parameter("wah"), |b| {
                b.iter(|| wah.evaluate(&col, &pred))
            });
            g.finish();
        }
    }
}

fn bench_count_only(c: &mut Criterion) {
    // Count-only evaluation skips id materialization: the index-probing
    // cost in isolation.
    let col: Column<i64> = (0..ROWS as i64).map(|i| i / 16).collect();
    let imprints = ColumnImprints::build(&col);
    let pred = predicate(0.4);
    let mut g = c.benchmark_group("count_only");
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("imprints_count", |b| {
        b.iter(|| imprints::query::count(&imprints, &col, &pred))
    });
    g.bench_function("imprints_materialize", |b| b.iter(|| imprints.evaluate(&col, &pred)));
    g.finish();
}

criterion_group!(benches, bench_query, bench_count_only);
criterion_main!(benches);
