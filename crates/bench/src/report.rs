//! Table/series output helpers for the experiment harness.
//!
//! Every experiment prints an aligned, human-readable table and also
//! persists the same rows as CSV so the figures can be re-plotted.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that mirrors one paper table or the data
/// series behind one figure.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes the rows as CSV into `dir/<name>.csv`.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", escaped.join(","))?;
        }
        Ok(path)
    }
}

/// Formats a byte count human-readably (KiB/MiB with two decimals).
pub fn fmt_bytes(bytes: usize) -> String {
    const KI: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KI * KI * KI {
        format!("{:.2}GiB", b / (KI * KI * KI))
    } else if b >= KI * KI {
        format!("{:.2}MiB", b / (KI * KI))
    } else if b >= KI {
        format!("{:.2}KiB", b / KI)
    } else {
        format!("{bytes}B")
    }
}

/// Formats a duration in adaptive units (ns/µs/ms/s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The median of a (possibly unsorted, non-empty) sample.
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("imprints_bench_test_csv");
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "with,comma".into()]);
        let path = t.save_csv(&dir, "t").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,\"with,comma\"\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn byte_and_time_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
