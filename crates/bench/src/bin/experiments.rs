//! CLI entry point regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p imprints-bench --bin experiments -- \
//!     --experiment all --rows 1000000 --rounds 4 --out bench_results
//! ```

use std::process::ExitCode;

use imprints_bench::experiments::{run, ExpConfig, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--experiment <name|all>] [--rows N] [--rounds N] [--seed N] [--out DIR]\n\
         experiments: {}",
        ALL_EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ExpConfig::default();
    let mut experiment = String::from("all");
    let mut rows_given = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--experiment" | "-e" => experiment = val(),
            "--rows" | "-n" => {
                cfg.rows = val().parse().unwrap_or_else(|_| usage());
                rows_given = true;
            }
            "--rounds" | "-r" => cfg.rounds = val().parse().unwrap_or_else(|_| usage()),
            "--seed" | "-s" => cfg.seed = val().parse().unwrap_or_else(|_| usage()),
            "--out" | "-o" => cfg.out_dir = val().into(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // The throughput experiment measures serving-scale QPS: default it to
    // 10M rows unless the user sized it explicitly.
    if experiment == "throughput" && !rows_given {
        cfg.rows = 10_000_000;
    }
    println!(
        "column imprints experiment harness — experiment={experiment} rows={} rounds={} seed={}\n",
        cfg.rows, cfg.rounds, cfg.seed
    );
    let t0 = std::time::Instant::now();
    if !run(&experiment, &cfg) {
        eprintln!("unknown experiment {experiment:?}");
        usage();
    }
    println!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
