//! The experiment runners — one per table/figure of §6.
//!
//! Absolute numbers differ from the paper (different hardware, scaled
//! synthetic data); the *shapes* — who wins, by what factor, where the
//! crossovers sit — are the reproduction target. EXPERIMENTS.md records
//! paper-vs-measured for each experiment.

use std::path::PathBuf;
use std::time::Duration;

use colstore::Column;
use datagen::datasets::{self, DatasetFamily, GeneratedColumn};
use datagen::entropy_sweep;
use datagen::workload::QueryWorkload;
use imprints::{column_entropy, ColumnImprints};

use crate::report::{fmt_bytes, fmt_duration, median, Table};
use crate::runner::{self, PerIndex, QueryMeasurement};
use crate::with_typed_column;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Rows per generated column.
    pub rows: usize,
    /// Workload sweep repetitions (10 queries each).
    pub rounds: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            rows: 1_000_000,
            rounds: 4,
            seed: 2013,
            out_dir: PathBuf::from("bench_results"),
        }
    }
}

impl ExpConfig {
    fn save(&self, t: &Table, name: &str) {
        match t.save_csv(&self.out_dir, name) {
            Ok(p) => println!("[saved {}]", p.display()),
            Err(e) => eprintln!("[warn] could not save {name}: {e}"),
        }
        println!();
    }
}

/// All experiment names accepted by [`run`].
pub const ALL_EXPERIMENTS: [&str; 18] = [
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "throughput",
    "compaction",
    "writehead",
    "pathmix",
    "multipred",
    "refine",
    "qps",
    "recovery",
];

/// Runs the experiment called `name` ("all" runs everything). Returns
/// `false` for an unknown name.
pub fn run(name: &str, cfg: &ExpConfig) -> bool {
    match name {
        "all" => {
            for n in ALL_EXPERIMENTS {
                assert!(run(n, cfg));
            }
        }
        "table1" => table1(cfg),
        "fig3" => fig3(cfg),
        "fig4" => fig4(cfg),
        "fig5" => fig5(cfg),
        "fig6" => fig6(cfg),
        "fig7" => fig7(cfg),
        "fig8" => fig8(cfg),
        "fig9" => fig9(cfg),
        "fig10" => fig10(cfg),
        "fig11" => fig11(cfg),
        "throughput" => throughput(cfg),
        "compaction" => compaction(cfg),
        "writehead" => writehead(cfg),
        "pathmix" => pathmix(cfg),
        "multipred" => multipred(cfg),
        "refine" => refine(cfg),
        "qps" => qps(cfg),
        "recovery" => recovery(cfg),
        _ => return false,
    }
    true
}

/// Table 1: dataset statistics.
pub fn table1(cfg: &ExpConfig) {
    let mut t = Table::new(
        "Table 1: dataset statistics (synthetic analogues, scaled)",
        &["Dataset", "Size", "#Col", "Value types", "Max rows"],
    );
    for family in DatasetFamily::ALL {
        let cols = datasets::generate(family, cfg.rows, cfg.seed);
        let bytes: usize = cols.iter().map(GeneratedColumn::data_bytes).sum();
        let mut types: Vec<String> =
            cols.iter().map(|c| c.column.column_type().to_string()).collect();
        types.sort();
        types.dedup();
        let max_rows = cols.iter().map(GeneratedColumn::rows).max().unwrap_or(0);
        t.row(vec![
            family.name().to_string(),
            fmt_bytes(bytes),
            cols.len().to_string(),
            types.join(", "),
            max_rows.to_string(),
        ]);
    }
    t.print();
    cfg.save(&t, "table1");
}

/// Figure 3: imprint prints and entropy, one column per dataset.
pub fn fig3(cfg: &ExpConfig) {
    println!("== Figure 3: column imprint prints ('x' = bit set) ==\n");
    let mut t = Table::new(
        "Figure 3: column entropy per representative column",
        &["Column", "Dataset", "E"],
    );
    for family in DatasetFamily::ALL {
        let cols = datasets::generate(family, cfg.rows.min(200_000), cfg.seed);
        let gc = &cols[0];
        let (render, entropy) = with_typed_column!(&gc.column, c => {
            let idx = ColumnImprints::build(c);
            (imprints::print::render_stored(&idx, 24), column_entropy(&idx))
        });
        println!("--- {} ({}) ---", gc.name, family.name());
        println!("E = {entropy:.6}");
        print!("{render}");
        println!();
        t.row(vec![gc.name.clone(), family.name().to_string(), format!("{entropy:.6}")]);
    }
    t.print();
    cfg.save(&t, "fig3");
}

fn all_columns_for_distribution(cfg: &ExpConfig) -> Vec<(String, f64)> {
    let rows = cfg.rows.min(200_000);
    let mut entropies = Vec::new();
    // Several seeds of the five families...
    for s in 0..4u64 {
        for gc in datasets::generate_all(rows, cfg.seed ^ (s * 7919)) {
            let e = with_typed_column!(&gc.column, c => column_entropy(&ColumnImprints::build(c)));
            entropies.push((format!("{}#{s}", gc.name), e));
        }
    }
    // ...plus the chaos ladder to populate the high-entropy tail.
    for (i, chaos) in entropy_sweep::chaos_ladder(9).into_iter().enumerate() {
        let col: Column<i64> =
            Column::from(entropy_sweep::entropy_dial(rows, 1 << 16, chaos, cfg.seed + i as u64));
        let e = column_entropy(&ColumnImprints::build(&col));
        entropies.push((format!("sweep.chaos{chaos:.2}"), e));
    }
    entropies
}

/// Figure 4: cumulative distribution of column entropy.
pub fn fig4(cfg: &ExpConfig) {
    let mut entropies = all_columns_for_distribution(cfg);
    entropies.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut t = Table::new(
        "Figure 4: cumulative distribution of column entropy E",
        &["E ≤", "#columns (cumulative)"],
    );
    let total = entropies.len();
    for decile in 0..=10 {
        let bound = decile as f64 / 10.0;
        let count = entropies.iter().take_while(|(_, e)| *e <= bound).count();
        t.row(vec![format!("{bound:.1}"), count.to_string()]);
    }
    t.row(vec!["total".into(), total.to_string()]);
    t.print();
    cfg.save(&t, "fig4");
}

/// Figure 5: index size and creation time per value-type width.
pub fn fig5(cfg: &ExpConfig) {
    let mut size_t = Table::new(
        "Figure 5 (top): index size by column (grouped by value width)",
        &["width", "column", "rows", "col size", "imprints", "zonemap", "wah"],
    );
    let mut time_t = Table::new(
        "Figure 5 (bottom): index creation time",
        &["width", "column", "rows", "imprints", "zonemap", "wah"],
    );
    // Three size steps per column family for the "stepping" pattern.
    let steps = [cfg.rows / 4, cfg.rows / 2, cfg.rows];
    let mut cols: Vec<GeneratedColumn> = Vec::new();
    for &n in &steps {
        cols.extend(datasets::generate_all(n.max(1024), cfg.seed));
    }
    cols.sort_by_key(|c| (c.column.column_type().width(), c.data_bytes()));
    for gc in &cols {
        let width = gc.column.column_type().width();
        let (sizes, times) = with_typed_column!(&gc.column, c => {
            let (set, times) = runner::build_all(c);
            (set.sizes(), times)
        });
        size_t.row(vec![
            format!("{width}B"),
            gc.name.clone(),
            gc.rows().to_string(),
            fmt_bytes(gc.data_bytes()),
            fmt_bytes(sizes.imprints),
            fmt_bytes(sizes.zonemap),
            fmt_bytes(sizes.wah),
        ]);
        time_t.row(vec![
            format!("{width}B"),
            gc.name.clone(),
            gc.rows().to_string(),
            fmt_duration(times.imprints),
            fmt_duration(times.zonemap),
            fmt_duration(times.wah),
        ]);
    }
    size_t.print();
    cfg.save(&size_t, "fig5_size");
    time_t.print();
    cfg.save(&time_t, "fig5_time");
}

/// Figure 6: index size as a percentage of the column, per dataset.
pub fn fig6(cfg: &ExpConfig) {
    let mut t = Table::new(
        "Figure 6: index size % of column size, per dataset",
        &["Dataset", "column", "imprints %", "zonemap %", "wah %"],
    );
    for family in DatasetFamily::ALL {
        for gc in datasets::generate(family, cfg.rows, cfg.seed) {
            let sizes = with_typed_column!(&gc.column, c => runner::build_all(c).0.sizes());
            let pct = |s: usize| format!("{:.2}", 100.0 * s as f64 / gc.data_bytes() as f64);
            t.row(vec![
                family.name().to_string(),
                gc.name.clone(),
                pct(sizes.imprints),
                pct(sizes.zonemap),
                pct(sizes.wah),
            ]);
        }
    }
    t.print();
    cfg.save(&t, "fig6");
}

/// Figure 7: index size % over column entropy.
pub fn fig7(cfg: &ExpConfig) {
    let mut t =
        Table::new("Figure 7: index size % over column entropy E", &["E", "imprints %", "wah %"]);
    let rows = cfg.rows;
    let mut points = Vec::new();
    for (i, chaos) in entropy_sweep::chaos_ladder(11).into_iter().enumerate() {
        for s in 0..2u64 {
            let col: Column<i64> = Column::from(entropy_sweep::entropy_dial(
                rows,
                1 << 20,
                chaos,
                cfg.seed + i as u64 * 31 + s,
            ));
            let (set, _) = runner::build_all(&col);
            let e = column_entropy(&set.imprints);
            let sizes = set.sizes();
            let col_bytes = col.data_bytes() as f64;
            points.push((
                e,
                100.0 * sizes.imprints as f64 / col_bytes,
                100.0 * sizes.wah as f64 / col_bytes,
            ));
        }
    }
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (e, imp, wah) in points {
        t.row(vec![format!("{e:.3}"), format!("{imp:.2}"), format!("{wah:.2}")]);
    }
    t.print();
    cfg.save(&t, "fig7");
}

/// Columns used by the query-time experiments (one per family, a
/// mid-cardinality representative).
fn query_columns(cfg: &ExpConfig) -> Vec<GeneratedColumn> {
    DatasetFamily::ALL
        .iter()
        .flat_map(|&f| datasets::generate(f, cfg.rows, cfg.seed).into_iter().take(2))
        .collect()
}

fn run_query_measurements(cfg: &ExpConfig) -> Vec<(DatasetFamily, String, QueryMeasurement)> {
    let mut all = Vec::new();
    for gc in query_columns(cfg) {
        let ms = with_typed_column!(&gc.column, c => {
            let (set, _) = runner::build_all(c);
            let wl = QueryWorkload::for_column(c, cfg.rounds, cfg.seed ^ 0xABCD);
            runner::run_workload(c, &set, &wl)
        });
        all.extend(ms.into_iter().map(|m| (gc.family, gc.name.clone(), m)));
    }
    all
}

fn medians_of(ms: Vec<PerIndex<f64>>) -> PerIndex<f64> {
    let mut scan = Vec::with_capacity(ms.len());
    let mut imp = Vec::with_capacity(ms.len());
    let mut zm = Vec::with_capacity(ms.len());
    let mut wah = Vec::with_capacity(ms.len());
    for v in ms {
        scan.push(v.scan);
        imp.push(v.imprints);
        zm.push(v.zonemap);
        wah.push(v.wah);
    }
    PerIndex {
        scan: median(&mut scan),
        imprints: median(&mut imp),
        zonemap: median(&mut zm),
        wah: median(&mut wah),
    }
}

fn time_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Figure 8: query time vs selectivity, per dataset family (the paper's
/// scatter, summarized as per-family medians so the clustering-dependent
/// gaps stay visible instead of blending away).
pub fn fig8(cfg: &ExpConfig) {
    let all = run_query_measurements(cfg);
    let mut t = Table::new(
        "Figure 8: median query time (µs) per dataset and selectivity",
        &["Dataset", "selectivity", "scan", "imprints", "zonemap", "wah"],
    );
    for family in DatasetFamily::ALL {
        for &s in &datagen::workload::SELECTIVITY_STEPS {
            let ms: Vec<PerIndex<f64>> = all
                .iter()
                .filter(|(f, _, m)| *f == family && (m.target_selectivity - s).abs() < 1e-9)
                .map(|(_, _, m)| PerIndex {
                    scan: time_us(m.time.scan),
                    imprints: time_us(m.time.imprints),
                    zonemap: time_us(m.time.zonemap),
                    wah: time_us(m.time.wah),
                })
                .collect();
            if ms.is_empty() {
                continue;
            }
            let agg = medians_of(ms);
            t.row(vec![
                family.name().to_string(),
                format!("{s:.2}"),
                format!("{:.1}", agg.scan),
                format!("{:.1}", agg.imprints),
                format!("{:.1}", agg.zonemap),
                format!("{:.1}", agg.wah),
            ]);
        }
    }
    t.print();
    cfg.save(&t, "fig8");
}

/// Figure 9: cumulative distribution of query times.
pub fn fig9(cfg: &ExpConfig) {
    let all = run_query_measurements(cfg);
    let total = all.len();
    let mut t = Table::new(
        "Figure 9: #queries finishing within t (cumulative)",
        &["t (ms)", "scan", "imprints", "zonemap", "wah"],
    );
    let thresholds_ms = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 1000.0];
    for th in thresholds_ms {
        let count = |f: &dyn Fn(&QueryMeasurement) -> Duration| {
            all.iter().filter(|(_, _, m)| f(m).as_secs_f64() * 1e3 <= th).count()
        };
        t.row(vec![
            format!("{th}"),
            count(&|m| m.time.scan).to_string(),
            count(&|m| m.time.imprints).to_string(),
            count(&|m| m.time.zonemap).to_string(),
            count(&|m| m.time.wah).to_string(),
        ]);
    }
    t.row(vec![
        "total queries".into(),
        total.to_string(),
        total.to_string(),
        total.to_string(),
        total.to_string(),
    ]);
    t.print();
    cfg.save(&t, "fig9");
}

/// Figure 10: factor of improvement over scan and over zonemap (median and
/// best case — the paper's scatter tops out near 1000× over scan and 100×
/// over zonemap for the most selective queries on clustered columns).
pub fn fig10(cfg: &ExpConfig) {
    let all = run_query_measurements(cfg);
    let mut t = Table::new(
        "Figure 10: improvement factor, median (max) per selectivity",
        &["selectivity", "scan/imprints", "scan/wah", "zonemap/imprints", "zonemap/wah"],
    );
    for &s in &datagen::workload::SELECTIVITY_STEPS {
        let mut si = Vec::new();
        let mut sw = Vec::new();
        let mut zi = Vec::new();
        let mut zw = Vec::new();
        for (_, _, m) in all.iter().filter(|(_, _, m)| (m.target_selectivity - s).abs() < 1e-9) {
            let f = |num: Duration, den: Duration| num.as_secs_f64() / den.as_secs_f64().max(1e-9);
            si.push(f(m.time.scan, m.time.imprints));
            sw.push(f(m.time.scan, m.time.wah));
            zi.push(f(m.time.zonemap, m.time.imprints));
            zw.push(f(m.time.zonemap, m.time.wah));
        }
        let cell = |v: &mut Vec<f64>| {
            let max = v.iter().copied().fold(f64::MIN, f64::max);
            format!("{:.2} ({:.0})", median(v), max)
        };
        t.row(vec![format!("{s:.2}"), cell(&mut si), cell(&mut sw), cell(&mut zi), cell(&mut zw)]);
    }
    t.print();
    cfg.save(&t, "fig10");
}

/// Figure 11: normalized index probes and value comparisons for queries of
/// selectivity 0.4–0.5, over column entropy.
pub fn fig11(cfg: &ExpConfig) {
    let mut t = Table::new(
        "Figure 11: probes & comparisons per row (selectivity 0.4–0.5)",
        &[
            "E",
            "probes imprints",
            "probes zonemap",
            "probes wah",
            "cmp imprints",
            "cmp zonemap",
            "cmp wah",
        ],
    );
    let rows = cfg.rows;
    let mut lines = Vec::new();
    for (i, chaos) in entropy_sweep::chaos_ladder(9).into_iter().enumerate() {
        let col: Column<i64> = Column::from(entropy_sweep::entropy_dial(
            rows,
            1 << 20,
            chaos,
            cfg.seed + 101 + i as u64,
        ));
        let (set, _) = runner::build_all(&col);
        let e = column_entropy(&set.imprints);
        // Queries at selectivity 0.45 (the paper's 0.4–0.5 band).
        let mut sorted: Vec<i64> = col.values().to_vec();
        sorted.sort_unstable();
        let span = (rows as f64 * 0.45) as usize;
        let start = rows / 4;
        let pred = colstore::RangePredicate::between(sorted[start], sorted[start + span - 1]);
        let m = runner::measure_query(&col, &set, &pred);
        let n = col.len();
        lines.push((
            e,
            m.stats.imprints.probes_per_row(n),
            m.stats.zonemap.probes_per_row(n),
            m.stats.wah.probes_per_row(n),
            m.stats.imprints.comparisons_per_row(n),
            m.stats.zonemap.comparisons_per_row(n),
            m.stats.wah.comparisons_per_row(n),
        ));
    }
    lines.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (e, pi, pz, pw, ci, cz, cw) in lines {
        t.row(vec![
            format!("{e:.3}"),
            format!("{pi:.5}"),
            format!("{pz:.5}"),
            format!("{pw:.5}"),
            format!("{ci:.5}"),
            format!("{cz:.5}"),
            format!("{cw:.5}"),
        ]);
    }
    t.print();
    cfg.save(&t, "fig11");
}

/// Engine throughput: queries per second over a big clustered column,
/// sweeping morsel-parallelism (worker count) and client concurrency
/// against the single-threaded monolithic-index baseline.
///
/// Uses `cfg.rows` as-is; the CLI defaults this experiment to 10M rows
/// when `--rows` is not given, so the scaling claim is measured at
/// serving scale.
pub fn throughput(cfg: &ExpConfig) {
    throughput_with_rows(cfg, cfg.rows);
}

/// [`throughput`] with an explicit row count (used small in tests).
pub fn throughput_with_rows(cfg: &ExpConfig, rows: usize) {
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, RangeIndex, RangePredicate, Value};
    use imprints_engine::{EngineConfig, Table as EngineTable, ValueRange, WorkerPool};
    use std::time::Instant;

    let queries = 64usize;
    let domain = 1 << 20;
    println!("[throughput] generating {rows} clustered rows…");
    let values = datagen::entropy_sweep::entropy_dial(rows, domain, 0.05, cfg.seed);

    println!("[throughput] building monolithic baseline index…");
    let col: Column<i64> = Column::from(values.clone());
    let mono = ColumnImprints::build(&col);

    println!("[throughput] loading engine table…");
    let ecfg = EngineConfig { segment_rows: 1 << 16, workers: 1, ..Default::default() };
    let table =
        std::sync::Arc::new(EngineTable::new("tp", &[("v", ColumnType::I64)], ecfg).unwrap());
    let t_load = Instant::now();
    for chunk in values.chunks(1 << 20) {
        table.append_batch(vec![AnyColumn::I64(chunk.iter().copied().collect())]).unwrap();
    }
    let load_s = t_load.elapsed().as_secs_f64();
    println!(
        "[throughput] {} rows in {} segments, loaded+indexed in {:.2}s ({:.1}M rows/s)",
        table.row_count(),
        table.sealed_segment_count(),
        load_s,
        rows as f64 / load_s / 1e6
    );

    // ~1%-selectivity ranges spread over the domain.
    let preds: Vec<(i64, i64)> = (0..queries)
        .map(|q| {
            let lo = (q as i64 * 7919) % domain;
            (lo, lo + domain / 100)
        })
        .collect();

    let mut t = Table::new(
        "Engine throughput: QPS vs workers (64 queries, ~1% selectivity)",
        &["configuration", "time/query (ms)", "QPS", "speedup vs 1-thread engine"],
    );

    let time_qps = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        (dt / queries as f64 * 1e3, queries as f64 / dt)
    };

    // Monolithic single-threaded baseline.
    let (ms, qps_mono) = time_qps(&mut || {
        for &(lo, hi) in &preds {
            let _ = mono.evaluate(&col, &RangePredicate::between(lo, hi));
        }
    });
    t.row(vec![
        "monolithic imprints (1 thread)".into(),
        format!("{ms:.3}"),
        format!("{qps_mono:.1}"),
        "-".into(),
    ]);

    // Engine, serial.
    let (ms, qps_serial) = time_qps(&mut || {
        for &(lo, hi) in &preds {
            let _ =
                table.query(&[("v", ValueRange::between(Value::I64(lo), Value::I64(hi)))]).unwrap();
        }
    });
    t.row(vec![
        "engine serial".into(),
        format!("{ms:.3}"),
        format!("{qps_serial:.1}"),
        "1.00".into(),
    ]);

    // Morsel parallelism sweep.
    let max_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    for workers in [1usize, 2, 4, 8, 16] {
        if workers > max_workers * 2 {
            break;
        }
        let pool = WorkerPool::new(workers);
        let (ms, qps) = time_qps(&mut || {
            for &(lo, hi) in &preds {
                let _ = table
                    .query_on(&pool, &[("v", ValueRange::between(Value::I64(lo), Value::I64(hi)))])
                    .unwrap();
            }
        });
        t.row(vec![
            format!("engine {workers} workers (morsel)"),
            format!("{ms:.3}"),
            format!("{qps:.1}"),
            format!("{:.2}", qps / qps_serial),
        ]);
    }

    // Client concurrency: independent serial queries in parallel threads.
    for clients in [2usize, 4, 8] {
        if clients > max_workers * 2 {
            break;
        }
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let table = std::sync::Arc::clone(&table);
                let preds = &preds;
                s.spawn(move || {
                    for &(lo, hi) in preds.iter().skip(c % 7) {
                        let _ = table
                            .query(&[("v", ValueRange::between(Value::I64(lo), Value::I64(hi)))])
                            .unwrap();
                    }
                });
            }
        });
        let dt = t0.elapsed().as_secs_f64();
        let total_q: usize = (0..clients).map(|c| queries - (c % 7)).sum();
        let qps = total_q as f64 / dt;
        t.row(vec![
            format!("engine {clients} clients (inter-query)"),
            format!("{:.3}", dt / total_q as f64 * 1e3),
            format!("{qps:.1}"),
            format!("{:.2}", qps / qps_serial),
        ]);
    }

    t.print();
    cfg.save(&t, "throughput");
}

/// Tiered segment compaction on a trickle-append workload: many small
/// sealed segments accumulate, the maintenance loop merges them tier by
/// tier, and the table's sealed-segment count, index footprint and query
/// latency are recorded before, during and after. Query results are
/// asserted byte-identical across every phase — compaction is purely a
/// physical reorganization.
pub fn compaction(cfg: &ExpConfig) {
    compaction_with_rows(cfg, cfg.rows);
}

/// [`compaction`] with an explicit row count (used small in tests).
pub fn compaction_with_rows(cfg: &ExpConfig, rows: usize) {
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, IdList, Value};
    use imprints_engine::{maintenance_tick, Catalog, EngineConfig, MaintenanceConfig, ValueRange};
    use std::time::Instant;

    // Small segments so trickle appends seal many of them; a per-tick byte
    // budget so the "during" phases show the tiers climbing instead of one
    // tick finishing everything.
    let segment_rows = 1024usize;
    let domain = 1 << 20;
    let ecfg = EngineConfig {
        segment_rows,
        workers: 1,
        maintenance: MaintenanceConfig {
            tier_fanin: 4,
            max_segment_rows: 1 << 20,
            compaction_budget_bytes: (rows * 8) / 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let catalog = Catalog::new();
    let table = catalog.create_table("trickle", &[("v", ColumnType::I64)], ecfg).unwrap();

    println!("[compaction] trickle-appending {rows} clustered rows (batches of ~700)…");
    let values = datagen::entropy_sweep::entropy_dial(rows, domain, 0.2, cfg.seed);
    let t_load = Instant::now();
    for chunk in values.chunks(700) {
        table.append_batch(vec![AnyColumn::I64(chunk.iter().copied().collect())]).unwrap();
    }
    println!(
        "[compaction] loaded in {:.2}s → {} sealed segments of {segment_rows} rows",
        t_load.elapsed().as_secs_f64(),
        table.sealed_segment_count()
    );

    // A fixed query mix (~1% selectivity, spread over the domain) measured
    // identically in every phase; results must never change.
    let preds: Vec<ValueRange> = (0..48)
        .map(|q| {
            let lo = (q as i64 * 7919 * 131) % domain;
            ValueRange::between(Value::I64(lo), Value::I64(lo + domain / 100))
        })
        .collect();
    let measure = |phase: &str, out: &mut Table| {
        let mut times_us: Vec<f64> = Vec::with_capacity(preds.len());
        let mut results: Vec<IdList> = Vec::with_capacity(preds.len());
        for range in &preds {
            let t0 = Instant::now();
            let ids = table.query(&[("v", *range)]).unwrap();
            times_us.push(t0.elapsed().as_secs_f64() * 1e6);
            results.push(ids);
        }
        let stats = catalog.storage_stats();
        out.row(vec![
            phase.to_string(),
            stats.sealed_segments.to_string(),
            fmt_bytes(stats.index_bytes),
            format!("{:.1}", median(&mut times_us)),
        ]);
        results
    };

    let mut t = Table::new(
        "Compaction: sealed segments, index bytes, query latency per phase",
        &["phase", "sealed segments", "index bytes", "median query µs"],
    );
    let baseline = measure("before", &mut t);

    let mut ticks = 0usize;
    let mut merges = 0usize;
    let mut input_bytes = 0usize;
    loop {
        let report = maintenance_tick(&catalog);
        // Converge on *compaction*: the tick may also keep applying
        // fp-triggered index rebuilds (the measurement queries themselves
        // re-accumulate that signal), so `is_idle` is the wrong exit here.
        if report.compacted.is_empty() {
            break;
        }
        ticks += 1;
        merges += report.compacted.len();
        input_bytes += report.compaction_bytes;
        let phase = format!("during (tick {ticks})");
        let results = measure(&phase, &mut t);
        assert_eq!(results, baseline, "compaction changed query results mid-flight");
        assert!(ticks < 1024, "tiered compaction failed to converge");
    }
    let after = measure("after", &mut t);
    assert_eq!(after, baseline, "compaction changed query results");

    t.print();
    println!(
        "[compaction] {merges} merges over {ticks} ticks consumed {} of input; \
         results byte-identical across all phases",
        fmt_bytes(input_bytes)
    );
    cfg.save(&t, "compaction");
}

/// Write-head indexing on an append-heavy workload: an append stream with
/// a drifting (time-series-like) domain leaves the open segment half full,
/// and narrow-range queries target the hot head. A tail-indexed table is
/// raced against the linear-scan baseline (tail indexing disabled); query
/// results are asserted byte-identical to the whole-column oracle in every
/// round, and at serving scale (≥ 32Ki open rows) the tail imprint must
/// cut the median head-query latency at least in half.
pub fn writehead(cfg: &ExpConfig) {
    writehead_with_rows(cfg, cfg.rows);
}

/// [`writehead`] with an explicit row count (used small in smoke tests;
/// the latency claim is only asserted once the open head holds ≥ 32Ki
/// rows, since a tiny head has nothing to skip).
pub fn writehead_with_rows(cfg: &ExpConfig, rows: usize) {
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, Value};
    use imprints_engine::{EngineConfig, Table as EngineTable, ValueRange};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    // A *young* append-hot table: a few sealed segments and a large,
    // exactly half-full open head — the regime where the write head
    // dominates query cost (a long-lived many-segment table is the
    // `compaction` experiment's subject). Sizing keeps total appended
    // rows ≈ `rows`.
    let sealed_target = 4usize;
    let segment_rows = (rows * 2 / 9).clamp(192, 1 << 18) / 64 * 64;
    let total_rows = sealed_target * segment_rows + segment_rows / 2;
    let open_rows = segment_rows / 2;

    // An append stream whose domain drifts upward (values track position,
    // ±256 noise): the paper's "new data with different value
    // distribution" appends, and the reason head queries are *hot* —
    // recent ranges live in the open segment. Fresh binning per seal
    // (share_binning off) keeps the sealed segments cleanly skippable, so
    // the measurement isolates the head.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let values: Vec<i64> = (0..total_rows).map(|i| i as i64 + rng.gen_range(-256..256)).collect();

    let table_cfg = |tail_min: usize| EngineConfig {
        segment_rows,
        workers: 1,
        share_binning: false,
        tail_index_min_rows: tail_min,
        ..Default::default()
    };
    let tail_min = 1024.min(open_rows);
    println!(
        "[writehead] {total_rows} rows → {sealed_target} sealed segments of {segment_rows} \
         + a half-full open head of {open_rows} rows (tail engages at {tail_min})"
    );
    let indexed = EngineTable::new("wh", &[("v", ColumnType::I64)], table_cfg(tail_min)).unwrap();
    let scanned = EngineTable::new("wh", &[("v", ColumnType::I64)], table_cfg(usize::MAX)).unwrap();
    // Trickle-append (odd batch sizes exercise the incremental extend).
    for t in [&indexed, &scanned] {
        for chunk in values.chunks(733) {
            t.append_batch(vec![AnyColumn::I64(chunk.iter().copied().collect())]).unwrap();
        }
        assert_eq!(t.sealed_segment_count(), sealed_target);
        assert_eq!(t.row_count(), total_rows as u64);
    }

    // Narrow ranges spread over the hot head's value domain.
    let queries = 48usize;
    let open_base = (sealed_target * segment_rows) as i64;
    let preds: Vec<ValueRange> = (0..queries)
        .map(|q| {
            let center = open_base + (q * open_rows / queries) as i64;
            ValueRange::between(Value::I64(center - 128), Value::I64(center + 128))
        })
        .collect();

    // One whole-column oracle per predicate (data and predicates are
    // fixed, so there is nothing to recompute per round).
    let oracles: Vec<Vec<u64>> = preds
        .iter()
        .map(|range| {
            let (lo, hi) = match (range.low, range.high) {
                (Some(Value::I64(lo)), Some(Value::I64(hi))) => (lo, hi),
                _ => unreachable!("writehead predicates are closed i64 ranges"),
            };
            values
                .iter()
                .enumerate()
                .filter(|(_, v)| (lo..=hi).contains(*v))
                .map(|(i, _)| i as u64)
                .collect()
        })
        .collect();

    let rounds = cfg.rounds.max(2);
    let mut scan_us: Vec<f64> = Vec::with_capacity(queries * rounds);
    let mut tail_us: Vec<f64> = Vec::with_capacity(queries * rounds);
    let mut tail_cmp = 0u64;
    let mut scan_cmp = 0u64;
    for _ in 0..rounds {
        for (range, oracle) in preds.iter().zip(&oracles) {
            let pred = [("v", *range)];
            let t0 = Instant::now();
            let (ids_s, st_s) = scanned.query_with_stats(&pred, None).unwrap();
            scan_us.push(t0.elapsed().as_secs_f64() * 1e6);
            let t0 = Instant::now();
            let (ids_t, st_t) = indexed.query_with_stats(&pred, None).unwrap();
            tail_us.push(t0.elapsed().as_secs_f64() * 1e6);
            assert!(st_t.tail_indexed, "the indexed head must answer through its tail imprint");
            assert!(!st_s.tail_indexed);
            scan_cmp += st_s.tail_access.value_comparisons;
            tail_cmp += st_t.tail_access.value_comparisons;
            // Byte-identical to each other and to the whole-column oracle.
            assert_eq!(ids_t, ids_s, "tail-indexed head changed query results");
            assert_eq!(ids_t.as_slice(), oracle.as_slice(), "results must match the oracle");
        }
    }

    let scan_med = median(&mut scan_us);
    let tail_med = median(&mut tail_us);
    let per_query = |total: u64| total as f64 / (queries * rounds) as f64;
    let mut t = Table::new(
        "Write head: narrow hot-head queries, linear scan vs tail imprint",
        &["head path", "open rows", "median query µs", "head cmp/query", "speedup"],
    );
    t.row(vec![
        "linear scan".into(),
        open_rows.to_string(),
        format!("{scan_med:.1}"),
        format!("{:.0}", per_query(scan_cmp)),
        "1.00".into(),
    ]);
    t.row(vec![
        "tail imprint".into(),
        open_rows.to_string(),
        format!("{tail_med:.1}"),
        format!("{:.0}", per_query(tail_cmp)),
        format!("{:.2}", scan_med / tail_med.max(1e-9)),
    ]);
    t.print();
    println!(
        "[writehead] results byte-identical to the whole-column oracle across \
         {queries}×{rounds} queries"
    );
    if open_rows >= 32 * 1024 {
        assert!(
            tail_med * 2.0 <= scan_med,
            "tail imprint must at least halve the median hot-head latency \
             (scan {scan_med:.1}µs vs tail {tail_med:.1}µs)"
        );
    }
    cfg.save(&t, "writehead");
}

/// Selectivity-aware access-path choice on a mixed predicate stream: one
/// table holds a clustered, a uniform-random and a low-cardinality run
/// column; the workload interleaves narrow and wide ranges over all three.
/// A selectivity-bucketed engine (`path_buckets = 4`, WAH registered as a
/// fourth byte-budgeted path) is raced against the single-EWMA baseline
/// (`path_buckets = 1`, same paths) on identical data; every query result
/// is asserted byte-identical to the whole-column oracle on both tables —
/// so every explored path, WAH included, is correctness-checked — and at
/// full scale the run asserts (a) the bucketed chooser converges to
/// *different* winners for the narrow and wide buckets of the random
/// column, (b) its overall median latency is at least as good as the
/// single-EWMA chooser's, and (c) the WAH budget holds: built on the
/// compressible columns, rejected on the random one, bytes accounted in
/// `storage_stats`.
pub fn pathmix(cfg: &ExpConfig) {
    pathmix_with_rows(cfg, cfg.rows);
}

/// [`pathmix`] with an explicit row count (used small in smoke tests; the
/// winner/latency claims arm at ≥ 200Ki rows, where path costs separate
/// cleanly from timer noise).
pub fn pathmix_with_rows(cfg: &ExpConfig, rows: usize) {
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, IdList, Value};
    use imprints_engine::{path_report, Catalog, EngineConfig, PathKind, ValueRange};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    let segment_rows = (rows / 8).clamp(1024, 1 << 16) / 64 * 64;
    // Half a segment column's data bytes: comfortably holds the WAH
    // bitmaps of the clustered and low-cardinality columns, impossible for
    // the uniform-random one (literals everywhere, §6.2).
    let wah_budget = segment_rows * 8 / 2;
    let domain = 1i64 << 20;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let clust: Vec<i64> = (0..rows).map(|i| i as i64 + rng.gen_range(-64..64)).collect();
    let rand_col: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..domain)).collect();
    let lowcard: Vec<i64> = (0..rows).map(|i| ((i / 256) % 16) as i64).collect();

    let catalog = Catalog::new();
    let mk = |name: &str, buckets: usize| {
        let ecfg = EngineConfig {
            segment_rows,
            workers: 1,
            wah_budget_bytes: wah_budget,
            path_buckets: buckets,
            ..Default::default()
        };
        let schema =
            [("clust", ColumnType::I64), ("rand", ColumnType::I64), ("lowcard", ColumnType::I64)];
        let t = catalog.create_table(name, &schema, ecfg).unwrap();
        t.append_batch(vec![
            AnyColumn::I64(clust.iter().copied().collect()),
            AnyColumn::I64(rand_col.iter().copied().collect()),
            AnyColumn::I64(lowcard.iter().copied().collect()),
        ])
        .unwrap();
        t
    };
    let bucketed = mk("bucketed", 4);
    let single = mk("single", 1);
    println!(
        "[pathmix] {rows} rows × 3 columns in {} segments of {segment_rows}; \
         wah budget {} per segment column",
        bucketed.sealed_segment_count(),
        fmt_bytes(wah_budget)
    );

    // The mixed stream: per column, narrow (~0.2% of the domain) and wide
    // (~50%) ranges at rotating positions. `(column, range, class)`.
    let per_class = 16usize;
    let mut preds: Vec<(&str, ValueRange, &str)> = Vec::new();
    for q in 0..per_class {
        let f = q as i64;
        let n = rows as i64;
        let clust_lo = (f * 61) % 90 * n / 100;
        preds.push((
            "clust",
            ValueRange::between(Value::I64(clust_lo), Value::I64(clust_lo + n / 500)),
            "narrow",
        ));
        preds.push((
            "clust",
            ValueRange::between(Value::I64((f % 4) * n / 20), Value::I64((f % 4) * n / 20 + n / 2)),
            "wide",
        ));
        let rand_lo = (f * 7919 * 131) % (domain * 9 / 10);
        preds.push((
            "rand",
            ValueRange::between(Value::I64(rand_lo), Value::I64(rand_lo + domain / 500)),
            "narrow",
        ));
        let wide_lo = (f % 4) * domain / 20;
        preds.push((
            "rand",
            ValueRange::between(Value::I64(wide_lo), Value::I64(wide_lo + domain * 11 / 20)),
            "wide",
        ));
        preds.push(("lowcard", ValueRange::equals(Value::I64(f % 16)), "narrow"));
        preds.push((
            "lowcard",
            ValueRange::between(Value::I64(2), Value::I64(2 + (f % 3) + 9)),
            "wide",
        ));
    }

    // One whole-column oracle per predicate (data and predicates fixed).
    let column_values = |name: &str| -> &[i64] {
        match name {
            "clust" => &clust,
            "rand" => &rand_col,
            "lowcard" => &lowcard,
            _ => unreachable!(),
        }
    };
    let oracles: Vec<Vec<u64>> = preds
        .iter()
        .map(|(col, range, _)| {
            let (lo, hi) = match (range.low, range.high) {
                (Some(Value::I64(lo)), Some(Value::I64(hi))) => (lo, hi),
                _ => unreachable!("pathmix predicates are closed i64 ranges"),
            };
            column_values(col)
                .iter()
                .enumerate()
                .filter(|(_, v)| (lo..=hi).contains(*v))
                .map(|(i, _)| i as u64)
                .collect()
        })
        .collect();

    // Warm-up: let both choosers bootstrap and converge (unmeasured), with
    // results checked against the oracle on every query — this is where
    // the exploration probes route through every registered path,
    // including the lazily built WAH bitmaps.
    let check = |t: &imprints_engine::Table, qi: usize| -> IdList {
        let (col, range, _) = &preds[qi];
        let ids = t.query(&[(col, *range)]).unwrap();
        assert_eq!(
            ids.as_slice(),
            oracles[qi].as_slice(),
            "{} results diverged from the oracle on {col} {range:?}",
            t.name()
        );
        ids
    };
    let warmup_rounds = 3usize;
    for _ in 0..warmup_rounds {
        for qi in 0..preds.len() {
            check(&bucketed, qi);
            check(&single, qi);
        }
    }

    // Measured phase: identical stream, per-query latency on both tables.
    let rounds = cfg.rounds.max(2);
    let mut lat: std::collections::HashMap<(&str, &str, &str), Vec<f64>> =
        std::collections::HashMap::new();
    for _ in 0..rounds {
        for (qi, &(col, range, class)) in preds.iter().enumerate() {
            for t in [&single, &bucketed] {
                // Time the query alone; the oracle check runs off-clock so
                // the medians (and the bucketed-vs-single assertion)
                // measure path choice, not result verification.
                let t0 = Instant::now();
                let ids = t.query(&[(col, range)]).unwrap();
                let us = t0.elapsed().as_secs_f64() * 1e6;
                assert_eq!(
                    ids.as_slice(),
                    oracles[qi].as_slice(),
                    "{} results diverged from the oracle on {col} {range:?}",
                    t.name()
                );
                lat.entry((t.name(), col, class)).or_default().push(us);
            }
        }
    }
    println!(
        "[pathmix] results byte-identical to the whole-column oracle across \
         {} queries per table",
        preds.len() * (warmup_rounds + rounds)
    );

    // Per-bucket winners, as the planner's report sees them.
    let reports = path_report(&catalog);
    let winners = |table: &str, column: &str| -> Vec<(usize, PathKind, u64)> {
        let r = reports
            .iter()
            .find(|r| r.table == table && r.column == column)
            .expect("column reported");
        r.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.queries > 0)
            .filter_map(|(i, b)| b.winner.map(|w| (i, w, b.queries)))
            .collect()
    };

    let mut t = Table::new(
        "Path mix: median latency (µs) per column and selectivity class",
        &["column", "class", "single-EWMA", "bucketed", "bucketed winners (bucket:path)"],
    );
    let mut single_all: Vec<f64> = Vec::new();
    let mut bucketed_all: Vec<f64> = Vec::new();
    for col in ["clust", "rand", "lowcard"] {
        for class in ["narrow", "wide"] {
            let mut s = lat.remove(&("single", col, class)).unwrap();
            let mut b = lat.remove(&("bucketed", col, class)).unwrap();
            single_all.extend(s.iter());
            bucketed_all.extend(b.iter());
            let ws = winners("bucketed", col)
                .into_iter()
                .map(|(i, w, _)| format!("{i}:{}", w.name()))
                .collect::<Vec<_>>()
                .join(" ");
            t.row(vec![
                col.into(),
                class.into(),
                format!("{:.1}", median(&mut s)),
                format!("{:.1}", median(&mut b)),
                ws,
            ]);
        }
    }
    let single_med = median(&mut single_all);
    let bucketed_med = median(&mut bucketed_all);
    t.row(vec![
        "ALL".into(),
        "mixed".into(),
        format!("{single_med:.1}"),
        format!("{bucketed_med:.1}"),
        String::new(),
    ]);
    t.print();

    // Storage accounting: WAH built on the compressible columns, rejected
    // on the random one, bytes visible in the catalog stats.
    let stats = catalog.storage_stats();
    println!(
        "[pathmix] storage: {} index bytes of which {} WAH; overall median \
         single {single_med:.1}µs vs bucketed {bucketed_med:.1}µs",
        fmt_bytes(stats.index_bytes),
        fmt_bytes(stats.wah_bytes),
    );
    for r in reports.iter().filter(|r| r.table == "bucketed") {
        println!(
            "[pathmix] {}.{}: wah built on {}/{} segments, rejected on {}",
            r.table, r.column, r.wah_built, r.segments, r.wah_rejected
        );
    }
    assert!(stats.wah_bytes > 0, "some column must have built its WAH path within budget");
    assert!(stats.index_bytes > stats.wah_bytes, "imprint+zonemap bytes are always present");
    let rand_report = reports
        .iter()
        .find(|r| r.table == "bucketed" && r.column == "rand")
        .expect("rand column reported");
    assert_eq!(
        rand_report.wah_built, 0,
        "uniform-random WAH must exceed half the data size and be rejected"
    );
    assert!(rand_report.wah_rejected > 0, "the chooser must have tried (and rejected) WAH");

    if rows >= 200_000 {
        // (a) The bucketed chooser learned different winners for narrow
        // and wide predicates on the random column.
        let rand_winners = winners("bucketed", "rand");
        let distinct: std::collections::HashSet<&str> =
            rand_winners.iter().map(|(_, w, _)| w.name()).collect();
        assert!(
            distinct.len() >= 2,
            "bucketed chooser must converge to different per-bucket winners \
             on the random column, got {rand_winners:?}"
        );
        // (b) Selectivity bucketing never loses to the single conflated
        // EWMA on the mixed stream (small tolerance for timer noise).
        assert!(
            bucketed_med <= single_med * 1.10,
            "bucketed chooser must match or beat the single-EWMA median \
             (single {single_med:.1}µs vs bucketed {bucketed_med:.1}µs)"
        );
    }
    cfg.save(&t, "pathmix");
}

/// Multi-predicate conjunction planning: imprint-level mask intersection
/// across all predicates vs the classic first-predicate-then-matcher
/// evaluation. See [`multipred_with_rows`].
pub fn multipred(cfg: &ExpConfig) {
    multipred_with_rows(cfg, cfg.rows);
}

/// Three-predicate conjunctions (~10% selective each, joint 0.1–1%) over
/// two data shapes, evaluated three ways:
///
/// * **planned** — the engine with conjunction planning on: the
///   [`PlanChooser`](imprints_engine::Table) arbitrates between the fused
///   mask-intersection plan and the per-predicate fallback by measured
///   cost;
/// * **perpred** — an identical table with `conjunction_planning: false`,
///   pinning the per-predicate plan (candidate-range intersection +
///   gather-kernel refinement);
/// * **first+filter** — the pre-conjunction baseline: the first predicate
///   through the single-predicate adaptive path, survivors weeded by a
///   scalar matcher over prefetched whole columns.
///
/// Every query on every path is asserted byte-identical to the
/// brute-force oracle. IN-lists and OR groups ride the same tables,
/// byte-checked too. At ≥ 1M rows the run asserts the planned engine
/// beats the first+filter baseline by ≥ 1.5× on the clustered shape's
/// median.
pub fn multipred_with_rows(cfg: &ExpConfig, rows: usize) {
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, Value};
    use imprints_engine::{Catalog, EngineConfig, ValueRange, ValueSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    let n = rows;
    let segment_rows = (n / 8).clamp(1024, 1 << 16) / 64 * 64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Clustered shape: a smooth ramp plus two block-periodic columns —
    // the geometry imprints excel at (every cacheline spans few bins), so
    // mask intersection prunes almost everything before a value is read.
    let blk_b = (n / 512).max(8);
    let blk_c = (n / 128).max(32);
    let ca: Vec<i64> =
        (0..n).map(|i| (i as i64 * 1000) / n as i64 + rng.gen_range(-3..=3)).collect();
    let cb: Vec<i64> = (0..n).map(|i| ((i / blk_b) % 100) as i64).collect();
    let cc: Vec<i64> = (0..n).map(|i| ((i / blk_c) % 50) as i64).collect();
    // Random shape: three independent uniform columns — the worst case
    // for cacheline pruning, reported alongside but never asserted on.
    let ra: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    let rb: Vec<i64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    let rc: Vec<i64> = (0..n).map(|_| rng.gen_range(0..50)).collect();

    let catalog = Catalog::new();
    let mk = |name: &str, conjunction_planning: bool| {
        let ecfg =
            EngineConfig { segment_rows, workers: 1, conjunction_planning, ..Default::default() };
        let schema = [
            ("ca", ColumnType::I64),
            ("cb", ColumnType::I64),
            ("cc", ColumnType::I64),
            ("ra", ColumnType::I64),
            ("rb", ColumnType::I64),
            ("rc", ColumnType::I64),
        ];
        let t = catalog.create_table(name, &schema, ecfg).unwrap();
        t.append_batch(vec![
            AnyColumn::I64(ca.iter().copied().collect()),
            AnyColumn::I64(cb.iter().copied().collect()),
            AnyColumn::I64(cc.iter().copied().collect()),
            AnyColumn::I64(ra.iter().copied().collect()),
            AnyColumn::I64(rb.iter().copied().collect()),
            AnyColumn::I64(rc.iter().copied().collect()),
        ])
        .unwrap();
        t
    };
    let planned = mk("mp_planned", true);
    let perpred = mk("mp_perpred", false);
    println!(
        "[multipred] {n} rows × 6 columns in {} segments of {segment_rows}",
        planned.sealed_segment_count()
    );

    // The query stream: per shape, 12 three-predicate conjunctions at
    // rotating positions, each predicate ~10% selective (joint ~0.1%).
    // Column names stay `'static`: downstream closures key latency maps
    // and build predicates by name.
    type Shape<'a> = (&'static str, [&'static str; 3], [&'a Vec<i64>; 3]);
    let shapes: [Shape; 2] = [
        ("clustered", ["ca", "cb", "cc"], [&ca, &cb, &cc]),
        ("random", ["ra", "rb", "rc"], [&ra, &rb, &rc]),
    ];
    let per_shape = 12usize;
    let bounds = |q: usize| {
        let f = q as i64;
        let a = ((f * 61) % 900, (f * 61) % 900 + 99);
        let b = ((f * 13) % 90, (f * 13) % 90 + 9);
        let c = ((f * 7) % 45, (f * 7) % 45 + 4);
        [a, b, c]
    };
    let preds_of = |cols: [&'static str; 3], q: usize| -> Vec<(&'static str, ValueRange)> {
        cols.iter()
            .zip(bounds(q))
            .map(|(col, (lo, hi))| (*col, ValueRange::between(Value::I64(lo), Value::I64(hi))))
            .collect()
    };
    let oracle_of = |vals: [&Vec<i64>; 3], q: usize| -> Vec<u64> {
        let b = bounds(q);
        (0..n as u64)
            .filter(|&i| vals.iter().zip(b).all(|(v, (lo, hi))| (lo..=hi).contains(&v[i as usize])))
            .collect()
    };

    // The first+filter baseline works over prefetched whole columns, as a
    // matcher-era executor would.
    let snap = planned.snapshot();
    let fetched: std::collections::HashMap<&str, Vec<i64>> = shapes
        .iter()
        .flat_map(|(_, cols, _)| cols.iter().map(|c| (*c, snap.column_values::<i64>(c).unwrap())))
        .collect();
    let first_filter = |cols: [&'static str; 3], q: usize| -> Vec<u64> {
        let preds = preds_of(cols, q);
        let ids = planned.query(&preds[..1]).unwrap();
        let b = bounds(q);
        ids.iter()
            .filter(|&id| {
                cols.iter()
                    .zip(b)
                    .skip(1)
                    .all(|(col, (lo, hi))| (lo..=hi).contains(&fetched[col][id as usize]))
            })
            .collect()
    };

    // Warm-up (unmeasured): bootstrap both engines' choosers — single-
    // predicate path choosers and the conjunction plan choosers alike —
    // with every answer byte-checked.
    let check = |t: &imprints_engine::Table, cols: [&'static str; 3], q: usize, expect: &[u64]| {
        let ids = t.query(&preds_of(cols, q)).unwrap();
        assert_eq!(
            ids.as_slice(),
            expect,
            "{} diverged from the oracle on {cols:?} query {q}",
            t.name()
        );
    };
    let oracles: std::collections::HashMap<(&str, usize), Vec<u64>> = shapes
        .iter()
        .flat_map(|(shape, _, vals)| (0..per_shape).map(|q| ((*shape, q), oracle_of(*vals, q))))
        .collect();
    for _ in 0..3 {
        for (shape, cols, _) in shapes {
            for q in 0..per_shape {
                let expect = &oracles[&(shape, q)];
                check(&planned, cols, q, expect);
                check(&perpred, cols, q, expect);
                assert_eq!(&first_filter(cols, q), expect, "baseline diverged on {shape} {q}");
            }
        }
    }

    // Measured phase: identical stream, per-query latency on all three
    // evaluation paths, answers still byte-checked (off-clock).
    let rounds = cfg.rounds.max(2);
    let mut lat: std::collections::HashMap<(&str, &str), Vec<f64>> =
        std::collections::HashMap::new();
    for _ in 0..rounds {
        for (shape, cols, _) in shapes {
            for q in 0..per_shape {
                let expect = &oracles[&(shape, q)];
                let preds = preds_of(cols, q);

                let t0 = Instant::now();
                let ids = planned.query(&preds).unwrap();
                let us = t0.elapsed().as_secs_f64() * 1e6;
                assert_eq!(ids.as_slice(), expect.as_slice(), "planned diverged on {shape} {q}");
                lat.entry((shape, "planned")).or_default().push(us);

                let t0 = Instant::now();
                let ids = perpred.query(&preds).unwrap();
                let us = t0.elapsed().as_secs_f64() * 1e6;
                assert_eq!(ids.as_slice(), expect.as_slice(), "perpred diverged on {shape} {q}");
                lat.entry((shape, "perpred")).or_default().push(us);

                let t0 = Instant::now();
                let ids = first_filter(cols, q);
                let us = t0.elapsed().as_secs_f64() * 1e6;
                assert_eq!(ids, *expect, "baseline diverged on {shape} {q}");
                lat.entry((shape, "first+filter")).or_default().push(us);
            }
        }
    }

    // IN-lists and OR groups over the same tables, byte-checked against
    // their own brute-force oracles on both engines.
    for t in [&planned, &perpred] {
        let in_set = ValueSet::points([Value::I64(3), Value::I64(17), Value::I64(41)]);
        let a_range = ValueSet::range(ValueRange::between(Value::I64(200), Value::I64(449)));
        let ids = t.query_sets(&[("cb", in_set), ("ca", a_range)]).unwrap();
        let expect: Vec<u64> = (0..n as u64)
            .filter(|&i| {
                [3, 17, 41].contains(&cb[i as usize]) && (200..=449).contains(&ca[i as usize])
            })
            .collect();
        assert_eq!(ids.as_slice(), expect.as_slice(), "{} IN-list diverged", t.name());

        let arms = [
            ("ca", ValueSet::range(ValueRange::at_most(Value::I64(49)))),
            ("cc", ValueSet::range(ValueRange::equals(Value::I64(7)))),
        ];
        let ids = t.query_any(&arms).unwrap();
        let expect: Vec<u64> =
            (0..n as u64).filter(|&i| ca[i as usize] <= 49 || cc[i as usize] == 7).collect();
        assert_eq!(ids.as_slice(), expect.as_slice(), "{} OR group diverged", t.name());
        assert_eq!(t.count_any(&arms).unwrap() as usize, expect.len());
    }
    let checked = per_shape * 2 * (3 + rounds) * 3 + 6;
    println!("[multipred] {checked} answers byte-identical to the brute-force oracle");

    let mut t = Table::new(
        "Multi-predicate conjunctions: median latency (µs), 3 predicates ~10% each",
        &["shape", "planned", "perpred", "first+filter", "speedup vs first+filter"],
    );
    let mut med = |shape: &'static str, plan: &'static str| -> f64 {
        median(lat.get_mut(&(shape, plan)).unwrap())
    };
    let mut speedups = std::collections::HashMap::new();
    for (shape, _, _) in shapes {
        let (p, pp, ff) =
            (med(shape, "planned"), med(shape, "perpred"), med(shape, "first+filter"));
        speedups.insert(shape, ff / p);
        t.row(vec![
            shape.into(),
            format!("{p:.1}"),
            format!("{pp:.1}"),
            format!("{ff:.1}"),
            format!("{:.2}x", ff / p),
        ]);
    }
    t.print();
    println!(
        "[multipred] clustered speedup {:.2}x, random {:.2}x (planned vs first+filter)",
        speedups["clustered"], speedups["random"]
    );
    if rows >= 1_000_000 {
        assert!(
            speedups["clustered"] >= 1.5,
            "imprint-level mask intersection must beat the first-predicate+matcher \
             baseline by >= 1.5x on selective clustered conjunctions, got {:.2}x",
            speedups["clustered"]
        );
    }
    cfg.save(&t, "multipred");
}

/// SWAR vs scalar false-positive refinement: the residual cost of
/// Algorithm 3 measured in isolation. For each column shape
/// (clustered / uniform random / low-cardinality, across lane widths)
/// and each predicate selectivity class (narrow / mid / wide), the
/// imprint's candidate set is computed once and then refined repeatedly
/// under both kernels; every refinement is asserted byte-identical to its
/// scalar twin *and* to the brute-force oracle, and the per-class median
/// speedup is reported. At full scale the run asserts the checked-line-
/// heavy bucket — narrow predicates over the uniform-random and
/// low-cardinality columns, where imprints prune little and nearly every
/// candidate line needs the value check — at a ≥1.5× median speedup.
pub fn refine(cfg: &ExpConfig) {
    refine_with_rows(cfg, cfg.rows);
}

/// [`refine`] with an explicit row count (used small in smoke tests; the
/// speedup claim arms at ≥ 200Ki rows, below which candidate sets are too
/// small for stable timing).
pub fn refine_with_rows(cfg: &ExpConfig, rows: usize) {
    use imprints::simd::RefineKernel;
    use imprints::{query, ImprintStats};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    let mut rng = StdRng::seed_from_u64(cfg.seed);

    /// One benchmarked column with its three selectivity-class predicates,
    /// type-erased so all lane widths share the measurement loop.
    struct Case {
        column: &'static str,
        /// `true` = part of the checked-line-heavy workload the speedup
        /// claim is asserted on (imprints prune little, most candidate
        /// lines take the value check).
        heavy: bool,
        run: Box<dyn Fn(&'static str, usize) -> RefineRow>,
    }

    struct RefineRow {
        class: &'static str,
        candidate_values: u64,
        matches: u64,
        scalar_us: f64,
        swar_us: f64,
    }

    const CLASSES: [&str; 3] = ["narrow", "mid", "wide"];

    /// Builds the measurement closure for one typed column: class `c`
    /// (0/1/2) refines the imprint candidate set of the matching predicate
    /// `rounds + 1` times per kernel (first pass warm-up), returning
    /// median times. Panics if any refinement deviates from the oracle or
    /// the sibling kernel.
    fn typed_case<T: colstore::Scalar>(
        values: Vec<T>,
        preds: [colstore::RangePredicate<T>; 3],
        rounds: usize,
    ) -> Box<dyn Fn(&'static str, usize) -> RefineRow> {
        let col: Column<T> = Column::from(values);
        let idx = ColumnImprints::build(&col);
        Box::new(move |class: &'static str, c: usize| {
            let pred = &preds[c];
            let oracle: Vec<u64> = col
                .values()
                .iter()
                .enumerate()
                .filter(|(_, v)| pred.matches(v))
                .map(|(i, _)| i as u64)
                .collect();
            let (cands, _) = query::candidate_id_ranges(&idx, pred);
            let candidate_values: u64 = cands.runs().map(|r| r.end - r.start).sum();
            let mut scalar_samples = Vec::with_capacity(rounds);
            let mut swar_samples = Vec::with_capacity(rounds);
            for round in 0..=rounds {
                let mut st = ImprintStats::default();
                let t0 = Instant::now();
                let ids_s =
                    query::refine_with_kernel(&col, pred, &cands, &mut st, RefineKernel::Scalar);
                let t_s = t0.elapsed().as_secs_f64() * 1e6;
                let mut st = ImprintStats::default();
                let t0 = Instant::now();
                let ids_v =
                    query::refine_with_kernel(&col, pred, &cands, &mut st, RefineKernel::Swar);
                let t_v = t0.elapsed().as_secs_f64() * 1e6;
                assert_eq!(
                    ids_s.as_slice(),
                    oracle.as_slice(),
                    "scalar refine deviated from the oracle ({class})"
                );
                assert_eq!(ids_s, ids_v, "SWAR refine deviated from the scalar kernel ({class})");
                if round > 0 {
                    scalar_samples.push(t_s);
                    swar_samples.push(t_v);
                }
            }
            RefineRow {
                class,
                candidate_values,
                matches: oracle.len() as u64,
                scalar_us: median(&mut scalar_samples),
                swar_us: median(&mut swar_samples),
            }
        })
    }

    // Predicate spans per class: ~1% / ~10% / ~50% of the value domain.
    let spans = |domain: i64| -> [(i64, i64); 3] {
        let mid = domain / 2;
        [
            (mid, mid + domain / 100),
            (mid - domain / 20, mid + domain / 20),
            (domain / 4, 3 * domain / 4),
        ]
    };

    let rounds = cfg.rounds.max(3);
    let domain = 1_000_000i64;
    let i32_preds = |s: [(i64, i64); 3]| {
        s.map(|(lo, hi)| colstore::RangePredicate::between(lo as i32, hi as i32))
    };
    let clustered: Vec<i32> = (0..rows).map(|i| (i as i64 * domain / rows as i64) as i32).collect();
    let random_i32: Vec<i32> = (0..rows).map(|_| rng.gen_range(0..domain) as i32).collect();
    let random_f64: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..domain as f64)).collect();
    // Low cardinality: 8 distinct values, uniformly shuffled — every
    // cacheline holds every value, so zero lines skip and the whole
    // column is candidate lines (the checked-line-heavy extreme).
    let lowcard: Vec<u8> = (0..rows).map(|_| rng.gen_range(0u32..8) as u8).collect();

    let cases = [
        Case {
            column: "clustered i32",
            heavy: false,
            run: typed_case(clustered, i32_preds(spans(domain)), rounds),
        },
        Case {
            column: "random i32",
            heavy: true,
            run: typed_case(random_i32, i32_preds(spans(domain)), rounds),
        },
        Case {
            column: "lowcard u8",
            heavy: true,
            run: typed_case(
                lowcard,
                [
                    colstore::RangePredicate::equals(3u8),
                    colstore::RangePredicate::between(2u8, 3),
                    colstore::RangePredicate::between(2u8, 5),
                ],
                rounds,
            ),
        },
        Case {
            column: "random f64",
            heavy: true,
            run: typed_case(
                random_f64,
                spans(domain)
                    .map(|(lo, hi)| colstore::RangePredicate::between(lo as f64, hi as f64)),
                rounds,
            ),
        },
    ];

    println!(
        "[refine] {rows} rows/column, {rounds} measured rounds per kernel, \
         candidates fixed per (column, class)"
    );
    let mut t = Table::new(
        "Refinement kernel: scalar loop vs u64-word SWAR over imprint candidates",
        &["column", "class", "cand values", "matches", "scalar µs", "swar µs", "speedup"],
    );
    let mut heavy_narrow_speedups: Vec<f64> = Vec::new();
    for case in &cases {
        for (c, class) in CLASSES.into_iter().enumerate() {
            let row = (case.run)(class, c);
            let speedup = row.scalar_us / row.swar_us.max(1e-9);
            if case.heavy && c == 0 {
                heavy_narrow_speedups.push(speedup);
            }
            t.row(vec![
                case.column.to_string(),
                row.class.to_string(),
                row.candidate_values.to_string(),
                row.matches.to_string(),
                format!("{:.1}", row.scalar_us),
                format!("{:.1}", row.swar_us),
                format!("{speedup:.2}"),
            ]);
        }
    }
    t.print();
    println!(
        "[refine] every refinement byte-identical to the scalar kernel and the \
         brute-force oracle"
    );
    if rows >= 200_000 {
        let mut s = heavy_narrow_speedups.clone();
        let med = median(&mut s);
        assert!(
            med >= 1.5,
            "SWAR must be ≥1.5× the scalar kernel on the checked-line-heavy narrow \
             workload (median {med:.2} from {heavy_narrow_speedups:?})"
        );
    }
    cfg.save(&t, "refine");
}

/// Serving QPS under open-loop network load: clients send on a fixed
/// schedule regardless of completions (so queueing shows up as latency or
/// sheds, not as a slowed-down load generator), sweeping the client count
/// into the thousands against the real TCP front-end. Reports p50/p99/p999
/// of completed requests and the shed rate, for the batched shared-morsel
/// dispatcher vs request-at-a-time dispatch on the same connection mix.
pub fn qps(cfg: &ExpConfig) {
    qps_with_rows(cfg, cfg.rows);
}

/// [`qps`] with an explicit row count (used small in tests/CI smoke).
pub fn qps_with_rows(cfg: &ExpConfig, rows: usize) {
    use colstore::relation::AnyColumn;
    use colstore::ColumnType;
    use imprints_engine::{Engine, EngineConfig};
    use imprints_server::{Reply, Server, ServerConfig};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    // The full sweep arms at serving scale; the smoke keeps CI honest.
    let full = rows >= 200_000;
    let client_sweep: &[usize] = if full { &[64, 512, 2048] } else { &[2, 4] };
    let per_client_rate = if full { 25.0f64 } else { 50.0 };
    let requests_per_client = if full { 100usize } else { 12 };

    println!("[qps] generating {rows} clustered rows…");
    let domain = 1i64 << 20;
    let values = entropy_sweep::entropy_dial(rows, domain, 0.05, cfg.seed);
    let engine =
        Arc::new(Engine::new(EngineConfig { segment_rows: 1 << 16, ..Default::default() }));
    let table = engine.create_table("qps", &[("v", ColumnType::I64)]).unwrap();
    for chunk in values.chunks(1 << 20) {
        table.append_batch(vec![AnyColumn::I64(chunk.iter().copied().collect())]).unwrap();
    }
    println!(
        "[qps] {} rows in {} segments; open-loop {per_client_rate:.0} req/s per client, \
         {requests_per_client} requests each",
        table.row_count(),
        table.sealed_segment_count()
    );

    struct Outcome {
        offered: usize,
        ok: usize,
        shed: usize,
        elapsed: f64,
        latencies_us: Vec<u64>,
    }

    // One sweep point: `clients` connections, each with a sender thread
    // pacing tagged requests on the open-loop schedule and a receiver
    // thread matching replies back to their send instants.
    let run_point = |server_cfg: ServerConfig, clients: usize| -> Outcome {
        let server = Server::start(Arc::clone(&engine), server_cfg).expect("start server");
        let addr = server.local_addr();
        // Connect in staggered waves — thousands of simultaneous SYNs
        // overflow the listener's accept backlog and the kernel resets the
        // excess — then release every sender at once off a barrier so the
        // measured open-loop phase starts aligned.
        let ready = Arc::new(std::sync::Barrier::new(clients));
        let t0 = Instant::now();
        let results: Vec<(Vec<u64>, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let ready = Arc::clone(&ready);
                    s.spawn(move || {
                        use std::io::{BufRead, BufReader, Write};
                        std::thread::sleep(Duration::from_millis((c as u64 / 64) * 5));
                        let stream = std::net::TcpStream::connect(addr).expect("connect");
                        ready.wait();
                        stream.set_nodelay(true).expect("nodelay");
                        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
                        let mut write_half = stream.try_clone().expect("socket clone");
                        let sent: Arc<Mutex<Vec<Instant>>> =
                            Arc::new(Mutex::new(Vec::with_capacity(requests_per_client)));
                        let (mut lats, mut shed) = (Vec::new(), 0usize);
                        // Sender paces the open-loop schedule; this thread
                        // consumes replies concurrently, so a measured
                        // latency is send→response, not send→whenever the
                        // load generator got around to reading.
                        std::thread::scope(|inner| {
                            let sent_tx = Arc::clone(&sent);
                            inner.spawn(move || {
                                let start = Instant::now();
                                for k in 0..requests_per_client {
                                    let target =
                                        start + Duration::from_secs_f64(k as f64 / per_client_rate);
                                    let now = Instant::now();
                                    if now < target {
                                        std::thread::sleep(target - now);
                                    }
                                    // ~0.1% count + pinpoint query mix over
                                    // the clustered domain.
                                    let lo = ((c * 7919 + k * 104729) as i64) % domain;
                                    let body = if k % 2 == 0 {
                                        format!("COUNT qps v={lo}..{}", lo + domain / 5000)
                                    } else {
                                        format!("QUERY qps v={lo}..{}", lo + 16)
                                    };
                                    let line = format!("#t{k} {body}\n");
                                    sent_tx.lock().unwrap().push(Instant::now());
                                    if write_half.write_all(line.as_bytes()).is_err() {
                                        break;
                                    }
                                }
                            });
                            let mut reader = BufReader::new(stream);
                            let mut line = String::new();
                            for _ in 0..requests_per_client {
                                line.clear();
                                match reader.read_line(&mut line) {
                                    Ok(0) => panic!("client {c} lost a reply: connection closed"),
                                    Err(e) => panic!("client {c} lost a reply: {e}"),
                                    Ok(_) => {}
                                }
                                let (tag, reply) = imprints_server::parse_reply(line.trim_end())
                                    .expect("parse reply");
                                let tag = tag.expect("tagged reply");
                                let k: usize = tag[1..].parse().expect("sequential tag");
                                match reply {
                                    Reply::Busy => shed += 1,
                                    Reply::Err(e) => panic!("server error: {e}"),
                                    _ok => {
                                        let dt = sent.lock().unwrap()[k].elapsed();
                                        lats.push(dt.as_micros() as u64);
                                    }
                                }
                            }
                        });
                        (lats, shed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        let elapsed = t0.elapsed().as_secs_f64();
        drop(server);
        let mut latencies_us: Vec<u64> = Vec::new();
        let mut shed = 0usize;
        for (lats, s) in results {
            latencies_us.extend(lats);
            shed += s;
        }
        latencies_us.sort_unstable();
        Outcome {
            offered: clients * requests_per_client,
            ok: latencies_us.len(),
            shed,
            elapsed,
            latencies_us,
        }
    };

    let pctl = |sorted: &[u64], q: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    };

    let mut t = Table::new(
        "Serving QPS: open-loop clients vs the line-protocol server",
        &[
            "dispatch",
            "clients",
            "offered",
            "completed",
            "shed",
            "shed %",
            "QPS",
            "p50 µs",
            "p99 µs",
            "p999 µs",
        ],
    );
    let mut goodput: Vec<(&str, usize, usize)> = Vec::new();
    for &clients in client_sweep {
        for (mode, batch_max, tick_us) in [("batched", 128usize, 500u64), ("one-at-a-time", 1, 0)] {
            let scfg = ServerConfig {
                queue_depth: 1024,
                batch_max,
                batch_tick: Duration::from_micros(tick_us),
                ..ServerConfig::from_engine(engine.config())
            };
            let o = run_point(scfg, clients);
            assert_eq!(o.ok + o.shed, o.offered, "every request must be answered");
            goodput.push((mode, clients, o.ok));
            t.row(vec![
                mode.to_string(),
                clients.to_string(),
                o.offered.to_string(),
                o.ok.to_string(),
                o.shed.to_string(),
                format!("{:.1}", 100.0 * o.shed as f64 / o.offered as f64),
                format!("{:.0}", o.ok as f64 / o.elapsed),
                pctl(&o.latencies_us, 0.50).to_string(),
                pctl(&o.latencies_us, 0.99).to_string(),
                pctl(&o.latencies_us, 0.999).to_string(),
            ]);
        }
    }
    t.print();
    if full {
        let top = client_sweep[client_sweep.len() - 1];
        let ok_of = |mode: &str| {
            goodput.iter().find(|(m, c, _)| *m == mode && *c == top).map(|(_, _, ok)| *ok).unwrap()
        };
        let (batched, single) = (ok_of("batched"), ok_of("one-at-a-time"));
        println!(
            "[qps] at {top} clients: batched dispatch completed {batched} vs {single} \
             request-at-a-time ({:.2}×)",
            batched as f64 / single.max(1) as f64
        );
        assert!(
            batched >= single,
            "shared-morsel batching must not lose to request-at-a-time dispatch \
             ({batched} vs {single} completed at {top} clients)"
        );
    }
    cfg.save(&t, "qps");
}

/// Restart recovery and imprint-resident cold eviction: a durable table
/// is sealed to disk, "killed", and reopened both ways — reading the
/// persisted indexes back (data stays evicted) and rebuilding every
/// index from the column data — with the answers asserted byte-identical
/// to the pre-shutdown oracle. The eviction claim rides along: after the
/// fast reopen, a fully-covered COUNT must be answered by the resident
/// imprints with zero data bytes faulted from disk, while an
/// id-materializing query faults data back in and still matches.
pub fn recovery(cfg: &ExpConfig) {
    recovery_with_rows(cfg, cfg.rows);
}

/// [`recovery`] with an explicit row count (used small in CI).
pub fn recovery_with_rows(cfg: &ExpConfig, rows: usize) {
    use colstore::relation::AnyColumn;
    use colstore::{ColumnType, IdList, Value};
    use imprints_engine::{Engine, EngineConfig, StorageOptions, ValueRange};
    use std::time::Instant;

    let root = std::env::temp_dir().join(format!("imprints_bench_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let domain = 1i64 << 20;
    let ecfg = |load_indexes: bool| EngineConfig {
        segment_rows: 1 << 14,
        workers: 1,
        storage: StorageOptions { root: Some(root.clone()), load_indexes, ..Default::default() },
        ..Default::default()
    };

    println!("[recovery] sealing {rows} clustered rows to {}…", root.display());
    let values = entropy_sweep::entropy_dial(rows, domain, 0.2, cfg.seed);
    let engine = Engine::new(ecfg(true));
    let table = engine.create_table("t", &[("v", ColumnType::I64)]).unwrap();
    let t_load = Instant::now();
    table.append_batch(vec![AnyColumn::I64(values.into_iter().collect())]).unwrap();
    engine.flush();
    let load_s = t_load.elapsed().as_secs_f64();
    let total_rows = table.row_count();

    let preds: Vec<ValueRange> = (0..32)
        .map(|q| {
            let lo = (q as i64 * 7919 * 131) % domain;
            ValueRange::between(Value::I64(lo), Value::I64(lo + domain / 100))
        })
        .collect();
    let measure = |engine: &Engine| -> (Vec<IdList>, f64) {
        let mut times_us: Vec<f64> = Vec::with_capacity(preds.len());
        let results = preds
            .iter()
            .map(|range| {
                let t0 = Instant::now();
                let ids = engine.query("t", &[("v", *range)]).unwrap();
                times_us.push(t0.elapsed().as_secs_f64() * 1e6);
                ids
            })
            .collect();
        (results, median(&mut times_us))
    };
    let (oracle, before_us) = measure(&engine);
    let stats = engine.catalog().storage_stats();
    println!(
        "[recovery] loaded in {load_s:.2}s → {} sealed segments, {} data, {} indexes",
        stats.sealed_segments,
        fmt_bytes(stats.data_bytes_resident + stats.data_bytes_evicted),
        fmt_bytes(stats.index_bytes),
    );
    drop(engine);

    let mut t = Table::new(
        "Recovery: reopen wall time and answer fidelity per restart path",
        &[
            "path",
            "open ms",
            "idx recovered",
            "idx rebuilt",
            "resident",
            "evicted",
            "median query µs",
        ],
    );
    t.row(vec![
        "before shutdown".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_bytes(stats.data_bytes_resident),
        fmt_bytes(stats.data_bytes_evicted),
        format!("{before_us:.1}"),
    ]);

    // Fast path: indexes read back, data left evicted on disk.
    let t0 = Instant::now();
    let (engine, report) = Engine::open(ecfg(true)).unwrap();
    let open_fast_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.rows, total_rows, "recovery lost rows");
    assert!(report.indexes_rebuilt == 0, "clean restart must not rebuild");
    // Snapshot the post-open residency before any query faults data in:
    // the fast path leaves everything evicted behind resident imprints.
    let s = engine.catalog().storage_stats();
    assert_eq!(s.data_bytes_resident, 0, "fast restart must leave data evicted");

    // The eviction claim, on the freshly recovered (all-evicted) engine:
    // a fully-covered COUNT is answered by imprints alone.
    let n = engine
        .count("t", &[("v", ValueRange::between(Value::I64(i64::MIN), Value::I64(i64::MAX)))])
        .unwrap();
    assert_eq!(n, total_rows);
    let faulted = engine.catalog().storage_stats().faulted_bytes;
    assert_eq!(faulted, 0, "imprint-covered count must fault zero data bytes");
    let (fast, fast_us) = measure(&engine);
    assert_eq!(fast, oracle, "fast-path recovery changed query answers");
    let faulted = engine.catalog().storage_stats().faulted_bytes;
    assert!(faulted > 0, "id-materializing queries must fault data back in");
    t.row(vec![
        "recover indexes".into(),
        format!("{open_fast_ms:.1}"),
        report.indexes_recovered.to_string(),
        report.indexes_rebuilt.to_string(),
        fmt_bytes(s.data_bytes_resident),
        fmt_bytes(s.data_bytes_evicted),
        format!("{fast_us:.1}"),
    ]);
    drop(engine);

    // Rebuild baseline: indexes ignored, everything rebuilt from data.
    let t0 = Instant::now();
    let (engine, report) = Engine::open(ecfg(false)).unwrap();
    let open_rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(report.indexes_recovered == 0);
    assert!(report.indexes_rebuilt > 0);
    let (rebuilt, rebuild_us) = measure(&engine);
    assert_eq!(rebuilt, oracle, "rebuild-path recovery changed query answers");
    let s = engine.catalog().storage_stats();
    t.row(vec![
        "rebuild from data".into(),
        format!("{open_rebuild_ms:.1}"),
        report.indexes_recovered.to_string(),
        report.indexes_rebuilt.to_string(),
        fmt_bytes(s.data_bytes_resident),
        fmt_bytes(s.data_bytes_evicted),
        format!("{rebuild_us:.1}"),
    ]);
    drop(engine);

    t.print();
    println!(
        "[recovery] open: {open_fast_ms:.1}ms recovering indexes vs {open_rebuild_ms:.1}ms \
         rebuilding ({:.2}×); answers byte-identical on both paths; {} faulted for refinement",
        open_rebuild_ms / open_fast_ms.max(1e-9),
        fmt_bytes(faulted as usize),
    );
    cfg.save(&t, "recovery");
    let _ = std::fs::remove_dir_all(&root);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            rows: 20_000,
            rounds: 1,
            seed: 7,
            out_dir: std::env::temp_dir().join("imprints_bench_test_out"),
        }
    }

    #[test]
    fn unknown_experiment_rejected() {
        assert!(!run("fig99", &tiny_cfg()));
    }

    #[test]
    fn recovery_runs_small() {
        let cfg = ExpConfig { rows: 12_000, ..tiny_cfg() };
        assert!(run("recovery", &cfg));
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn table1_and_fig4_run_small() {
        let cfg = tiny_cfg();
        assert!(run("table1", &cfg));
        assert!(run("fig4", &cfg));
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn throughput_runs_small() {
        let cfg = tiny_cfg();
        throughput_with_rows(&cfg, 30_000);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn compaction_runs_small_and_verifies_results() {
        // The experiment itself asserts results stay byte-identical across
        // every compaction phase, so completing is the correctness check.
        let cfg = tiny_cfg();
        compaction_with_rows(&cfg, 12_000);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn writehead_runs_small_and_verifies_results() {
        // The experiment asserts tail-indexed results byte-identical to
        // the whole-column oracle on every query, so completing is the
        // correctness check; the latency claim only arms at ≥32Ki open
        // rows, far above this smoke size.
        let cfg = tiny_cfg();
        writehead_with_rows(&cfg, 20_000);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn pathmix_runs_small_and_verifies_results() {
        // The experiment asserts every query's result byte-identical to
        // the whole-column oracle on both the bucketed and single-EWMA
        // tables — the bootstrap exploration routes queries through every
        // registered path (WAH included), so completing is the
        // correctness check; the winner/latency claims arm at ≥200Ki rows.
        let cfg = tiny_cfg();
        pathmix_with_rows(&cfg, 24_000);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn multipred_runs_small_and_verifies_results() {
        // Every conjunction, IN-list and OR answer — on the planned and
        // the pinned-per-predicate engines and the first+filter baseline —
        // is asserted byte-identical to the brute-force oracle, so
        // completing is the correctness check; the ≥1.5× speedup claim
        // arms at ≥1M rows.
        let cfg = tiny_cfg();
        multipred_with_rows(&cfg, 20_000);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn qps_runs_small_and_answers_everything() {
        // The experiment asserts completed + shed == offered on every
        // sweep point — nothing hangs, nothing is silently dropped. The
        // batched-beats-single goodput claim arms at ≥200Ki rows.
        let cfg = tiny_cfg();
        qps_with_rows(&cfg, 20_000);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn refine_runs_small_and_verifies_results() {
        // The experiment asserts every refinement byte-identical to the
        // scalar kernel and the brute-force oracle, so completing is the
        // correctness check; the ≥1.5× speedup claim arms at ≥200Ki rows.
        let cfg = tiny_cfg();
        refine_with_rows(&cfg, 20_000);
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }

    #[test]
    fn fig8_runs_small_and_cross_validates() {
        // run_workload panics on any index disagreement, so completing is
        // itself a correctness check across all generated datasets.
        let cfg = ExpConfig { rows: 8_000, ..tiny_cfg() };
        assert!(run("fig8", &cfg));
        let _ = std::fs::remove_dir_all(&cfg.out_dir);
    }
}
