//! # imprints-bench — the harness regenerating every table and figure
//!
//! One experiment runner per table/figure of the paper's §6 evaluation,
//! invoked through the `experiments` binary:
//!
//! ```text
//! cargo run --release -p imprints-bench --bin experiments -- --experiment all
//! ```
//!
//! Results print as aligned tables and are also written as CSV under
//! `bench_results/`. The per-experiment mapping lives in DESIGN.md §4 and
//! the measured-vs-paper comparison in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;

/// Dispatches a [`colstore::relation::AnyColumn`] to generic code: binds
/// the typed `Column<T>` to `$c` and evaluates `$body` for whichever scalar
/// type the column holds.
#[macro_export]
macro_rules! with_typed_column {
    ($any:expr, $c:ident => $body:expr) => {{
        use colstore::relation::AnyColumn;
        match $any {
            AnyColumn::I8($c) => $body,
            AnyColumn::U8($c) => $body,
            AnyColumn::I16($c) => $body,
            AnyColumn::U16($c) => $body,
            AnyColumn::I32($c) => $body,
            AnyColumn::U32($c) => $body,
            AnyColumn::I64($c) => $body,
            AnyColumn::U64($c) => $body,
            AnyColumn::F32($c) => $body,
            AnyColumn::F64($c) => $body,
        }
    }};
}
