//! Shared measurement machinery: builds the four competitors over a column
//! and times workloads against them, cross-checking that every index
//! returns identical answers.

use std::time::{Duration, Instant};

use baselines::{SeqScan, WahBitmap, ZoneMap};
use colstore::{AccessStats, Column, RangeIndex, RangePredicate, Scalar};
use datagen::workload::{measured_selectivity, QueryWorkload};
use imprints::ColumnImprints;

/// One value per competitor, in the fixed order scan, imprints, zonemap,
/// WAH (the order of the paper's figures).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerIndex<V> {
    /// Sequential scan.
    pub scan: V,
    /// Column imprints.
    pub imprints: V,
    /// Zonemap.
    pub zonemap: V,
    /// Bit-binned bitmap with WAH.
    pub wah: V,
}

impl<V> PerIndex<V> {
    /// The competitor names, aligned with [`PerIndex::values`].
    pub const NAMES: [&'static str; 4] = ["scan", "imprints", "zonemap", "wah"];

    /// The four values in canonical order.
    pub fn values(&self) -> [&V; 4] {
        [&self.scan, &self.imprints, &self.zonemap, &self.wah]
    }
}

/// The four competitors built over one column.
pub struct IndexSet<T: Scalar> {
    /// The scan pseudo-index.
    pub scan: SeqScan,
    /// The column imprints index.
    pub imprints: ColumnImprints<T>,
    /// The zonemap.
    pub zonemap: ZoneMap<T>,
    /// The WAH bitmap (sharing the imprints binning, as in §6).
    pub wah: WahBitmap<T>,
}

impl<T: Scalar> IndexSet<T> {
    /// Index sizes in bytes (scan is 0).
    pub fn sizes(&self) -> PerIndex<usize> {
        PerIndex {
            scan: 0,
            imprints: RangeIndex::<T>::size_bytes(&self.imprints),
            zonemap: self.zonemap.size_bytes(),
            wah: self.wah.size_bytes(),
        }
    }
}

/// Builds all four competitors, timing each construction (Fig. 5 bottom).
pub fn build_all<T: Scalar>(col: &Column<T>) -> (IndexSet<T>, PerIndex<Duration>) {
    let t0 = Instant::now();
    let scan = SeqScan::new(col);
    let t_scan = t0.elapsed();

    let t0 = Instant::now();
    let imprints = ColumnImprints::build(col);
    let t_imprints = t0.elapsed();

    let t0 = Instant::now();
    let zonemap = ZoneMap::build(col);
    let t_zonemap = t0.elapsed();

    let t0 = Instant::now();
    let wah = WahBitmap::build_with_binning(col, imprints.binning().clone());
    let t_wah = t0.elapsed();

    (
        IndexSet { scan, imprints, zonemap, wah },
        PerIndex { scan: t_scan, imprints: t_imprints, zonemap: t_zonemap, wah: t_wah },
    )
}

/// Everything measured for one query of the workload.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Selectivity the workload generator aimed for.
    pub target_selectivity: f64,
    /// Fraction of rows the query actually returns.
    pub actual_selectivity: f64,
    /// Result cardinality.
    pub result_count: u64,
    /// Wall-clock evaluation time per competitor.
    pub time: PerIndex<Duration>,
    /// Access statistics per competitor.
    pub stats: PerIndex<AccessStats>,
}

/// Runs every query of `workload` against all four competitors.
///
/// Cross-validates: all competitors must return the *same id list*; a
/// mismatch is a correctness bug and panics loudly rather than producing a
/// pretty but wrong figure.
pub fn run_workload<T: Scalar>(
    col: &Column<T>,
    set: &IndexSet<T>,
    workload: &QueryWorkload<T>,
) -> Vec<QueryMeasurement> {
    workload
        .queries()
        .iter()
        .map(|q| {
            let m = measure_query(col, set, &q.predicate);
            QueryMeasurement { target_selectivity: q.target_selectivity, ..m }
        })
        .collect()
}

/// Measures a single predicate against all four competitors.
pub fn measure_query<T: Scalar>(
    col: &Column<T>,
    set: &IndexSet<T>,
    pred: &RangePredicate<T>,
) -> QueryMeasurement {
    let t0 = Instant::now();
    let (ids_scan, st_scan) = set.scan.evaluate_with_stats(col, pred);
    let t_scan = t0.elapsed();

    let t0 = Instant::now();
    let (ids_imp, st_imp) = set.imprints.evaluate_with_stats(col, pred);
    let t_imp = t0.elapsed();

    let t0 = Instant::now();
    let (ids_zm, st_zm) = set.zonemap.evaluate_with_stats(col, pred);
    let t_zm = t0.elapsed();

    let t0 = Instant::now();
    let (ids_wah, st_wah) = set.wah.evaluate_with_stats(col, pred);
    let t_wah = t0.elapsed();

    assert_eq!(ids_scan, ids_imp, "imprints disagrees with scan on {pred}");
    assert_eq!(ids_scan, ids_zm, "zonemap disagrees with scan on {pred}");
    assert_eq!(ids_scan, ids_wah, "wah disagrees with scan on {pred}");

    QueryMeasurement {
        target_selectivity: 0.0,
        actual_selectivity: measured_selectivity(col, pred),
        result_count: ids_scan.len() as u64,
        time: PerIndex { scan: t_scan, imprints: t_imp, zonemap: t_zm, wah: t_wah },
        stats: PerIndex { scan: st_scan, imprints: st_imp, zonemap: st_zm, wah: st_wah },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_and_cross_validate() {
        let col: Column<i32> = (0..30_000).map(|i| (i * 13) % 1000).collect();
        let (set, times) = build_all(&col);
        assert!(times.imprints.as_nanos() > 0);
        let wl = QueryWorkload::for_column(&col, 1, 7);
        let ms = run_workload(&col, &set, &wl);
        assert_eq!(ms.len(), 10);
        for m in &ms {
            assert!((m.actual_selectivity - m.target_selectivity).abs() < 0.15);
            assert_eq!(m.stats.scan.value_comparisons, 30_000);
        }
    }

    #[test]
    fn sizes_ranking_on_clustered_data() {
        // Clustered data: imprints must be the smallest index (Fig. 5/6).
        let col: Column<i64> = (0..100_000).map(|i| i / 100).collect();
        let (set, _) = build_all(&col);
        let sizes = set.sizes();
        assert!(sizes.imprints < sizes.zonemap, "{sizes:?}");
        assert!(sizes.imprints > 0);
    }

    #[test]
    fn per_index_names_order() {
        assert_eq!(PerIndex::<u32>::NAMES, ["scan", "imprints", "zonemap", "wah"]);
        let p = PerIndex { scan: 1, imprints: 2, zonemap: 3, wah: 4 };
        assert_eq!(p.values().map(|v| *v), [1, 2, 3, 4]);
    }
}
