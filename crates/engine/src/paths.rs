//! Per-segment access-path choice, bucketed by predicate selectivity.
//!
//! Every sealed segment column can answer a range predicate several ways:
//! through its **imprint**, through its **zonemap**, by **scanning**, or —
//! when enabled and within its byte budget — through a **WAH bitmap**
//! ([`baselines::WahBitmap`]). Which one is fastest depends on the
//! segment's data (clustering, cardinality) *and* the predicate's
//! selectivity: a point lookup on clustered data loves a skipping index,
//! while a half-the-domain range is often cheapest to scan. The engine
//! therefore treats the access path as a per-query decision informed by
//! observed cost — the stance of learned/adaptive secondary indexing
//! (LSI, AIM) rather than a fixed structure choice.
//!
//! [`PathChooser`] keeps an exponentially-weighted moving average of the
//! observed evaluation cost per *registered* path, **bucketed by the
//! predicate's estimated selectivity class** ([`NUM_BUCKETS`] classes,
//! derived from the span the predicate covers over the segment's binning).
//! Without the buckets a single EWMA conflates all predicates into one
//! number, so a wide-predicate observation poisons the choice for narrow
//! predicates and vice versa — exactly the query-shape mischoice the
//! learned-index literature buckets to avoid. Each bucket exploits its own
//! cheapest path and runs its own deterministic round-robin exploration
//! probe every [`EXPLORE_PERIOD`]-th query, so a path whose relative cost
//! changed (appends elsewhere, different predicate mix, post-rebuild) gets
//! re-measured per class. All state is atomic: choosers live inside
//! shared, immutable segments and are updated concurrently by many
//! readers.
//!
//! The observed costs are end-to-end wall clock, so they include each
//! path's false-positive refinement work — which every path routes
//! through the [`imprints::simd`] kernel selected by
//! [`EngineConfig::refine_kernel`](crate::EngineConfig::refine_kernel).
//! Switching kernels shifts the per-line check cost of every path and the
//! chooser simply re-learns from the new observations; no cost-model
//! constant encodes the kernel.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// One of the ways a segment column can answer a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// The column-imprints secondary index.
    Imprints,
    /// The min/max-per-cacheline zonemap.
    ZoneMap,
    /// A sequential scan of the segment.
    Scan,
    /// The WAH-compressed bit-binned bitmap (lazily built, byte-budgeted).
    Wah,
}

impl PathKind {
    /// All paths, in chooser slot order.
    pub const ALL: [PathKind; MAX_PATHS] =
        [PathKind::Imprints, PathKind::ZoneMap, PathKind::Scan, PathKind::Wah];

    /// The three always-available paths (WAH needs a configured budget).
    pub const CLASSIC: [PathKind; 3] = [PathKind::Imprints, PathKind::ZoneMap, PathKind::Scan];

    /// The chooser slot (index into cost arrays, [`PathKind::ALL`] order).
    pub fn slot(self) -> usize {
        match self {
            PathKind::Imprints => 0,
            PathKind::ZoneMap => 1,
            PathKind::Scan => 2,
            PathKind::Wah => 3,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PathKind::Imprints => "imprints",
            PathKind::ZoneMap => "zonemap",
            PathKind::Scan => "scan",
            PathKind::Wah => "wah",
        }
    }
}

/// Maximum number of registrable paths (chooser slot-array size).
pub const MAX_PATHS: usize = 4;

/// Selectivity classes a chooser can keep separate cost models for:
/// point, narrow, mid, wide (in bin-span order).
pub const NUM_BUCKETS: usize = 4;

/// Every `EXPLORE_PERIOD`-th query *of a bucket* takes a forced
/// exploration path.
pub const EXPLORE_PERIOD: u64 = 16;

const UNSEEN: u64 = u64::MAX;

/// Observed costs above this are clamped before entering the EWMA, so the
/// `(old*7 + cost)/8` recurrence can never overflow `u64` (the running
/// estimate stays ≤ the cap, and `cap*7 + cap` fits comfortably) and a
/// recorded cost can never collide with the `UNSEEN` sentinel.
const COST_CAP: u64 = 1 << 48;

/// EWMA cost slots of one selectivity bucket.
#[derive(Debug)]
struct BucketState {
    /// Queries this bucket has routed (its exploration cadence).
    queries: AtomicU64,
    /// EWMA of observed cost (nanoseconds) per path slot; `UNSEEN` until
    /// the first observation.
    cost: [AtomicU64; MAX_PATHS],
    /// Qualifying rows observed by queries of this bucket (selectivity
    /// numerator) — fed by evaluations that know their hit count.
    sel_hits: AtomicU64,
    /// Rows those queries ranged over (selectivity denominator).
    sel_rows: AtomicU64,
}

impl Default for BucketState {
    fn default() -> Self {
        BucketState {
            queries: AtomicU64::new(0),
            cost: [(); MAX_PATHS].map(|()| AtomicU64::new(UNSEEN)),
            sel_hits: AtomicU64::new(0),
            sel_rows: AtomicU64::new(0),
        }
    }
}

/// Adaptive chooser: per-selectivity-bucket EWMA cost per registered path
/// plus periodic per-bucket exploration.
#[derive(Debug)]
pub struct PathChooser {
    /// Bit `slot` set = path registered at construction.
    registered: u32,
    /// Bit `slot` set = path currently eligible. Starts equal to
    /// `registered`; a lazily built path that blew its byte budget is
    /// cleared at runtime ([`PathChooser::disable`]).
    enabled: AtomicU32,
    /// Active selectivity buckets (1 = the classic single-EWMA chooser).
    buckets: usize,
    state: [BucketState; NUM_BUCKETS],
}

impl Default for PathChooser {
    /// The classic three-path chooser with full selectivity bucketing.
    fn default() -> Self {
        PathChooser::new(&PathKind::CLASSIC, NUM_BUCKETS)
    }
}

impl PathChooser {
    /// A chooser over `paths`, keeping `buckets` (1..=[`NUM_BUCKETS`])
    /// separate selectivity classes.
    ///
    /// # Panics
    /// Panics if `paths` is empty or `buckets` is out of range.
    pub fn new(paths: &[PathKind], buckets: usize) -> PathChooser {
        assert!(!paths.is_empty(), "a chooser needs at least one path");
        assert!((1..=NUM_BUCKETS).contains(&buckets), "buckets must be in 1..={NUM_BUCKETS}");
        let mut mask = 0u32;
        for p in paths {
            mask |= 1 << p.slot();
        }
        PathChooser {
            registered: mask,
            enabled: AtomicU32::new(mask),
            buckets,
            state: [(); NUM_BUCKETS].map(|()| BucketState::default()),
        }
    }

    /// The registered paths, in slot order.
    pub fn paths(&self) -> Vec<PathKind> {
        PathKind::ALL.into_iter().filter(|p| self.registered & (1 << p.slot()) != 0).collect()
    }

    /// Active selectivity buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets
    }

    /// Whether `path` is registered and still eligible.
    pub fn is_enabled(&self, path: PathKind) -> bool {
        self.enabled.load(Ordering::Relaxed) & (1 << path.slot()) != 0
    }

    /// Permanently removes `path` from consideration (e.g. its lazy build
    /// exceeded the byte budget). At least one path always stays enabled:
    /// the compare-exchange loop re-checks the invariant against the value
    /// it swaps out, so concurrent disables of different paths cannot race
    /// each other down to an empty set.
    pub fn disable(&self, path: PathKind) {
        let bit = 1u32 << path.slot();
        let mut cur = self.enabled.load(Ordering::Relaxed);
        while cur & !bit != 0 {
            match self.enabled.compare_exchange_weak(
                cur,
                cur & !bit,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Maps a predicate spanning `width` of the binning's `bins` bins to
    /// this chooser's selectivity bucket: point (one bin), narrow (≤ ⅛ of
    /// the bins), mid (≤ ½), wide (the rest), scaled down to the active
    /// bucket count (1 active bucket maps everything to 0).
    pub fn bucket_of_span(&self, width: usize, bins: usize) -> usize {
        let class = if width <= 1 {
            0
        } else if width * 8 <= bins {
            1
        } else if width * 2 <= bins {
            2
        } else {
            3
        };
        class * self.buckets / NUM_BUCKETS
    }

    /// Picks the path for the next query of `bucket`, advancing the
    /// bucket's query cadence.
    pub fn choose(&self, bucket: usize) -> PathKind {
        let b = &self.state[bucket.min(self.buckets - 1)];
        let n = b.queries.fetch_add(1, Ordering::Relaxed);
        self.pick(bucket, n)
    }

    /// Re-picks a path for the *same* query after the first choice turned
    /// out unavailable mid-dispatch (the lazily built WAH path was just
    /// rejected and disabled): the selection logic of [`PathChooser::choose`]
    /// at the query's already-consumed cadence position, **without**
    /// advancing the counter again — one user query counts once in
    /// [`PathChooser::queries`] and the exploration cadence.
    pub fn rechoose(&self, bucket: usize) -> PathKind {
        let b = &self.state[bucket.min(self.buckets - 1)];
        // The failed choose() already incremented; reuse its position.
        // A concurrent interleaving can skew `n` by a few — harmless, it
        // only shifts which path a bootstrap/probe re-pick lands on.
        let n = b.queries.load(Ordering::Relaxed).wrapping_sub(1);
        self.pick(bucket, n)
    }

    /// The selection logic shared by [`PathChooser::choose`] and
    /// [`PathChooser::rechoose`]: bootstrap sweep, periodic rotating
    /// probe, else cheapest EWMA among the enabled paths.
    fn pick(&self, bucket: usize, n: u64) -> PathKind {
        let b = &self.state[bucket.min(self.buckets - 1)];
        let enabled = self.enabled.load(Ordering::Relaxed);
        let mut live = [PathKind::Imprints; MAX_PATHS];
        let mut k = 0;
        for p in PathKind::ALL {
            if enabled & (1 << p.slot()) != 0 {
                live[k] = p;
                k += 1;
            }
        }
        debug_assert!(k > 0, "at least one path is always enabled");
        // Bootstrap: measure each live path once in this bucket before
        // trusting its EWMA.
        if live[..k].iter().any(|p| b.cost[p.slot()].load(Ordering::Relaxed) == UNSEEN) {
            return live[(n % k as u64) as usize];
        }
        // Steady state: keep probing on a fixed cadence, rotating the
        // probed path across periods. The rotation must be indexed by the
        // *period* number, not the raw query count: probes fire at
        // n = 0, P, 2P, … and with `n % k` any `k` dividing
        // [`EXPLORE_PERIOD`] (e.g. all four paths enabled, k = 4, P = 16)
        // would map every probe to slot 0 and never re-measure the rest.
        if n.is_multiple_of(EXPLORE_PERIOD) {
            return live[((n / EXPLORE_PERIOD) % k as u64) as usize];
        }
        let mut best = live[0];
        let mut best_cost = u64::MAX;
        for &p in &live[..k] {
            let c = b.cost[p.slot()].load(Ordering::Relaxed);
            if c < best_cost {
                best_cost = c;
                best = p;
            }
        }
        best
    }

    /// Feeds back the observed cost of one evaluation over `path` for a
    /// query of `bucket`. Costs are clamped to `1..=`[`COST_CAP`]: a
    /// sub-nanosecond (or timer-floored zero) observation must not drive
    /// the EWMA to a stuck-at-zero estimate that permanently wins between
    /// exploration probes, and a pathological huge cost must not overflow
    /// the integer recurrence.
    pub fn record(&self, bucket: usize, path: PathKind, cost_nanos: u64) {
        let slot = &self.state[bucket.min(self.buckets - 1)].cost[path.slot()];
        let cost = cost_nanos.clamp(1, COST_CAP);
        let old = slot.load(Ordering::Relaxed);
        let new = if old == UNSEEN {
            cost
        } else {
            // Saturating keeps even a corrupted stored value from wrapping;
            // the quotient stays ≥ 1 because both inputs are ≥ 1.
            (old.saturating_mul(7).saturating_add(cost) / 8).max(1)
        };
        // A racy lost update only loses one observation; fine for a cost
        // model.
        slot.store(new, Ordering::Relaxed);
    }

    /// Records an observed selectivity sample for `bucket`: `hits`
    /// qualifying rows out of `total` rows the query ranged over. The
    /// cumulative ratio is the per-bucket selectivity estimate a
    /// conjunction plan orders its predicates by (most selective first).
    pub fn record_selectivity(&self, bucket: usize, hits: u64, total: u64) {
        let b = &self.state[bucket.min(self.buckets - 1)];
        b.sel_hits.fetch_add(hits, Ordering::Relaxed);
        b.sel_rows.fetch_add(total, Ordering::Relaxed);
    }

    /// Observed mean selectivity of `bucket` — the qualifying fraction of
    /// rows its queries ranged over, in `[0, 1]`. `None` before any
    /// sample.
    pub fn selectivity(&self, bucket: usize) -> Option<f64> {
        let b = &self.state[bucket.min(self.buckets - 1)];
        let rows = b.sel_rows.load(Ordering::Relaxed);
        if rows == 0 {
            return None;
        }
        let hits = b.sel_hits.load(Ordering::Relaxed).min(rows);
        Some(hits as f64 / rows as f64)
    }

    /// Current EWMA cost estimates of one bucket, in chooser slot order
    /// (`None` = unseen or unregistered).
    pub fn estimates_for(&self, bucket: usize) -> [Option<u64>; MAX_PATHS] {
        let b = &self.state[bucket.min(self.buckets - 1)];
        [0, 1, 2, 3].map(|i| {
            let c = b.cost[i].load(Ordering::Relaxed);
            (c != UNSEEN).then_some(c)
        })
    }

    /// Cheapest seen estimate per path across all buckets (`None` = never
    /// measured anywhere) — the "has this path been explored at all" view
    /// used by reports and tests.
    pub fn estimates(&self) -> [Option<u64>; MAX_PATHS] {
        let mut out = [None; MAX_PATHS];
        for bucket in 0..self.buckets {
            for (slot, est) in self.estimates_for(bucket).into_iter().enumerate() {
                out[slot] = match (out[slot], est) {
                    (Some(a), Some(b)) => Some(std::cmp::min::<u64>(a, b)),
                    (a, b) => a.or(b),
                };
            }
        }
        out
    }

    /// The path a bucket currently ranks cheapest (`None` until the bucket
    /// has measured at least one enabled path).
    pub fn winner(&self, bucket: usize) -> Option<PathKind> {
        let est = self.estimates_for(bucket);
        let enabled = self.enabled.load(Ordering::Relaxed);
        PathKind::ALL
            .into_iter()
            .filter(|p| enabled & (1 << p.slot()) != 0)
            .filter_map(|p| est[p.slot()].map(|c| (c, p)))
            .min_by_key(|(c, _)| *c)
            .map(|(_, p)| p)
    }

    /// Queries routed through this chooser, across all buckets.
    pub fn queries(&self) -> u64 {
        self.state.iter().map(|b| b.queries.load(Ordering::Relaxed)).sum()
    }

    /// Queries routed through one bucket.
    pub fn bucket_queries(&self, bucket: usize) -> u64 {
        self.state[bucket.min(self.buckets - 1)].queries.load(Ordering::Relaxed)
    }

    /// A copy with the same registration, counters and learned costs —
    /// used when a sibling column's rebuild swaps the segment but this
    /// column's index is unchanged, so its cost model stays valid. A
    /// compaction merge must **not** carry choosers over: the merged
    /// segment's data volume and index are nothing like any input's, so
    /// its columns start fresh and re-explore (see
    /// [`SealedSegment::merge`](crate::segment::SealedSegment::merge)).
    pub fn carry_over(&self) -> PathChooser {
        PathChooser {
            registered: self.registered,
            enabled: AtomicU32::new(self.enabled.load(Ordering::Relaxed)),
            buckets: self.buckets,
            state: [0, 1, 2, 3].map(|i| BucketState {
                queries: AtomicU64::new(self.state[i].queries.load(Ordering::Relaxed)),
                cost: [0, 1, 2, 3]
                    .map(|s| AtomicU64::new(self.state[i].cost[s].load(Ordering::Relaxed))),
                sel_hits: AtomicU64::new(self.state[i].sel_hits.load(Ordering::Relaxed)),
                sel_rows: AtomicU64::new(self.state[i].sel_rows.load(Ordering::Relaxed)),
            }),
        }
    }

    /// A fresh chooser with the same registration and bucket count but no
    /// learned state — what a rebuilt or merged segment column starts
    /// from.
    pub fn fresh_like(&self) -> PathChooser {
        PathChooser {
            registered: self.registered,
            enabled: AtomicU32::new(self.registered),
            buckets: self.buckets,
            state: [(); NUM_BUCKETS].map(|()| BucketState::default()),
        }
    }

    /// Forgets learned costs (after a rebuild changed the index) and
    /// restores every registered path's eligibility — a rebuilt index
    /// also gets a fresh chance at its lazily built paths.
    pub fn reset(&self) {
        for b in &self.state {
            for c in &b.cost {
                c.store(UNSEEN, Ordering::Relaxed);
            }
        }
        self.enabled.store(self.registered, Ordering::Relaxed);
    }
}

/// One of the two ways a segment can evaluate a multi-predicate query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// The fused conjunction plan: every predicate's imprint classified
    /// into row-space bitvecs, candidate words ANDed across predicates
    /// before any value is touched, survivors refined word-wise in
    /// selectivity order.
    Fused,
    /// The per-predicate fallback: each predicate's candidate ranges
    /// intersected in id space, the first predicate materialized, the rest
    /// weeding survivors with gather-style kernels.
    PerPred,
}

impl PlanKind {
    /// Both strategies, in chooser slot order.
    pub const ALL: [PlanKind; 2] = [PlanKind::Fused, PlanKind::PerPred];

    /// The chooser slot.
    pub fn slot(self) -> usize {
        match self {
            PlanKind::Fused => 0,
            PlanKind::PerPred => 1,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Fused => "fused",
            PlanKind::PerPred => "per-pred",
        }
    }
}

/// Adaptive two-strategy chooser for multi-predicate plans — the same
/// EWMA-plus-exploration scheme as [`PathChooser`], one cost model per
/// [`PlanKind`]. One instance serves one (segment, predicate-column-set)
/// pair: the segment's plan cache keys these by the sorted column indices
/// of the conjunction, so `(a, b)` and `(a, c)` learn independent
/// winners.
#[derive(Debug)]
pub struct PlanChooser {
    queries: AtomicU64,
    cost: [AtomicU64; 2],
}

impl Default for PlanChooser {
    fn default() -> Self {
        PlanChooser { queries: AtomicU64::new(0), cost: [(); 2].map(|()| AtomicU64::new(UNSEEN)) }
    }
}

impl PlanChooser {
    /// A chooser with no learned state.
    pub fn new() -> PlanChooser {
        PlanChooser::default()
    }

    /// Picks the strategy for the next multi-predicate query, advancing
    /// the exploration cadence: bootstrap both once, probe on the
    /// [`EXPLORE_PERIOD`] cadence (alternating the probed strategy), else
    /// exploit the cheaper EWMA.
    pub fn choose(&self) -> PlanKind {
        let n = self.queries.fetch_add(1, Ordering::Relaxed);
        if PlanKind::ALL.iter().any(|p| self.cost[p.slot()].load(Ordering::Relaxed) == UNSEEN) {
            return PlanKind::ALL[(n % 2) as usize];
        }
        if n.is_multiple_of(EXPLORE_PERIOD) {
            return PlanKind::ALL[((n / EXPLORE_PERIOD) % 2) as usize];
        }
        let fused = self.cost[PlanKind::Fused.slot()].load(Ordering::Relaxed);
        let per = self.cost[PlanKind::PerPred.slot()].load(Ordering::Relaxed);
        if fused <= per {
            PlanKind::Fused
        } else {
            PlanKind::PerPred
        }
    }

    /// Feeds back the observed cost of one evaluation (same clamped EWMA
    /// as [`PathChooser::record`]).
    pub fn record(&self, plan: PlanKind, cost_nanos: u64) {
        let slot = &self.cost[plan.slot()];
        let cost = cost_nanos.clamp(1, COST_CAP);
        let old = slot.load(Ordering::Relaxed);
        let new = if old == UNSEEN {
            cost
        } else {
            (old.saturating_mul(7).saturating_add(cost) / 8).max(1)
        };
        slot.store(new, Ordering::Relaxed);
    }

    /// Multi-predicate queries routed through this chooser.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Current EWMA cost estimates, in [`PlanKind::ALL`] slot order
    /// (`None` = unseen).
    pub fn estimates(&self) -> [Option<u64>; 2] {
        [0, 1].map(|i| {
            let c = self.cost[i].load(Ordering::Relaxed);
            (c != UNSEEN).then_some(c)
        })
    }

    /// The strategy currently ranked cheapest (`None` until one is
    /// measured).
    pub fn winner(&self) -> Option<PlanKind> {
        PlanKind::ALL
            .into_iter()
            .filter_map(|p| {
                let c = self.cost[p.slot()].load(Ordering::Relaxed);
                (c != UNSEEN).then_some((c, p))
            })
            .min_by_key(|(c, _)| *c)
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_all_paths_then_exploits_cheapest() {
        let ch = PathChooser::default();
        // Feed costs into one bucket: scan cheap, imprints expensive.
        for _ in 0..64 {
            let p = ch.choose(0);
            let cost = match p {
                PathKind::Imprints => 9_000,
                PathKind::ZoneMap => 5_000,
                PathKind::Scan => 1_000,
                PathKind::Wah => unreachable!("wah not registered by default"),
            };
            ch.record(0, p, cost);
        }
        let est = ch.estimates_for(0);
        assert!(
            est[..3].iter().all(Option::is_some),
            "all registered paths must have been explored"
        );
        assert_eq!(est[PathKind::Wah.slot()], None, "unregistered path never measured");
        // Exploitation picks scan on non-probe queries.
        let picks: Vec<PathKind> = (0..EXPLORE_PERIOD - 1).map(|_| ch.choose(0)).collect();
        let scans = picks.iter().filter(|p| **p == PathKind::Scan).count();
        assert!(scans as u64 >= EXPLORE_PERIOD - 3, "expected mostly scans, got {picks:?}");
        assert_eq!(ch.winner(0), Some(PathKind::Scan));
    }

    /// The tentpole property: two selectivity buckets learn *independent*
    /// winners from interleaved observations, where a single-EWMA chooser
    /// would blend them into one.
    #[test]
    fn buckets_learn_separate_winners() {
        let ch = PathChooser::new(&PathKind::ALL, NUM_BUCKETS);
        let narrow = 1; // e.g. a few bins wide
        let wide = 3;
        for _ in 0..96 {
            // Narrow queries: imprints fast, scan slow.
            let p = ch.choose(narrow);
            ch.record(narrow, p, if p == PathKind::Imprints { 500 } else { 20_000 });
            // Wide queries: scan fast, everything else slow.
            let p = ch.choose(wide);
            ch.record(wide, p, if p == PathKind::Scan { 800 } else { 30_000 });
        }
        assert_eq!(ch.winner(narrow), Some(PathKind::Imprints));
        assert_eq!(ch.winner(wide), Some(PathKind::Scan));
        // Non-probe picks follow the per-bucket winner.
        let narrow_picks: Vec<PathKind> = (0..8).map(|_| ch.choose(narrow)).collect();
        let wide_picks: Vec<PathKind> = (0..8).map(|_| ch.choose(wide)).collect();
        assert!(
            narrow_picks.iter().filter(|p| **p == PathKind::Imprints).count() >= 6,
            "{narrow_picks:?}"
        );
        assert!(wide_picks.iter().filter(|p| **p == PathKind::Scan).count() >= 6, "{wide_picks:?}");
        // A single-bucket chooser fed the same mixed stream picks ONE path
        // for both classes — the mischoice the buckets exist to avoid.
        let single = PathChooser::new(&PathKind::ALL, 1);
        for _ in 0..96 {
            let p = single.choose(narrow);
            single.record(narrow, p, if p == PathKind::Imprints { 500 } else { 20_000 });
            let p = single.choose(wide);
            single.record(wide, p, if p == PathKind::Scan { 800 } else { 30_000 });
        }
        assert_eq!(
            single.winner(narrow),
            single.winner(wide),
            "one bucket cannot keep two winners"
        );
    }

    /// Regression: with all four paths enabled, k = 4 divides
    /// `EXPLORE_PERIOD` = 16, so a probe indexed by `n % k` would land on
    /// slot 0 every single time and zonemap/scan/WAH would never be
    /// re-measured after bootstrap. The rotation must walk every enabled
    /// path across consecutive probe periods.
    #[test]
    fn exploration_probes_rotate_across_all_enabled_paths() {
        let ch = PathChooser::new(&PathKind::ALL, 1);
        // Bootstrap: all four measured once, imprints cheapest.
        for _ in 0..4 {
            let p = ch.choose(0);
            ch.record(0, p, if p == PathKind::Imprints { 100 } else { 5_000 });
        }
        // Collect which paths the forced probes visit over several
        // periods; non-probe queries exploit and are recorded cheap so the
        // winner never changes underneath the test.
        let mut probed = Vec::new();
        for n in 4..(EXPLORE_PERIOD * 5) {
            let p = ch.choose(0);
            if n.is_multiple_of(EXPLORE_PERIOD) {
                probed.push(p);
            }
            ch.record(0, p, if p == PathKind::Imprints { 100 } else { 5_000 });
        }
        let mut distinct: Vec<usize> = probed.iter().map(|p| p.slot()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            4,
            "probes must rotate through every enabled path, visited only {probed:?}"
        );
    }

    /// After a path's relative cost flips, the rotating probe re-measures
    /// it even in the 4-path configuration where `EXPLORE_PERIOD % k == 0`.
    #[test]
    fn four_path_chooser_adapts_when_costs_flip() {
        let ch = PathChooser::new(&PathKind::ALL, 1);
        for _ in 0..64 {
            let p = ch.choose(0);
            ch.record(0, p, if p == PathKind::Imprints { 100 } else { 10_000 });
        }
        assert_eq!(ch.winner(0), Some(PathKind::Imprints));
        // Scan becomes the cheapest path: probes must discover it.
        for _ in 0..EXPLORE_PERIOD * 2 * 4 {
            let p = ch.choose(0);
            ch.record(0, p, if p == PathKind::Scan { 50 } else { 20_000 });
        }
        assert_eq!(ch.winner(0), Some(PathKind::Scan), "{:?}", ch.estimates_for(0));
    }

    #[test]
    fn bucket_of_span_classes() {
        let ch = PathChooser::new(&PathKind::CLASSIC, NUM_BUCKETS);
        assert_eq!(ch.bucket_of_span(1, 64), 0); // point
        assert_eq!(ch.bucket_of_span(4, 64), 1); // ≤ 1/8
        assert_eq!(ch.bucket_of_span(8, 64), 1);
        assert_eq!(ch.bucket_of_span(20, 64), 2); // ≤ 1/2
        assert_eq!(ch.bucket_of_span(33, 64), 3); // wide
        assert_eq!(ch.bucket_of_span(64, 64), 3);
        // Small binnings collapse the narrow class but stay in range.
        assert_eq!(ch.bucket_of_span(1, 8), 0);
        assert_eq!(ch.bucket_of_span(8, 8), 3);
        // A single-bucket chooser maps everything to 0.
        let single = PathChooser::new(&PathKind::CLASSIC, 1);
        for width in [1, 4, 20, 64] {
            assert_eq!(single.bucket_of_span(width, 64), 0);
        }
    }

    /// Satellite regression: a cost of 0 must clamp to ≥ 1 — otherwise the
    /// EWMA floors to zero and that path permanently wins every non-probe
    /// query even after its real cost explodes.
    #[test]
    fn record_clamps_zero_costs() {
        let ch = PathChooser::default();
        for _ in 0..64 {
            let p = ch.choose(0);
            ch.record(0, p, if p == PathKind::Scan { 0 } else { 4 });
        }
        let est = ch.estimates_for(0);
        for p in PathKind::CLASSIC {
            let c = est[p.slot()].unwrap();
            assert!(c >= 1, "{} EWMA floored to {c}", p.name());
        }
        // Sub-8ns costs must not decay to zero through the /8 recurrence.
        assert_eq!(est[PathKind::Scan.slot()], Some(1));
    }

    /// Satellite regression: pathological huge costs must saturate, not
    /// overflow (the old `old*7 + cost` wrapped and could land on the
    /// `UNSEEN` sentinel or a tiny wrapped value).
    #[test]
    fn record_saturates_huge_costs() {
        let ch = PathChooser::default();
        for _ in 0..8 {
            for p in PathKind::CLASSIC {
                ch.record(0, p, u64::MAX);
            }
        }
        let est = ch.estimates_for(0);
        for p in PathKind::CLASSIC {
            let c = est[p.slot()].expect("huge costs must still be recorded");
            assert!(c <= COST_CAP, "{} estimate {c} escaped the cap", p.name());
        }
        // A sane cost recorded afterwards still moves the estimate.
        ch.record(0, PathKind::Scan, 100);
        assert!(ch.estimates_for(0)[PathKind::Scan.slot()].unwrap() < COST_CAP);
    }

    /// Review regression: a mid-dispatch re-pick (chosen path disabled by
    /// the failed lazy WAH build) must not advance the cadence — one user
    /// query counts once in `queries()` and the exploration schedule.
    #[test]
    fn rechoose_does_not_advance_cadence() {
        let ch = PathChooser::new(&PathKind::ALL, 1);
        let first = ch.choose(0);
        assert_eq!(ch.bucket_queries(0), 1);
        ch.disable(PathKind::Wah);
        let again = ch.rechoose(0);
        assert_eq!(ch.bucket_queries(0), 1, "rechoose must not count a second query");
        assert_ne!(again, PathKind::Wah, "rechoose must avoid the just-disabled path");
        let _ = (first, again);
        // Steady state: rechoose picks among enabled paths only.
        for _ in 0..8 {
            let p = ch.choose(0);
            ch.record(0, p, 1_000);
        }
        for _ in 0..8 {
            assert_ne!(ch.rechoose(0), PathKind::Wah);
        }
        assert_eq!(ch.queries(), 9);
    }

    #[test]
    fn disable_removes_path_from_rotation() {
        let ch = PathChooser::new(&PathKind::ALL, 2);
        assert!(ch.is_enabled(PathKind::Wah));
        ch.disable(PathKind::Wah);
        assert!(!ch.is_enabled(PathKind::Wah));
        for _ in 0..64 {
            let p = ch.choose(0);
            assert_ne!(p, PathKind::Wah, "disabled path must never be chosen");
            ch.record(0, p, 1_000);
        }
        // The bootstrap sweep completes without the disabled path.
        assert!(ch.estimates_for(0)[..3].iter().all(Option::is_some));
        // The last enabled path can never be disabled.
        for p in PathKind::ALL {
            ch.disable(p);
        }
        assert!(PathKind::ALL.into_iter().any(|p| ch.is_enabled(p)));
    }

    /// The compaction-swap contract, shallow-clone side: a column whose
    /// index survived the swap keeps its learned costs, query cadence and
    /// eligibility byte-for-byte.
    #[test]
    fn carry_over_preserves_costs_and_cadence() {
        let ch = PathChooser::new(&PathKind::ALL, NUM_BUCKETS);
        ch.disable(PathKind::Wah);
        for _ in 0..40 {
            let p = ch.choose(2);
            let cost = match p {
                PathKind::Imprints => 2_000,
                PathKind::ZoneMap => 700,
                PathKind::Scan => 9_000,
                PathKind::Wah => unreachable!("disabled"),
            };
            ch.record(2, p, cost);
        }
        let copy = ch.carry_over();
        assert_eq!(copy.estimates_for(2), ch.estimates_for(2));
        assert_eq!(copy.queries(), ch.queries());
        assert!(!copy.is_enabled(PathKind::Wah), "budget rejection must survive the clone");
        // The copy exploits the same winner the original learned.
        let picks: Vec<PathKind> = (0..8).map(|_| copy.choose(2)).collect();
        assert!(picks.iter().filter(|p| **p == PathKind::ZoneMap).count() >= 6, "{picks:?}");
    }

    /// The compaction-swap contract, merged-segment side: stale
    /// per-segment estimates must not be trusted — `reset` drops every
    /// learned cost and forces the bootstrap exploration sweep, exactly
    /// what a fresh chooser does after a merge changed the index.
    #[test]
    fn reset_forgets_costs_and_forces_reexploration() {
        let ch = PathChooser::default();
        for _ in 0..40 {
            let p = ch.choose(0);
            ch.record(0, p, if p == PathKind::Scan { 100 } else { 50_000 });
        }
        assert!(ch.estimates_for(0)[..3].iter().all(Option::is_some));
        ch.reset();
        assert_eq!(ch.estimates(), [None; MAX_PATHS], "reset must forget all learned costs");
        // Until every path is re-measured, choose() is in the bootstrap
        // branch: it cycles deterministically instead of exploiting the
        // (forgotten) scan winner.
        let picks: Vec<PathKind> = (0..3).map(|_| ch.choose(0)).collect();
        let mut distinct = picks.clone();
        distinct.sort_by_key(|p| p.slot());
        distinct.dedup();
        assert_eq!(distinct.len(), 3, "bootstrap must probe all three paths: {picks:?}");
        // Query cadence survives reset (it is not a new segment, the same
        // one just got a new index).
        assert_eq!(ch.queries(), 43);
    }

    #[test]
    fn fresh_like_keeps_registration_only() {
        let ch = PathChooser::new(&PathKind::ALL, 2);
        ch.disable(PathKind::Wah);
        for _ in 0..20 {
            let p = ch.choose(1);
            ch.record(1, p, 500);
        }
        let fresh = ch.fresh_like();
        assert_eq!(fresh.paths(), ch.paths());
        assert_eq!(fresh.bucket_count(), 2);
        assert_eq!(fresh.queries(), 0);
        assert_eq!(fresh.estimates(), [None; MAX_PATHS]);
        assert!(fresh.is_enabled(PathKind::Wah), "a rebuilt column re-earns its lazy paths");
    }

    #[test]
    fn selectivity_tracks_per_bucket_and_survives_carry_over() {
        let ch = PathChooser::default();
        assert_eq!(ch.selectivity(0), None, "no sample yet");
        ch.record_selectivity(0, 10, 1000); // a 1% bucket
        ch.record_selectivity(0, 30, 3000);
        ch.record_selectivity(3, 900, 1000); // a 90% bucket
        assert!((ch.selectivity(0).unwrap() - 0.01).abs() < 1e-9);
        assert!((ch.selectivity(3).unwrap() - 0.9).abs() < 1e-9);
        assert_eq!(ch.selectivity(1), None, "buckets are independent");
        let copy = ch.carry_over();
        assert_eq!(copy.selectivity(0), ch.selectivity(0));
        assert_eq!(copy.selectivity(3), ch.selectivity(3));
        let fresh = ch.fresh_like();
        assert_eq!(fresh.selectivity(0), None, "rebuilt columns restart their samples");
        // Hits clamped to rows: a racy overshoot cannot report > 1.0.
        let odd = PathChooser::default();
        odd.record_selectivity(0, 50, 10);
        assert_eq!(odd.selectivity(0), Some(1.0));
    }

    #[test]
    fn plan_chooser_bootstraps_probes_and_exploits() {
        let ch = PlanChooser::new();
        // Bootstrap: both strategies measured before exploitation.
        for _ in 0..64 {
            let p = ch.choose();
            ch.record(p, if p == PlanKind::Fused { 500 } else { 8_000 });
        }
        let est = ch.estimates();
        assert!(est.iter().all(Option::is_some), "both strategies must be measured: {est:?}");
        assert_eq!(ch.winner(), Some(PlanKind::Fused));
        // Non-probe picks exploit the winner.
        let picks: Vec<PlanKind> = (0..(EXPLORE_PERIOD - 1)).map(|_| ch.choose()).collect();
        let fused = picks.iter().filter(|p| **p == PlanKind::Fused).count() as u64;
        assert!(fused >= EXPLORE_PERIOD - 2, "{picks:?}");
        // Costs flip: the rotating probe re-measures PerPred and the
        // winner flips with it.
        for _ in 0..(EXPLORE_PERIOD * 4) {
            let p = ch.choose();
            ch.record(p, if p == PlanKind::PerPred { 100 } else { 50_000 });
        }
        assert_eq!(ch.winner(), Some(PlanKind::PerPred), "{:?}", ch.estimates());
        assert!(ch.queries() > 0);
    }

    #[test]
    fn adapts_when_costs_flip() {
        let ch = PathChooser::default();
        for _ in 0..48 {
            let p = ch.choose(0);
            ch.record(0, p, if p == PathKind::Imprints { 100 } else { 10_000 });
        }
        // Imprints now degrade (e.g. saturated): exploration must flip the
        // choice to another path.
        for _ in 0..256 {
            let p = ch.choose(0);
            ch.record(0, p, if p == PathKind::Imprints { 50_000 } else { 400 });
        }
        let p = ch.choose(0);
        ch.record(0, p, 400);
        let est = ch.estimates_for(0);
        let imp = est[PathKind::Imprints.slot()].unwrap();
        assert!(
            est[1].unwrap() < imp || est[2].unwrap() < imp,
            "chooser failed to re-learn: {est:?}"
        );
    }
}
