//! Per-segment access-path choice.
//!
//! Every sealed segment column can answer a range predicate three ways:
//! through its **imprint**, through its **zonemap**, or by **scanning**.
//! Which one is fastest depends on the segment's data (clustering,
//! cardinality) and the workload (selectivity), so the engine treats the
//! access path as a per-query decision informed by observed cost — the
//! stance of learned/adaptive secondary indexing (LSI, AIM) rather than a
//! fixed structure choice.
//!
//! [`PathChooser`] keeps an exponentially-weighted moving average of the
//! observed evaluation cost per path and picks the cheapest, with a
//! deterministic round-robin exploration probe every
//! [`EXPLORE_PERIOD`]-th query so a path whose relative cost changed
//! (appends elsewhere, different predicate mix, post-rebuild) gets
//! re-measured. All state is atomic: choosers live inside shared, immutable
//! segments and are updated concurrently by many readers.

use std::sync::atomic::{AtomicU64, Ordering};

/// One of the three ways a segment column can answer a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// The column-imprints secondary index.
    Imprints,
    /// The min/max-per-cacheline zonemap.
    ZoneMap,
    /// A sequential scan of the segment.
    Scan,
}

impl PathKind {
    /// All paths, in chooser slot order.
    pub const ALL: [PathKind; 3] = [PathKind::Imprints, PathKind::ZoneMap, PathKind::Scan];

    fn slot(self) -> usize {
        match self {
            PathKind::Imprints => 0,
            PathKind::ZoneMap => 1,
            PathKind::Scan => 2,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PathKind::Imprints => "imprints",
            PathKind::ZoneMap => "zonemap",
            PathKind::Scan => "scan",
        }
    }
}

/// Every `EXPLORE_PERIOD`-th query takes a forced exploration path.
pub const EXPLORE_PERIOD: u64 = 16;

const UNSEEN: u64 = u64::MAX;

/// Adaptive chooser: EWMA cost per path + periodic exploration.
#[derive(Debug)]
pub struct PathChooser {
    queries: AtomicU64,
    /// EWMA of observed cost (nanoseconds) per path; `UNSEEN` until the
    /// first observation.
    cost: [AtomicU64; 3],
}

impl Default for PathChooser {
    fn default() -> Self {
        PathChooser {
            queries: AtomicU64::new(0),
            cost: [AtomicU64::new(UNSEEN), AtomicU64::new(UNSEEN), AtomicU64::new(UNSEEN)],
        }
    }
}

impl PathChooser {
    /// Picks the path for the next query.
    pub fn choose(&self) -> PathKind {
        let n = self.queries.fetch_add(1, Ordering::Relaxed);
        // Bootstrap: measure each path once before trusting the EWMA, then
        // keep probing on a fixed cadence.
        if n.is_multiple_of(EXPLORE_PERIOD)
            || self.cost.iter().any(|c| c.load(Ordering::Relaxed) == UNSEEN)
        {
            return PathKind::ALL[(n % 3) as usize];
        }
        let mut best = PathKind::Imprints;
        let mut best_cost = u64::MAX;
        for p in PathKind::ALL {
            let c = self.cost[p.slot()].load(Ordering::Relaxed);
            if c < best_cost {
                best_cost = c;
                best = p;
            }
        }
        best
    }

    /// Feeds back the observed cost of one evaluation over `path`.
    pub fn record(&self, path: PathKind, cost_nanos: u64) {
        let slot = &self.cost[path.slot()];
        let old = slot.load(Ordering::Relaxed);
        let new = if old == UNSEEN { cost_nanos } else { (old * 7 + cost_nanos) / 8 };
        // A racy lost update only loses one observation; fine for a cost model.
        slot.store(new, Ordering::Relaxed);
    }

    /// Current EWMA cost estimates in chooser slot order (`None` = unseen).
    pub fn estimates(&self) -> [Option<u64>; 3] {
        [0, 1, 2].map(|i| {
            let c = self.cost[i].load(Ordering::Relaxed);
            (c != UNSEEN).then_some(c)
        })
    }

    /// Queries routed through this chooser.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// A copy with the same counters and learned costs — used when a
    /// sibling column's rebuild swaps the segment but this column's index
    /// is unchanged, so its cost model stays valid. A compaction merge
    /// must **not** carry choosers over: the merged segment's data volume
    /// and index are nothing like any input's, so its columns start from
    /// [`PathChooser::default`] and re-explore (see
    /// [`SealedSegment::merge`](crate::segment::SealedSegment::merge)).
    pub fn carry_over(&self) -> PathChooser {
        PathChooser {
            queries: AtomicU64::new(self.queries.load(Ordering::Relaxed)),
            cost: [0, 1, 2].map(|i| AtomicU64::new(self.cost[i].load(Ordering::Relaxed))),
        }
    }

    /// Forgets learned costs (after a rebuild changed the index).
    pub fn reset(&self) {
        for c in &self.cost {
            c.store(UNSEEN, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_all_paths_then_exploits_cheapest() {
        let ch = PathChooser::default();
        // Feed costs: scan cheap, imprints expensive.
        for _ in 0..64 {
            let p = ch.choose();
            let cost = match p {
                PathKind::Imprints => 9_000,
                PathKind::ZoneMap => 5_000,
                PathKind::Scan => 1_000,
            };
            ch.record(p, cost);
        }
        let est = ch.estimates();
        assert!(est.iter().all(Option::is_some), "all paths must have been explored");
        // Exploitation picks scan on non-probe queries.
        let picks: Vec<PathKind> = (0..EXPLORE_PERIOD - 1).map(|_| ch.choose()).collect();
        let scans = picks.iter().filter(|p| **p == PathKind::Scan).count();
        assert!(scans as u64 >= EXPLORE_PERIOD - 3, "expected mostly scans, got {picks:?}");
    }

    /// The compaction-swap contract, shallow-clone side: a column whose
    /// index survived the swap keeps its learned costs and query cadence
    /// byte-for-byte.
    #[test]
    fn carry_over_preserves_costs_and_cadence() {
        let ch = PathChooser::default();
        for _ in 0..40 {
            let p = ch.choose();
            let cost = match p {
                PathKind::Imprints => 2_000,
                PathKind::ZoneMap => 700,
                PathKind::Scan => 9_000,
            };
            ch.record(p, cost);
        }
        let copy = ch.carry_over();
        assert_eq!(copy.estimates(), ch.estimates());
        assert_eq!(copy.queries(), ch.queries());
        // The copy exploits the same winner the original learned.
        let picks: Vec<PathKind> = (0..8).map(|_| copy.choose()).collect();
        assert!(picks.iter().filter(|p| **p == PathKind::ZoneMap).count() >= 6, "{picks:?}");
    }

    /// The compaction-swap contract, merged-segment side: stale
    /// per-segment estimates must not be trusted — `reset` drops every
    /// learned cost and forces the bootstrap exploration sweep, exactly
    /// what a fresh chooser does after a merge changed the index.
    #[test]
    fn reset_forgets_costs_and_forces_reexploration() {
        let ch = PathChooser::default();
        for _ in 0..40 {
            let p = ch.choose();
            ch.record(p, if p == PathKind::Scan { 100 } else { 50_000 });
        }
        assert!(ch.estimates().iter().all(Option::is_some));
        ch.reset();
        assert_eq!(ch.estimates(), [None, None, None], "reset must forget all learned costs");
        // Until every path is re-measured, choose() is in the bootstrap
        // branch: it cycles deterministically instead of exploiting the
        // (forgotten) scan winner.
        let picks: Vec<PathKind> = (0..3).map(|_| ch.choose()).collect();
        let mut distinct = picks.clone();
        distinct.sort_by_key(|p| p.slot());
        distinct.dedup();
        assert_eq!(distinct.len(), 3, "bootstrap must probe all three paths: {picks:?}");
        // Query cadence survives reset (it is not a new segment, the same
        // one just got a new index).
        assert_eq!(ch.queries(), 43);
    }

    #[test]
    fn adapts_when_costs_flip() {
        let ch = PathChooser::default();
        for _ in 0..48 {
            let p = ch.choose();
            ch.record(p, if p == PathKind::Imprints { 100 } else { 10_000 });
        }
        // Imprints now degrade (e.g. saturated): exploration must flip the
        // choice to another path.
        for _ in 0..256 {
            let p = ch.choose();
            ch.record(p, if p == PathKind::Imprints { 50_000 } else { 400 });
        }
        let p = ch.choose();
        ch.record(p, 400);
        let est = ch.estimates();
        let imp = est[PathKind::Imprints.slot()].unwrap();
        assert!(
            est[1].unwrap() < imp || est[2].unwrap() < imp,
            "chooser failed to re-learn: {est:?}"
        );
    }
}
